// Package node assembles a full consortium blockchain node: the p2p
// endpoint, the PBFT ordering replica, the transaction pools and
// pre-verification pipeline, the public and confidential execution engines,
// and the KV store — the complete platform of Figure 2.
package node

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"confide/internal/chain"
	"confide/internal/consensus"
	"confide/internal/core"
	"confide/internal/keyepoch"
	"confide/internal/metrics"
	"confide/internal/p2p"
	"confide/internal/pipeline"
	"confide/internal/snapshot"
	"confide/internal/storage"
	"confide/internal/storage/vfs"
)

// Config shapes one node.
type Config struct {
	// BlockMaxTxs bounds transactions per block. Default 64.
	BlockMaxTxs int
	// Parallelism is the execution fan-out (the paper's 1/4/6-way
	// experiments). Default 1.
	Parallelism int
	// PipelineDepth bounds how many consensus proposals a leader keeps in
	// flight ahead of block application (the driver's pacing window, and
	// the -pipeline-depth flag). Depth 1 — the default — reproduces the
	// serialized PR 5 behavior exactly: blocks apply synchronously on the
	// consensus delivery path and the driver proposes only after delivery.
	// Depth > 1 engages the pipeline subsystem: proposals chain off the
	// predicted parent (the tip of the in-flight chain) and delivered
	// blocks execute behind ordering on a dedicated executor goroutine.
	PipelineDepth int
	// ExecWorkers widens the speculative OCC pass with a persistent lane
	// pool of this many workers (the -exec-workers flag). 0 falls back to
	// Parallelism's transient fan-out semantics, but over persistent lanes
	// when > 1. Validation stays sequential in block order regardless, so
	// any ExecWorkers mix across replicas commits identical state.
	ExecWorkers int
	// EngineOpts configures both engines' optimizations.
	EngineOpts core.Options
	// Consensus tunes the replica's liveness timers (view timeout,
	// retransmission, heartbeats). Zero fields take consensus defaults.
	Consensus consensus.Options
	// SyncInterval paces block catch-up gossip (height announcements and
	// the rate limit on sync requests). Default 100ms.
	SyncInterval time.Duration
	// SyncBatch bounds blocks served per sync response. Default 16.
	SyncBatch int
	// CheckpointInterval exports a state snapshot every this many blocks
	// (and anchors consensus-log GC there). 0 disables checkpoints.
	CheckpointInterval uint64
	// Retention keeps at least this many recent block payloads when pruning.
	// 0 disables pruning entirely (every block is retained, as before).
	// Pruning also never passes the last stable checkpoint.
	Retention uint64
	// SnapshotChunkBytes is the target snapshot chunk size. Default 256 KiB.
	SnapshotChunkBytes int
	// SnapshotFetchWorkers bounds parallel chunk fetches during fast-sync.
	// Default 4.
	SnapshotFetchWorkers int
	// ResealRate paces the background key-epoch re-seal sweep in records per
	// second. 0 selects the default rate; negative disables the loop (tests
	// drive sweeps explicitly via ResealNow).
	ResealRate int
	// MaxTxBytes bounds the wire-encoded transaction size accepted at the
	// submission boundary (SubmitTx, SubmitTxBatch) and re-checked on gossip
	// receive, so one oversized envelope cannot be amplified cluster-wide
	// before pre-verification would reject it. 0 selects DefaultMaxTxBytes;
	// negative disables the bound.
	MaxTxBytes int

	// replicaBase, when set, overrides the replica sequence↔height base: a
	// node restarted into a live cluster must map consensus sequences the
	// way its peers do (their base, usually 0), not from its own recovered
	// height. Set by Cluster.RestartNode.
	replicaBase *uint64
	// crash is the crash-point registry shared with this node's store; nil
	// (the default) disables crash points. Set by the cluster's disk-fault
	// harness.
	crash *vfs.CrashPoints
}

func (c Config) withDefaults() Config {
	if c.BlockMaxTxs == 0 {
		c.BlockMaxTxs = 64
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 1
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	if c.SyncBatch == 0 {
		c.SyncBatch = 16
	}
	if c.SnapshotChunkBytes == 0 {
		c.SnapshotChunkBytes = snapshot.DefaultChunkBytes
	}
	if c.SnapshotFetchWorkers == 0 {
		c.SnapshotFetchWorkers = 4
	}
	if c.MaxTxBytes == 0 {
		c.MaxTxBytes = DefaultMaxTxBytes
	}
	return c
}

// DefaultMaxTxBytes is the default wire-encoded transaction size cap at the
// submission boundary: generous for the paper's workloads (the largest ABS
// envelope is a few KiB) while keeping a single transaction from dominating
// a block's gossip and storage budget.
const DefaultMaxTxBytes = 128 << 10

// ErrTxTooLarge reports a transaction whose wire encoding exceeds the
// node's submission size bound (Config.MaxTxBytes).
var ErrTxTooLarge = errors.New("node: transaction exceeds wire size limit")

// Node is one platform participant.
type Node struct {
	cfg      Config
	endpoint *p2p.Endpoint
	replica  *consensus.Replica
	store    storage.KVStore

	confEngine *core.Engine
	pubEngine  *core.Engine

	unverified *chain.TxPool
	verified   *chain.TxPool

	// applyMu serializes block application: consensus delivery and catch-up
	// sync race to apply the same heights, and the height guard inside
	// applyBlock makes whichever path loses a no-op.
	applyMu sync.Mutex
	// proposeMu serializes ProposeBlock so the Predict→Track window of the
	// block scheduler sees a consistent predicted chain.
	proposeMu sync.Mutex
	// sched tracks the predicted chain of in-flight proposals (pipelined
	// leaders chain new blocks off its tip, not the committed tip) and
	// drives abort/re-pool when a predicted ancestor fails.
	sched *pipeline.Scheduler
	// executor is the execute-behind-order queue (PipelineDepth > 1 only;
	// nil means delivery applies blocks synchronously, the depth-1 mode).
	executor *pipeline.Executor
	// lanes is the persistent OCC worker pool (execWays > 1 only).
	lanes *pipeline.Lanes
	// baseHeight is the chain height when the replica was created; replica
	// sequence s maps to block height baseHeight + s.
	baseHeight uint64

	stop      chan struct{}
	stopOnce  sync.Once
	storeOnce sync.Once // closes the store (Close only; Kill leaves it)

	// fatal records the first unrecoverable storage error: the node killed
	// itself rather than acknowledge commits whose durability is unknown or
	// execute on state that reads back wrong.
	fatalMu  sync.Mutex
	fatalErr error

	mu        sync.Mutex
	height    uint64
	prevHash  chain.Hash
	heightCh  chan struct{}                 // closed and replaced on every height advance
	committed map[chain.Hash]*chain.Receipt // plaintext receipts (local index)
	txHeight  map[chain.Hash]uint64         // tx → containing block (SPV proofs)
	// commitHooks are receipt-notification callbacks (OnCommit): serving
	// layers hosted on this node (the gateway's receipt long-poll) register
	// here to learn which transactions each applied block committed.
	commitHooks map[uint64]func(height uint64, hashes []chain.Hash)
	nextHookID  uint64
	// storeBase is the height below which block payloads (and hence the
	// txHeight index) may be absent locally — set by snapshot install and
	// pruning. Execution dedup below it falls back to the receipt store.
	storeBase uint64

	// Key-epoch rotation state (guarded by applyMu, like the chain state it
	// mirrors). pendingRotation is a consensus-committed schedule awaiting
	// its activation height; rotationCandidate is a rotation executed in the
	// block currently being applied, promoted to pending only after its
	// batch commits. lastDrained notes the epoch whose re-seal sweep last
	// completed, so the background loop idles between rotations.
	pendingRotation   *keyepoch.Rotation
	rotationCandidate *keyepoch.Rotation
	lastDrained       uint64

	syncMu      sync.Mutex
	syncLastReq time.Time

	// snapshots holds the latest exported checkpoint for serving; snapMu
	// guards the fetch-session state in snapshot_sync.go.
	snapshots *snapshot.Manager
	snapMu    sync.Mutex
	snapFetch *snapFetchSession
	badPeers  map[p2p.NodeID]int // bad-chunk / bad-manifest score per peer
	prunedTo  uint64             // lowest retained block height (prune.go)

	tracer *metrics.Tracer

	txsExecuted  atomic.Uint64
	blocksClosed atomic.Uint64
	execTimeNs   atomic.Int64
	commitTimeNs atomic.Int64
}

const gossipTopic = "confide/tx"

// New assembles a node over its endpoint, engines and store, and registers
// it with the consensus replica set of size n.
func New(cfg Config, endpoint *p2p.Endpoint, n int, confEngine, pubEngine *core.Engine, store storage.KVStore) *Node {
	cfg = cfg.withDefaults()
	node := &Node{
		cfg:         cfg,
		endpoint:    endpoint,
		store:       store,
		confEngine:  confEngine,
		pubEngine:   pubEngine,
		unverified:  chain.NewTxPool(1 << 16),
		verified:    chain.NewTxPool(1 << 16),
		committed:   make(map[chain.Hash]*chain.Receipt),
		txHeight:    make(map[chain.Hash]uint64),
		commitHooks: make(map[uint64]func(uint64, []chain.Hash)),
		heightCh:    make(chan struct{}),
		stop:        make(chan struct{}),
		tracer:      newPipelineTracer(),
		snapshots:   snapshot.NewManager(),
		badPeers:    make(map[p2p.NodeID]int),
		sched:       pipeline.NewScheduler(),
	}
	if ways := node.execWays(); ways > 1 {
		node.lanes = pipeline.NewLanes(ways)
	}
	if cfg.PipelineDepth > 1 {
		// Execute behind ordering: consensus delivery enqueues, this
		// goroutine applies. The queue bound doubles the pipeline depth so
		// delivery backpressures only when execution falls well behind.
		node.executor = pipeline.NewExecutor(cfg.PipelineDepth*2, func(b *chain.Block, payload []byte) {
			node.applyDecoded(b, payload)
		})
	}
	node.recoverChainState()
	node.adoptEpochState()
	node.baseHeight = node.height
	if cfg.replicaBase != nil {
		// Restarting into a live cluster: adopt the peers' seq↔height base
		// so consensus sequences line up, then fast-forward past what the
		// local chain already holds.
		node.baseHeight = *cfg.replicaBase
	}
	opts := cfg.Consensus
	opts.WorkPending = func() bool {
		return node.unverified.Len()+node.verified.Len() > 0
	}
	node.replica = consensus.NewReplicaWithOptions(endpoint, n, node.onCommit, opts)
	if node.height > node.baseHeight {
		node.replica.AdvanceTo(node.height - node.baseHeight)
	}
	endpoint.Subscribe(gossipTopic, func(m p2p.Message) {
		if cfg.MaxTxBytes > 0 && len(m.Data) > cfg.MaxTxBytes {
			// A peer relayed an oversized transaction (its own boundary
			// check failed, or it is malicious); drop it here instead of
			// pooling and re-gossiping it.
			mOversizedRejected.Inc()
			return
		}
		if tx, err := chain.DecodeTx(m.Data); err == nil && !node.isCommitted(tx.Hash()) {
			if node.unverified.Add(tx) == nil {
				node.tracer.Begin(node.traceKey(tx.Hash()))
			}
		}
	})
	node.startSync()
	node.startSnapshotSync()
	node.startResealLoop()
	return node
}

// recoverChainState resumes height, prev-hash and the tx→block index from a
// durable store after a restart (state and receipts are already there; the
// engine secrets re-arrive via the K-Protocol or an HSM-backed service).
// When the store carries a base marker (written by snapshot install or
// pruning), the block walk starts there instead of genesis, and dedup for
// heights below it answers from the persisted receipts.
func (n *Node) recoverChainState() {
	if height, prevHash, ok := readStoreBase(n.store); ok {
		n.height = height
		n.prevHash = prevHash
		n.storeBase = height
		n.prunedTo = height
	}
	for {
		raw, found, err := n.store.Get(blockKey(n.height))
		if err != nil || !found {
			return
		}
		block, err := chain.DecodeBlock(raw)
		if err != nil {
			return
		}
		for _, tx := range block.Txs {
			h := tx.Hash()
			n.txHeight[h] = block.Header.Height
			// Recover plaintext receipts for public transactions; for
			// confidential ones only the sealed form exists (by design), so
			// the local index records presence via txHeight alone and
			// clients use StoredReceipt + k_tx.
			if sealed, ok, err := core.ReadReceipt(n.store, h); err == nil && ok {
				if rpt, err := chain.DecodeReceipt(sealed); err == nil {
					n.committed[h] = rpt
				}
			}
		}
		n.prevHash = block.Hash()
		n.height++
	}
}

// isCommitted reports whether this node has already executed the
// transaction (late gossip must not resurrect it in the pools).
func (n *Node) isCommitted(h chain.Hash) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.committed[h]; ok {
		return true
	}
	_, ok := n.txHeight[h]
	return ok
}

// ID returns the node id.
func (n *Node) ID() p2p.NodeID { return n.endpoint.ID() }

// IsLeader reports whether this node leads the current consensus view.
func (n *Node) IsLeader() bool { return n.replica.IsLeader() }

// Store exposes the node's KV store (explorer, audit, tests).
func (n *Node) Store() storage.KVStore { return n.store }

// ConfidentialEngine exposes the confidential engine (attestation, stats).
func (n *Node) ConfidentialEngine() *core.Engine { return n.confEngine }

// PublicEngine exposes the public engine.
func (n *Node) PublicEngine() *core.Engine { return n.pubEngine }

// Height returns the number of committed blocks.
func (n *Node) Height() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.height
}

// SubmitTx accepts a client transaction and gossips it to the network.
func (n *Node) SubmitTx(tx *chain.Tx) error {
	encoded := tx.Encode()
	if n.cfg.MaxTxBytes > 0 && len(encoded) > n.cfg.MaxTxBytes {
		mOversizedRejected.Inc()
		return ErrTxTooLarge
	}
	if n.isCommitted(tx.Hash()) {
		return ErrAlreadyCommitted
	}
	if err := n.unverified.Add(tx); err != nil {
		return err
	}
	n.tracer.Begin(n.traceKey(tx.Hash()))
	n.endpoint.Broadcast(gossipTopic, encoded)
	return nil
}

// SubmitTxBatch accepts a pipelined batch of client transactions (the
// gateway's submission path) and returns one error slot per transaction,
// nil for accepted ones. Each transaction is still gossiped individually —
// gossip identity is per-transaction — but the boundary checks and pool
// insertion run as one pass.
func (n *Node) SubmitTxBatch(txs []*chain.Tx) []error {
	errs := make([]error, len(txs))
	for i, tx := range txs {
		errs[i] = n.SubmitTx(tx)
	}
	return errs
}

// ConsensusBacklog reports how many consensus instances this node has
// proposed that have not yet been delivered to the application — the depth
// of the ordering pipeline. The cluster driver paces proposals with it.
func (n *Node) ConsensusBacklog() uint64 { return n.replica.InFlight() }

// Backlog reports this node's total uncommitted submission backlog: both
// transaction pools, the transactions riding in-flight proposals (counted
// exactly from the block scheduler's predicted chain, not estimated as
// instances × BlockMaxTxs as before — partially-full blocks no longer
// overcount), and the transactions sitting in delivered-but-unexecuted
// blocks on the executor queue. The in-flight terms matter on the leader,
// whose verified pool is drained into proposals the moment they are cut —
// pool depth alone would tell its gateway the node is idle exactly when
// the ordering pipeline is fullest. Admission control gates on this.
func (n *Node) Backlog() int {
	total := n.unverified.Len() + n.verified.Len() + n.sched.InFlightTxs()
	if n.executor != nil {
		total += n.executor.QueuedTxs()
	}
	return total
}

// syncedHeight is the chain height this node has already secured locally:
// the executed tip plus the consensus-delivered blocks waiting on the
// execute-behind-order queue. The catch-up sync layer gates on this — the
// queued blocks will land without any peer's help, so only a gap beyond
// them is genuinely missing.
func (n *Node) syncedHeight() uint64 {
	h := n.Height()
	if n.executor != nil {
		h += uint64(n.executor.Depth())
	}
	return h
}

// MaxTxBytes reports the wire-encoded transaction size bound this node
// enforces at its submission boundary (0 = unbounded).
func (n *Node) MaxTxBytes() int {
	if n.cfg.MaxTxBytes < 0 {
		return 0
	}
	return n.cfg.MaxTxBytes
}

// OnCommit registers a receipt-notification hook invoked after every block
// commit with the block height and the hashes of the transactions it
// committed. Hooks run on the apply path (synchronously, outside the state
// lock) and must be fast — the gateway uses one to wake receipt long-polls.
// The returned function unregisters the hook.
func (n *Node) OnCommit(fn func(height uint64, hashes []chain.Hash)) (remove func()) {
	n.mu.Lock()
	id := n.nextHookID
	n.nextHookID++
	n.commitHooks[id] = fn
	n.mu.Unlock()
	return func() {
		n.mu.Lock()
		delete(n.commitHooks, id)
		n.mu.Unlock()
	}
}

// ErrAlreadyCommitted reports a re-submission of an executed transaction.
var ErrAlreadyCommitted = errors.New("node: transaction already committed")

// repoolUncommitted returns transactions from a block that failed to apply
// to the un-verified pool, skipping ones that already committed through
// another block. Pool dedup makes this idempotent.
func (n *Node) repoolUncommitted(txs []*chain.Tx) {
	for _, tx := range txs {
		if !n.isCommitted(tx.Hash()) {
			n.unverified.Add(tx)
		}
	}
}

// promoteVerified moves a pre-verified transaction into the verified pool
// unless it already committed. The check and the Add hold the state lock,
// making them atomic against applyBlock, which records the commit under
// the same lock before sweeping the pools — whichever side runs second
// sees the other's effect. Without this, a transaction in transit through
// pre-verification while its block commits would be re-added after the
// sweep and sit in a follower's verified pool forever (followers never
// propose, so nothing else clears it).
func (n *Node) promoteVerified(tx *chain.Tx) bool {
	h := tx.Hash()
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, done := n.committed[h]; done {
		return false
	}
	if _, done := n.txHeight[h]; done {
		return false
	}
	return n.verified.Add(tx) == nil
}

// PreVerifyPending moves valid transactions from the un-verified to the
// verified pool (Figure 7 P1–P5) at the full per-call budget.
func (n *Node) PreVerifyPending() int {
	return n.PreVerifyPendingN(n.cfg.BlockMaxTxs * 2)
}

// PreVerifyPendingN is PreVerifyPending with an explicit transaction budget.
// The driver gives the leader the full budget and followers a trickle: with
// block-level attestation, follower execution accepts the proposer enclave's
// signature checks, so a follower's own pre-verification only feeds the pool
// it would propose from after a view change — worth keeping warm, not worth
// three replicas' worth of redundant ECDSA per transaction.
func (n *Node) PreVerifyPendingN(budget int) int {
	batch := n.unverified.PopBatch(budget)
	if len(batch) == 0 {
		return 0
	}
	var confidential, public []*chain.Tx
	moved := 0
	for _, tx := range batch {
		switch tx.Type {
		case chain.TxTypeConfidential:
			confidential = append(confidential, tx)
		case chain.TxTypeGovernance:
			// Structural check only here; the semantic checks (successor
			// epoch, future height) run against chain state at execution.
			if _, err := keyepoch.DecodeRotation(tx.Payload); err == nil {
				if n.promoteVerified(tx) {
					n.tracer.Mark(n.traceKey(tx.Hash()), "preverify")
					moved++
				}
			}
		default:
			public = append(public, tx)
		}
	}
	// When a confidential engine is present, public transactions pre-verify
	// through the CS enclave too (PreVerifyBatch handles both classes): the
	// block attestation tag only vouches for signatures checked inside the
	// enclave, so host-side verification could never be covered by it. A
	// pure-public deployment keeps verifying in the host and emits no tags.
	if n.confEngine.Confidential() {
		confidential = append(confidential, public...)
		public = nil
	}
	for _, tx := range n.confEngine.PreVerifyBatch(confidential) {
		if n.promoteVerified(tx) {
			n.tracer.Mark(n.traceKey(tx.Hash()), "preverify")
			moved++
		}
	}
	for _, tx := range n.pubEngine.PreVerifyBatch(public) {
		if n.promoteVerified(tx) {
			n.tracer.Mark(n.traceKey(tx.Hash()), "preverify")
			moved++
		}
	}
	return moved
}

// ProposeBlock makes the leader cut a block from the verified pool (empty
// blocks are allowed — production emits them on a timer) and start
// consensus on it. Returns the number of transactions proposed.
//
// The block chains off the *predicted* parent: the tip of the in-flight
// proposal chain when proposals are pipelined, the committed tip otherwise.
// This is what makes pipelining correct — PR 5 serialized the driver
// because blocks stamped with the committed tip delivered stale once more
// than one instance overlapped. If the scheduler finds its prediction
// invalidated (view change, a foreign block at a predicted height), the
// invalidated proposals' transactions re-enter the pool here.
func (n *Node) ProposeBlock() (int, error) {
	if !n.replica.IsLeader() {
		return 0, consensus.ErrNotLeader
	}
	n.proposeMu.Lock()
	defer n.proposeMu.Unlock()
	view := n.replica.View()
	n.mu.Lock()
	tipHeight, tipHash := n.height, n.prevHash
	n.mu.Unlock()
	height, parent, aborted := n.sched.Predict(view, tipHeight, tipHash)
	if len(aborted) > 0 {
		n.repoolUncommitted(aborted)
	}
	txs := n.verified.PopBatch(n.cfg.BlockMaxTxs)
	block := &chain.Block{
		Header: chain.Header{
			Height:    height,
			PrevHash:  parent,
			Timestamp: uint64(time.Now().UnixNano()),
			Proposer:  uint32(n.endpoint.ID()),
		},
		Txs: txs,
	}
	block.ComputeTxRoot()
	// Everything in the verified pool passed signature pre-verification in
	// this node's enclave; attest that fact so followers can accept the
	// batch without re-running ECDSA per transaction. The enclave re-checks
	// its own cache and recomputes the root before tagging (AttestPreVerified
	// refuses otherwise), so the tag cannot claim more than the enclave
	// actually verified. The tag rides outside the header, leaving the block
	// hash (and the scheduler's tracking of it) unchanged.
	block.VerifyTag = n.confEngine.AttestPreVerified(height, uint32(n.endpoint.ID()), txs)
	n.sched.Track(height, block.Hash(), parent, txs)
	if _, err := n.replica.Propose(block.Encode()); err != nil {
		// The proposal never entered consensus (view changed under us, or
		// the replica closed); the transactions go back to the pool instead
		// of vanishing, and the prediction is withdrawn.
		n.sched.Untrack(height, block.Hash())
		for _, tx := range txs {
			n.verified.Add(tx)
		}
		return 0, err
	}
	return len(txs), nil
}

// onCommit receives a consensus-committed block. Every replica sees
// identical inputs in identical order; the OCC scheduler preserves
// block-order semantics, so all replicas reach identical state. At pipeline
// depth 1 the block applies synchronously here (the serialized fallback
// mode); at depth > 1 it is handed to the execute-behind-order queue so the
// delivery loop returns to consensus while execution proceeds.
func (n *Node) onCommit(seq uint64, payload []byte) {
	if n.executor == nil {
		n.applyBlock(payload)
		return
	}
	block, err := chain.DecodeBlock(payload)
	if err != nil {
		return
	}
	// From delivery to application the block's transactions are accounted
	// to the executor queue, not the predicted chain.
	n.sched.Delivered(block.Header.Height, block.Hash())
	n.executor.Submit(block, payload)
}

// applyBlock validates and executes one encoded block at the current chain
// tip. Both consensus delivery and catch-up sync funnel through it; applyMu
// plus the height/prev-hash guard make duplicate or stale applications
// no-ops, so the two paths can race safely. Reports whether the chain
// advanced.
func (n *Node) applyBlock(payload []byte) bool {
	block, err := chain.DecodeBlock(payload)
	if err != nil {
		return false
	}
	return n.applyDecoded(block, payload)
}

// applyDecoded is applyBlock past decoding — the executor queue carries
// blocks already decoded, so it enters here.
func (n *Node) applyDecoded(block *chain.Block, payload []byte) bool {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()

	n.mu.Lock()
	tipHeight, tipHash := n.height, n.prevHash
	n.mu.Unlock()
	if block.Header.Height != tipHeight || block.Header.PrevHash != tipHash {
		// Stale (already applied via the other path) or gapped. A stale
		// delivery can still carry transactions that never committed — a
		// proposal cut against a tip another instance advanced past. The
		// proposer popped those from its pool at proposal time; without
		// re-pooling, its copies are gone and the transactions strand in
		// every follower's pool until leadership happens to rotate. Put the
		// uncommitted ones back (Add dedups, so nodes that still hold their
		// gossiped copies no-op).
		n.repoolUncommitted(block.Txs)
		return false
	}
	// A synced block travelled outside consensus; re-derive the tx root
	// before trusting its contents.
	leaves := make([]chain.Hash, len(block.Txs))
	for i, tx := range block.Txs {
		leaves[i] = tx.Hash()
	}
	if chain.MerkleRoot(leaves) != block.Header.TxRoot {
		return false
	}

	// If the proposer's enclave attested pre-verification of this batch (and
	// the tag checks out against our ring), seed the engines' caches so
	// execution skips per-transaction ECDSA. The tx root above already binds
	// the tag to exactly these transactions. A missing or bad tag costs
	// nothing but the shortcut: execution falls back to verifying every
	// signature itself.
	if len(block.VerifyTag) > 0 {
		if n.confEngine.VerifyPreVerifyTag(block.Header.Height, block.Header.Proposer, block.Header.TxRoot, block.VerifyTag) {
			var conf, pub []*chain.Tx
			for _, tx := range block.Txs {
				switch tx.Type {
				case chain.TxTypeConfidential:
					conf = append(conf, tx)
				case chain.TxTypePublic:
					pub = append(pub, tx)
				}
			}
			n.confEngine.TrustPreVerified(conf)
			n.pubEngine.TrustPreVerified(pub)
			mVerifyTagAccepted.Inc()
		} else {
			mVerifyTagRejected.Inc()
		}
	}

	// Ordering is complete for every transaction in the block: consensus has
	// committed it at this height.
	for _, tx := range block.Txs {
		n.tracer.Mark(n.traceKey(tx.Hash()), "order")
	}

	// A scheduled rotation whose activation height this block reaches takes
	// effect before the block executes, so the block's transactions (and
	// every later sealed write) run under the new epoch on all replicas.
	activated := n.maybeActivateEpoch(block.Header.Height)

	start := time.Now()
	results, batch := n.executeBlock(block)
	execElapsed := time.Since(start)
	n.execTimeNs.Add(int64(execElapsed))
	mBlockExecSeconds.ObserveDuration(execElapsed)
	for _, tx := range block.Txs {
		n.tracer.Mark(n.traceKey(tx.Hash()), "execute")
	}

	commitStart := time.Now()
	batch.Put(blockKey(block.Header.Height), payload)
	if activated {
		// The epoch marker flips in the same atomic batch as the block that
		// crossed the activation height.
		batch.Put(keEpochKey, chain.Encode(chain.Uint(n.confEngine.CurrentEpoch())))
		batch.Delete(kePendingKey)
	}
	if err := n.store.WriteBatch(batch); err != nil {
		n.finishEpochTransitions(false, activated)
		// A failed block commit is node-fatal unless the store was closed
		// under us by a clean shutdown: the WAL's durability is unknown, so
		// continuing would eventually acknowledge commits that a power cut
		// silently discards. Fail-stop and let recovery sort out the disk.
		if !errors.Is(err, storage.ErrClosed) {
			n.fatalStore(fmt.Errorf("block %d commit: %w", block.Header.Height, err))
		}
		return false
	}
	n.finishEpochTransitions(true, activated)
	commitElapsed := time.Since(commitStart)
	n.commitTimeNs.Add(int64(commitElapsed))
	mBlockCommitSeconds.ObserveDuration(commitElapsed)

	n.mu.Lock()
	n.height = block.Header.Height + 1
	n.prevHash = block.Hash()
	for _, res := range results {
		if res != nil {
			n.committed[res.TxHash] = res.Receipt
			n.txHeight[res.TxHash] = block.Header.Height
		}
	}
	close(n.heightCh) // wake WaitHeight parkers
	n.heightCh = make(chan struct{})
	n.mu.Unlock()
	// The committed tip advanced: consume the predicted chain's head if
	// this was the predicted block, or abort the whole in-flight suffix if
	// a different block landed at a predicted height (view change winner,
	// catch-up sync). Aborted transactions re-enter the pool; execution
	// dedup keeps any that later committed elsewhere from running twice.
	if aborted := n.sched.Applied(block.Header.Height, block.Hash()); len(aborted) > 0 {
		n.repoolUncommitted(aborted)
	}
	// Committed transactions leave this node's pools (followers hold their
	// own gossiped copies), and their pre-verification metadata leaves the
	// enclave.
	hashes := make([]chain.Hash, 0, len(block.Txs))
	for _, tx := range block.Txs {
		h := tx.Hash()
		hashes = append(hashes, h)
		n.unverified.Remove(h)
		n.verified.Remove(h)
	}
	for _, h := range hashes {
		key := n.traceKey(h)
		n.tracer.Mark(key, "commit")
		n.tracer.End(key)
	}
	n.confEngine.DropPreVerified(hashes)
	n.pubEngine.DropPreVerified(hashes)
	n.txsExecuted.Add(uint64(len(block.Txs)))
	n.blocksClosed.Add(1)
	mBlocks.Inc()
	mTxsCommitted.Add(uint64(len(block.Txs)))
	// Receipt notification: serving layers (gateway long-polls) learn what
	// this block committed. Hooks run outside the state lock so they may
	// call back into Receipt/ProveTx.
	n.mu.Lock()
	hooks := make([]func(uint64, []chain.Hash), 0, len(n.commitHooks))
	for _, fn := range n.commitHooks {
		hooks = append(hooks, fn)
	}
	n.mu.Unlock()
	for _, fn := range hooks {
		fn(block.Header.Height, hashes)
	}
	// Still under applyMu: the store is quiescent, so a due checkpoint sees
	// exactly the state after this block.
	n.maybeCheckpoint()
	return true
}

// maybeCheckpoint exports a snapshot when the chain crosses a checkpoint
// boundary, then anchors consensus-log GC and block pruning at it. Caller
// holds applyMu.
func (n *Node) maybeCheckpoint() {
	interval := n.cfg.CheckpointInterval
	if interval == 0 {
		return
	}
	n.mu.Lock()
	height, tipHash := n.height, n.prevHash
	n.mu.Unlock()
	if height == 0 || height%interval != 0 || n.snapshots.LatestHeight() >= height {
		return
	}
	start := time.Now()
	cp, err := snapshot.Export(n.store, height, tipHash, n.confEngine.CheckpointMACKey(), n.confEngine.CurrentEpoch(), n.cfg.SnapshotChunkBytes)
	if err != nil {
		return
	}
	mCheckpointSeconds.ObserveSince(start)
	n.snapshots.Set(cp)
	// Peers lagging past this checkpoint get a snapshot, not block replay:
	// the consensus committed log below it serves nobody.
	if height > n.baseHeight {
		n.replica.CompactLog(height - n.baseHeight)
	}
	n.pruneBlocks(height)
}

// execWays resolves the speculative-pass fan-out: ExecWorkers when set,
// else the legacy Parallelism knob.
func (n *Node) execWays() int {
	if n.cfg.ExecWorkers > 0 {
		return n.cfg.ExecWorkers
	}
	return n.cfg.Parallelism
}

// engineFor routes a transaction to its engine.
func (n *Node) engineFor(tx *chain.Tx) *core.Engine {
	if tx.Type == chain.TxTypeConfidential {
		return n.confEngine
	}
	return n.pubEngine
}

// executeBlock runs a block's transactions with optimistic concurrency:
// an initial parallel pass against the pre-block snapshot, then an in-order
// validation pass that re-executes any transaction whose reads overlap an
// earlier transaction's writes. Smart-contract parallel execution is the
// platform feature behind Figure 11's 4-way ≈ 2× result.
func (n *Node) executeBlock(block *chain.Block) ([]*core.ExecResult, *storage.Batch) {
	txs := block.Txs
	results := make([]*core.ExecResult, len(txs))
	// Deduplicate at execution: a client retrying under faults can land the
	// same transaction in two blocks (the first possibly via a different
	// leader). Every replica skips re-executed hashes identically, so the
	// dedup is deterministic and state stays convergent.
	skip := make([]bool, len(txs))
	n.mu.Lock()
	skipped := uint64(0)
	for i, tx := range txs {
		_, skip[i] = n.txHeight[tx.Hash()]
		if skip[i] {
			skipped++
		}
	}
	storeBase := n.storeBase
	n.mu.Unlock()
	if storeBase > 0 {
		// This replica joined from a snapshot (or pruned its tail), so its
		// txHeight index lacks pre-base entries. The receipt store fills the
		// gap deterministically: receipts ride in the snapshot and exist on
		// every replica exactly for executed transactions, so a duplicate of
		// an old transaction is skipped here just as peers with a full index
		// skip it via txHeight.
		for i, tx := range txs {
			if skip[i] {
				continue
			}
			if _, ok, err := core.ReadReceipt(n.store, tx.Hash()); err == nil && ok {
				skip[i] = true
				skipped++
			}
		}
	}
	mDedupSkips.Add(skipped)
	// Governance transactions are applied by the platform in block order,
	// not by a contract engine; resolve them before the parallel pass (they
	// are rare, and their validity depends only on serialized chain state).
	gov := make([]bool, len(txs))
	for i, tx := range txs {
		if skip[i] || tx.Type != chain.TxTypeGovernance {
			continue
		}
		gov[i] = true
		results[i] = n.applyGovernance(tx, block.Header.Height)
	}
	if n.lanes != nil && len(txs) > 1 {
		// Speculative pass over the persistent OCC lane pool. Each lane
		// reads only the pre-block snapshot, so worker count cannot change
		// results — the sequential validation pass below is the only place
		// effects become visible, in block order, on every replica.
		n.lanes.Run(len(txs), func(i int) {
			if skip[i] || gov[i] {
				return
			}
			res, err := n.engineFor(txs[i]).Execute(txs[i])
			if err == nil {
				results[i] = res
			}
		})
	} else {
		for i, tx := range txs {
			if skip[i] || gov[i] {
				continue
			}
			if res, err := n.engineFor(tx).Execute(tx); err == nil {
				results[i] = res
			}
		}
	}

	// Validation pass: block order wins; conflicting speculative results
	// are discarded and re-executed against the updated view. AppendWrites
	// both fills the durable batch and publishes plaintext writes into the
	// engines' state cache, so later (re-)executions in the block observe
	// earlier effects.
	written := make(map[string]struct{})
	batch := &storage.Batch{}
	var speculated, conflicts uint64
	for i, tx := range txs {
		if skip[i] {
			continue
		}
		res := results[i]
		if gov[i] {
			// Platform-applied, already in block order: commit its writes
			// directly (its conflict sets are empty by construction).
			_ = res.AppendWrites(batch)
			continue
		}
		if res != nil {
			speculated++
		}
		if res == nil || intersects(res.ReadSet, written) {
			if res != nil {
				// Speculative result read state an earlier transaction in
				// this block wrote: discard and re-execute in order.
				conflicts++
			}
			fresh, err := n.engineFor(tx).Execute(tx)
			if err != nil {
				results[i] = nil
				continue
			}
			res = fresh
			results[i] = res
		}
		if err := res.AppendWrites(batch); err != nil {
			results[i] = nil
			continue
		}
		for k := range res.WriteKeys {
			written[k] = struct{}{}
		}
	}
	mOCCSpeculated.Add(speculated)
	mOCCConflicts.Add(conflicts)
	return results, batch
}

func intersects(reads map[string]struct{}, writes map[string]struct{}) bool {
	if len(reads) == 0 || len(writes) == 0 {
		return false
	}
	small, large := reads, writes
	if len(writes) < len(reads) {
		small, large = writes, reads
	}
	for k := range small {
		if _, ok := large[k]; ok {
			return true
		}
	}
	return false
}

// Receipt returns the locally-indexed plaintext receipt for a transaction,
// if this node has executed it.
func (n *Node) Receipt(txHash chain.Hash) (*chain.Receipt, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.committed[txHash]
	return r, ok
}

// StoredReceipt fetches the persisted receipt bytes (sealed under k_tx for
// confidential transactions) — what an untrusted party reading the database
// would see.
func (n *Node) StoredReceipt(txHash chain.Hash) ([]byte, bool, error) {
	return core.ReadReceipt(n.store, txHash)
}

// WaitHeight blocks until the node has committed at least h blocks. The
// wait parks on a notification channel that applyBlock closes on every
// height advance — no polling.
func (n *Node) WaitHeight(h uint64, timeout time.Duration) error {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		n.mu.Lock()
		height, ch := n.height, n.heightCh
		n.mu.Unlock()
		if height >= h {
			return nil
		}
		select {
		case <-ch:
		case <-timer.C:
			return fmt.Errorf("node %d: timeout waiting for height %d (at %d)", n.ID(), h, n.Height())
		}
	}
}

// Stats summarizes a node's execution counters.
type Stats struct {
	TxsExecuted  uint64
	BlocksClosed uint64
	ExecTime     time.Duration
	CommitTime   time.Duration
}

// Stats returns execution counters.
func (n *Node) Stats() Stats {
	return Stats{
		TxsExecuted:  n.txsExecuted.Load(),
		BlocksClosed: n.blocksClosed.Load(),
		ExecTime:     time.Duration(n.execTimeNs.Load()),
		CommitTime:   time.Duration(n.commitTimeNs.Load()),
	}
}

// ErrNotLeader re-exports the consensus error for callers.
var ErrNotLeader = consensus.ErrNotLeader

// Replica exposes the consensus replica (tests).
func (n *Node) Replica() *consensus.Replica { return n.replica }

// Endpoint exposes the p2p endpoint (tests, fault injection).
func (n *Node) Endpoint() *p2p.Endpoint { return n.endpoint }

// VerifiedPoolLen reports the verified pool backlog.
func (n *Node) VerifiedPoolLen() int { return n.verified.Len() }

// UnverifiedPoolLen reports the un-verified pool backlog.
func (n *Node) UnverifiedPoolLen() int { return n.unverified.Len() }

// Close stops the sync loop, the consensus replica, the endpoint and the
// store. Idempotent.
func (n *Node) Close() {
	n.Kill()
	n.storeOnce.Do(func() {
		n.store.Close()
	})
}

// Kill stops the node WITHOUT closing the store — the crash path. A real
// crash never runs shutdown hooks: the store gets no final flush, no clean
// WAL close, no sstable publish. The crash harness uses Kill after freezing
// the fault filesystem so recovery sees exactly what a power cut leaves;
// fatalStore uses it because a node whose disk failed must stop
// participating but must not touch the store further. Idempotent, and Close
// after Kill still releases the store.
func (n *Node) Kill() {
	n.stopOnce.Do(func() {
		close(n.stop)
		if n.executor != nil {
			// First: unblock a delivery loop parked in Submit and wait out
			// the in-progress block application, so replica.Close below
			// cannot deadlock against it and the store sees no new writes
			// after Kill returns.
			n.executor.Close()
		}
		n.replica.Close()
		n.endpoint.Close()
		if n.lanes != nil {
			n.lanes.Close()
		}
	})
}

// fatalStore records the node's first unrecoverable storage error and kills
// the node asynchronously (the caller is often on the consensus delivery
// path, which Kill waits on).
func (n *Node) fatalStore(err error) {
	n.fatalMu.Lock()
	first := n.fatalErr == nil
	if first {
		n.fatalErr = err
	}
	n.fatalMu.Unlock()
	if first {
		mStoreFatal.Inc()
		go n.Kill()
	}
}

// Failed returns the storage error that killed this node, or nil while it is
// healthy.
func (n *Node) Failed() error {
	n.fatalMu.Lock()
	defer n.fatalMu.Unlock()
	return n.fatalErr
}

// crashHit fires the named crash point if armed. It reports true when the
// node just crashed (or already had): the caller must abandon its operation
// immediately — the filesystem underneath is frozen.
func (n *Node) crashHit(point string) bool {
	if err := n.cfg.crash.Hit(point); err != nil {
		n.fatalStore(fmt.Errorf("%s: %w", point, err))
		return true
	}
	return false
}

// ErrStopped is reserved for the run loop.
var ErrStopped = errors.New("node: stopped")
