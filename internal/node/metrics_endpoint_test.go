package node

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"confide/internal/metrics"
)

// scrape fetches the exposition endpoint and parses every sample line into
// series → value. It also sanity-checks the exposition framing (content
// type, HELP/TYPE ordering) the way a Prometheus scraper would.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 16<<20))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		series := line[:sp]
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		name = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] {
			t.Fatalf("sample %q precedes its # TYPE line", line)
		}
		samples[series] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// sumPrefix totals every series whose name (ignoring labels) starts with
// prefix — e.g. all stage buckets of one histogram family.
func sumPrefix(samples map[string]float64, prefix string) float64 {
	var total float64
	for series, v := range samples {
		if strings.HasPrefix(series, prefix) {
			total += v
		}
	}
	return total
}

// TestMetricsEndpointDuringClusterRun scrapes /metrics while a small
// cluster commits confidential transactions, asserting that the
// TEE-boundary, pipeline-stage, storage and consensus series are present
// and that counters are monotone between scrapes.
func TestMetricsEndpointDuringClusterRun(t *testing.T) {
	if !metrics.Default().Enabled() {
		t.Skip("registry disabled")
	}
	srv := httptest.NewServer(metrics.Default().Handler())
	defer srv.Close()

	// An LSM-backed cluster exercises the WAL/memtable counters too.
	c := newTestCluster(t, ClusterOptions{Nodes: 4, StoreDir: t.TempDir()})
	client := newClusterClient(t, c)

	commitBatch := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			tx, _, err := client.NewConfidentialTx(ledgerAddr, "credit", acct("alice"), []byte{1})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Submit(tx); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(5 * time.Millisecond)
		if _, err := c.DrainAll(8, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	commitBatch(3)
	first := scrape(t, srv.URL)

	// Counter families every cluster run must populate. Values are
	// process-wide (other tests contribute), so assert presence and > 0.
	wantPositive := []string{
		"confide_tee_ecalls_total",
		"confide_tee_boundary_copied_bytes_total",
		"confide_storage_batch_writes_total",
		"confide_storage_wal_appends_total",
		"confide_consensus_proposals_total",
		"confide_consensus_delivered_total",
		"confide_node_blocks_committed_total",
		"confide_node_txs_committed_total",
	}
	for _, series := range wantPositive {
		if v, ok := first[series]; !ok || v <= 0 {
			t.Errorf("series %s missing or non-positive (%v)", series, first[series])
		}
	}
	// Pipeline-stage histograms: each stage label must have observations.
	for _, stage := range pipelineStages {
		series := `confide_pipeline_stage_seconds_count{stage="` + stage + `"}`
		if v := first[series]; v <= 0 {
			t.Errorf("pipeline stage %q has no observations", stage)
		}
	}
	if v := first["confide_pipeline_total_seconds_count"]; v <= 0 {
		t.Error("pipeline total histogram has no observations")
	}

	commitBatch(3)
	second := scrape(t, srv.URL)

	for series, before := range first {
		if strings.Contains(series, "_pages") { // gauges may go down
			continue
		}
		after, ok := second[series]
		if !ok {
			t.Errorf("series %s disappeared between scrapes", series)
			continue
		}
		if after < before {
			t.Errorf("series %s went backwards: %v -> %v", series, before, after)
		}
	}
	// The second batch must actually have moved the pipeline.
	if sumPrefix(second, "confide_pipeline_total_seconds_count") <=
		sumPrefix(first, "confide_pipeline_total_seconds_count") {
		t.Error("pipeline span count did not advance across batches")
	}
}
