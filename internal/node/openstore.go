package node

import (
	"errors"
	"fmt"

	"confide/internal/snapshot"
	"confide/internal/storage"
	"confide/internal/storage/vfs"
)

// OpenRecoveredStore opens an LSM store for a node booting after an unclean
// shutdown, handling the two states a crash can leave that must not become
// a permanent boot failure on a replicated node:
//
//   - Corruption beyond the WAL's torn-tail tolerance (a lying fsync
//     published an sstable whose data never hit the platter, bit rot in
//     table data): OpenLSM reports ErrCorrupt.
//   - A half-installed snapshot (crash between snapshot.Install's first
//     mutation and the base-marker commit): the store opens cleanly but
//     carries snapshot.InstallingKey.
//
// Both quarantine the directory — it is renamed aside with a ".quarantined"
// suffix for forensics, never silently deleted — and a fresh empty store is
// opened in its place. The node then rebuilds through snapshot fast-sync
// plus block replay, exactly like a wiped rejoin: with 2f+1 healthy
// replicas, local disk damage is a latency event, not a data-loss event.
//
// Opens verify sstable checksums in full (VerifyOnOpen) because this path
// runs precisely when the disk's word cannot be trusted.
func OpenRecoveredStore(dir string, opts storage.LSMOptions) (store *storage.LSMStore, quarantined bool, err error) {
	opts.VerifyOnOpen = true
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.Default()
	}
	s, err := storage.OpenLSM(dir, opts)
	if err == nil {
		bad := false
		if _, found, gerr := s.Get(snapshot.InstallingKey); gerr != nil || found {
			bad = true // half-installed snapshot (or unreadable marker)
		}
		if !bad {
			return s, false, nil
		}
		s.Close()
	} else if !errors.Is(err, storage.ErrCorrupt) {
		return nil, false, err
	}
	if err := quarantineDir(fsys, dir); err != nil {
		return nil, false, fmt.Errorf("node: quarantine %s: %w", dir, err)
	}
	mStoreQuarantines.Inc()
	s, err = storage.OpenLSM(dir, opts)
	if err != nil {
		return nil, true, err
	}
	return s, true, nil
}

// quarantineDir renames dir to dir+".quarantined", replacing any previous
// quarantine (one generation of forensics is enough; keeping N would grow
// without bound under repeated faults).
func quarantineDir(fsys vfs.FS, dir string) error {
	target := dir + ".quarantined"
	if err := fsys.RemoveAll(target); err != nil {
		return err
	}
	return fsys.Rename(dir, target)
}
