package node

import (
	"errors"
	"fmt"
	"time"

	"confide/internal/chain"
	"confide/internal/p2p"
	"confide/internal/snapshot"
	"confide/internal/storage"
	"confide/internal/storage/vfs"
)

// Snapshot fast-sync. Block catch-up (sync.go) replays history one block at
// a time, which is the right tool for short gaps but makes a wiped or
// long-offline node replay from genesis — and stops working entirely once
// peers prune old payloads. This layer is the long-gap path: exporting
// nodes announce their latest checkpoint height alongside the usual height
// gossip; a node more than one checkpoint interval behind requests a
// manifest (rotating across announcing peers), streams that manifest's
// chunks in parallel from its origin (each chunk verified against its
// content address the moment it arrives, with retries, backoff and per-peer
// scoring on bad data), atomically installs the verified state, and then
// replays only the tail above the checkpoint through the ordinary sync
// path.

const (
	snapAnnounceTopic     = "confide/snap/announce"      // Uint(checkpoint height)
	snapManifestReqTopic  = "confide/snap/manifest/req"  // Uint(min height wanted)
	snapManifestRespTopic = "confide/snap/manifest/resp" // Manifest.Encode()
	snapChunkReqTopic     = "confide/snap/chunk/req"     // List(height, index)
	snapChunkRespTopic    = "confide/snap/chunk/resp"    // List(height, index, chunk)
)

const (
	// snapMaxAttempts bounds fetch tries per chunk before the session aborts.
	snapMaxAttempts = 6
	// snapBadPeerScore is the badness at which a peer stops being selected
	// while any alternative exists.
	snapBadPeerScore = 3
)

// snapFetchSession tracks one in-flight snapshot fetch. Fields after the
// manifest arrives are guarded by Node.snapMu; arrived channels are closed
// (once) by the chunk-response handler to wake waiting workers.
//
// Chunks are requested only from the manifest's origin: sealed state is
// authenticated encryption with per-replica randomness, so two honest peers
// hold different ciphertext bytes for the same plaintext state and only the
// origin can serve chunks matching its manifest's content addresses. Source
// diversity lives one level up — any announcing peer can serve a manifest
// (the MAC key is quorum-shared), and manifest requests rotate across them,
// skipping peers that previously served bad data.
type snapFetchSession struct {
	target   uint64 // checkpoint height being fetched
	started  time.Time
	manifest *snapshot.Manifest
	origin   p2p.NodeID // peer whose manifest was adopted; sole chunk source
	chunks   [][]byte
	arrived  []chan struct{}
	peers    []p2p.NodeID // peers known to hold this checkpoint
	manReq   time.Time    // last manifest request (re-request pacing)
	manReqs  int          // manifest requests sent (rotation cursor)
}

// startSnapshotSync subscribes the snapshot topics. The announce loop rides
// on syncLoop's ticker (sync.go).
func (n *Node) startSnapshotSync() {
	n.endpoint.Subscribe(snapAnnounceTopic, n.onSnapAnnounce)
	n.endpoint.Subscribe(snapManifestReqTopic, n.onSnapManifestReq)
	n.endpoint.Subscribe(snapManifestRespTopic, n.onSnapManifestResp)
	n.endpoint.Subscribe(snapChunkReqTopic, n.onSnapChunkReq)
	n.endpoint.Subscribe(snapChunkRespTopic, n.onSnapChunkResp)
}

// announceCheckpoint broadcasts the latest exported checkpoint height (from
// syncLoop, alongside the height announcement).
func (n *Node) announceCheckpoint() {
	if h := n.snapshots.LatestHeight(); h > 0 {
		n.endpoint.Broadcast(snapAnnounceTopic, chain.Encode(chain.Uint(h)))
	}
}

// snapshotFetchActive reports whether a fast-sync session is in flight —
// onSyncStatus holds off block requests while one is (the snapshot will
// land the node past those blocks anyway).
func (n *Node) snapshotFetchActive() bool {
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	return n.snapFetch != nil
}

// onSnapAnnounce reacts to a peer's checkpoint announcement: when the
// checkpoint is at least one full interval ahead of the local tip, block
// replay would cross a whole checkpoint of history, so the snapshot path is
// chosen and the peer's manifest requested.
func (n *Node) onSnapAnnounce(m p2p.Message) {
	it, err := chain.Decode(m.Data)
	if err != nil || it.IsList {
		return
	}
	peerCkpt, err := it.AsUint()
	if err != nil || peerCkpt == 0 {
		return
	}
	interval := n.cfg.CheckpointInterval
	if interval == 0 {
		return // checkpoints disabled locally: keep the block-replay path
	}
	if height := n.Height(); peerCkpt <= height || peerCkpt-height < interval {
		return // within one checkpoint of the tip: tail replay is cheaper
	}
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	if s := n.snapFetch; s != nil {
		// A session exists: remember this peer as an alternative manifest
		// source; re-request (rotating across known sources) if the current
		// ask has gone unanswered.
		if peerCkpt >= s.target {
			s.addPeer(m.From)
		}
		if s.manifest == nil && time.Since(s.manReq) > 4*n.cfg.SyncInterval {
			s.manReq = time.Now()
			if peer, ok := n.pickPeerLocked(s, s.manReqs); ok {
				s.manReqs++
				n.endpoint.Send(peer, snapManifestReqTopic, chain.Encode(chain.Uint(s.target)))
			}
		}
		return
	}
	n.snapFetch = &snapFetchSession{
		target:  peerCkpt,
		started: time.Now(),
		peers:   []p2p.NodeID{m.From},
		manReq:  time.Now(),
		manReqs: 1,
	}
	n.endpoint.Send(m.From, snapManifestReqTopic, chain.Encode(chain.Uint(peerCkpt)))
}

func (s *snapFetchSession) addPeer(id p2p.NodeID) {
	for _, p := range s.peers {
		if p == id {
			return
		}
	}
	s.peers = append(s.peers, id)
}

// onSnapManifestReq serves the latest checkpoint's manifest when it is at
// least as fresh as the requested height.
func (n *Node) onSnapManifestReq(m p2p.Message) {
	it, err := chain.Decode(m.Data)
	if err != nil || it.IsList {
		return
	}
	want, err := it.AsUint()
	if err != nil {
		return
	}
	cp := n.snapshots.Latest()
	if cp == nil || cp.Manifest.Height < want {
		return
	}
	n.endpoint.Send(m.From, snapManifestRespTopic, cp.Manifest.Encode())
}

// onSnapManifestResp authenticates an incoming manifest and, if it is the
// one the active session is waiting for, launches the chunk fetch.
func (n *Node) onSnapManifestResp(m p2p.Message) {
	man, err := snapshot.DecodeManifest(m.Data)
	if err != nil {
		n.scorePeer(m.From)
		return
	}
	// Authenticate before anything else: the MAC binds height, tip, root,
	// epoch and chunk list to an enclave holding k_states; the root must
	// also commit to the chunk-hash list actually present. The MAC key
	// derives from the manifest's declared epoch — a rejoining node may be
	// behind the exporter's epoch, and the ring derives forward keys from
	// the ratchet without advancing.
	macKey, ok := n.snapshotMACKey(man)
	if !ok || man.VerifyMAC(macKey) != nil ||
		snapshot.ComputeRoot(man.ChunkHashes) != man.StateRoot {
		mSnapBadManifests.Inc()
		n.scorePeer(m.From)
		return
	}
	if man.Height <= n.Height() {
		n.clearFetchSession(man.Height)
		return
	}
	n.snapMu.Lock()
	s := n.snapFetch
	if s == nil || s.manifest != nil || man.Height < s.target {
		n.snapMu.Unlock()
		return
	}
	s.target = man.Height
	s.manifest = man
	s.origin = m.From
	s.chunks = make([][]byte, len(man.ChunkHashes))
	s.arrived = make([]chan struct{}, len(man.ChunkHashes))
	for i := range s.arrived {
		s.arrived[i] = make(chan struct{})
	}
	s.addPeer(m.From)
	n.snapMu.Unlock()
	go n.runSnapshotFetch(s)
}

// snapshotMACKey resolves the MAC key for a manifest's declared epoch. On a
// keyed (confidential) deployment an epoch-less or underivable-epoch
// manifest is rejected outright (ok=false): falling back to a nil key would
// let an unauthenticated manifest pass VerifyMAC. A key-less deployment
// accepts only unauthenticated manifests, as before.
func (n *Node) snapshotMACKey(man *snapshot.Manifest) ([]byte, bool) {
	if n.confEngine.CurrentEpoch() == 0 {
		return nil, true
	}
	key := n.confEngine.CheckpointMACKeyFor(man.Epoch)
	return key, key != nil
}

// onSnapChunkReq serves one chunk of the retained checkpoint.
func (n *Node) onSnapChunkReq(m p2p.Message) {
	it, err := chain.Decode(m.Data)
	if err != nil || !it.IsList || len(it.List) != 2 {
		return
	}
	height, err1 := it.List[0].AsUint()
	index, err2 := it.List[1].AsUint()
	if err1 != nil || err2 != nil {
		return
	}
	data := n.snapshots.Chunk(height, int(index))
	if data == nil {
		return
	}
	n.endpoint.Send(m.From, snapChunkRespTopic, chain.Encode(chain.List(
		chain.Uint(height), chain.Uint(index), chain.Bytes(data))))
}

// onSnapChunkResp verifies an arriving chunk against its content address
// and hands it to the waiting session. A hash mismatch scores the sender
// and leaves the slot empty for a retry from another peer.
func (n *Node) onSnapChunkResp(m p2p.Message) {
	it, err := chain.Decode(m.Data)
	if err != nil || !it.IsList || len(it.List) != 3 {
		n.scorePeer(m.From)
		return
	}
	height, err1 := it.List[0].AsUint()
	index, err2 := it.List[1].AsUint()
	if err1 != nil || err2 != nil {
		return
	}
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	s := n.snapFetch
	if s == nil || s.manifest == nil || s.manifest.Height != height ||
		index >= uint64(len(s.chunks)) || s.chunks[index] != nil {
		return
	}
	data := it.List[2].Str
	if s.manifest.VerifyChunk(int(index), data) != nil {
		mSnapBadChunks.Inc()
		n.badPeers[m.From]++
		return
	}
	s.chunks[index] = append([]byte(nil), data...)
	close(s.arrived[index])
}

// scorePeer records a protocol violation (garbage or inauthentic payload)
// against a peer for source selection.
func (n *Node) scorePeer(id p2p.NodeID) {
	n.snapMu.Lock()
	n.badPeers[id]++
	n.snapMu.Unlock()
}

// pickPeerLocked chooses a manifest source for an attempt: round-robin
// across the session's announcing peers, skipping peers that have served bad
// data unless no clean peer remains. Caller holds snapMu.
func (n *Node) pickPeerLocked(s *snapFetchSession, attempt int) (p2p.NodeID, bool) {
	if len(s.peers) == 0 {
		return 0, false
	}
	for off := 0; off < len(s.peers); off++ {
		id := s.peers[(attempt+off)%len(s.peers)]
		if n.badPeers[id] < snapBadPeerScore {
			return id, true
		}
	}
	return s.peers[attempt%len(s.peers)], true
}

// clearFetchSession drops the active session if it targets height (or any
// older checkpoint).
func (n *Node) clearFetchSession(height uint64) {
	n.snapMu.Lock()
	if n.snapFetch != nil && n.snapFetch.target <= height {
		n.snapFetch = nil
	}
	n.snapMu.Unlock()
}

// runSnapshotFetch streams every chunk of the session's manifest with
// bounded parallelism, then installs the verified checkpoint. Runs on its
// own goroutine; request/wait/retry per chunk, exponential backoff, peer
// rotation on timeout and on bad data.
func (n *Node) runSnapshotFetch(s *snapFetchSession) {
	man := s.manifest
	total := len(man.ChunkHashes)
	work := make(chan int, total)
	for i := 0; i < total; i++ {
		work <- i
	}
	close(work)

	workers := n.cfg.SnapshotFetchWorkers
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	failed := make(chan struct{})
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for idx := range work {
				if !n.fetchChunk(s, idx, failed) {
					select {
					case <-failed:
					default:
						close(failed)
					}
					return
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}

	select {
	case <-failed:
		n.clearFetchSession(man.Height)
		return
	default:
	}
	n.snapMu.Lock()
	chunks := s.chunks
	n.snapMu.Unlock()
	if n.installSnapshot(man, chunks) {
		mSnapSyncSeconds.ObserveSince(s.started)
	}
	n.clearFetchSession(man.Height)
}

// fetchChunk requests one chunk from the manifest's origin until it arrives
// verified or attempts run out (only the origin holds the ciphertext bytes
// the manifest's content addresses commit to; see snapFetchSession). Returns
// false to abort the whole session — a fresh session can then adopt a
// different peer's manifest.
func (n *Node) fetchChunk(s *snapFetchSession, idx int, failed <-chan struct{}) bool {
	timeout := 2 * n.cfg.SyncInterval
	for attempt := 0; attempt < snapMaxAttempts; attempt++ {
		if attempt > 0 {
			mSnapFetchRetries.Inc()
		}
		n.endpoint.Send(s.origin, snapChunkReqTopic, chain.Encode(chain.List(
			chain.Uint(s.manifest.Height), chain.Uint(uint64(idx)))))
		timer := time.NewTimer(timeout)
		select {
		case <-s.arrived[idx]:
			timer.Stop()
			return true
		case <-failed:
			timer.Stop()
			return false
		case <-n.stop:
			timer.Stop()
			return false
		case <-timer.C:
			// Lost request, lost response, or a bad chunk that was
			// discarded on arrival: back off and rotate to the next peer.
			timeout += timeout / 2
		}
	}
	return false
}

// installSnapshot atomically adopts a verified checkpoint: the store gains
// the full sealed state, the base marker records the new chain start, the
// engines drop stale cached plaintext, and consensus fast-forwards so the
// node rejoins ordering at the live tip. The block tail above the
// checkpoint arrives through the ordinary catch-up sync.
func (n *Node) installSnapshot(man *snapshot.Manifest, chunks [][]byte) bool {
	n.applyMu.Lock()
	if man.Height <= n.Height() {
		n.applyMu.Unlock()
		return false // the chain caught up past the checkpoint while fetching
	}
	macKey, ok := n.snapshotMACKey(man)
	if !ok {
		mSnapInstallFailures.Inc()
		n.applyMu.Unlock()
		return false
	}
	if err := snapshot.Install(n.store, man, chunks, macKey); err != nil {
		mSnapInstallFailures.Inc()
		n.applyMu.Unlock()
		return false
	}
	if n.crashHit(vfs.CrashCheckpointInstall) {
		n.applyMu.Unlock()
		return false
	}
	// Commit the install: the base marker and the removal of the in-progress
	// marker land in one atomic batch, so recovery sees either "installing"
	// (quarantine) or a complete, committed install — never a half-adopted
	// checkpoint.
	commit := &storage.Batch{}
	commit.Put(metaBaseKey, encodeStoreBase(man.Height, man.TipHash))
	commit.Delete(snapshot.InstallingKey)
	if err := n.store.WriteBatch(commit); err != nil {
		if !errors.Is(err, storage.ErrClosed) {
			n.fatalStore(fmt.Errorf("snapshot install commit: %w", err))
		}
		n.applyMu.Unlock()
		return false
	}
	// The installed state carries the chain's epoch markers (ke/ keys ride
	// in the snapshot); bring the engine ring and the pending schedule in
	// line before any post-install block executes. A rejoin across a
	// rotation boundary ratchets the ring forward here.
	n.adoptEpochState()
	n.mu.Lock()
	n.height = man.Height
	n.prevHash = man.TipHash
	n.storeBase = man.Height
	if n.prunedTo < man.Height {
		n.prunedTo = man.Height
	}
	close(n.heightCh)
	n.heightCh = make(chan struct{})
	n.mu.Unlock()
	// Snapshot writes bypassed the engines; their read caches are stale.
	// Invalidate before releasing applyMu so the next block execution can
	// only see post-install state.
	n.confEngine.InvalidateStateCache()
	n.pubEngine.InvalidateStateCache()
	n.applyMu.Unlock()
	// Fast-forward consensus after releasing applyMu: AdvanceTo delivers any
	// commits queued above the checkpoint synchronously, and those re-enter
	// applyBlock, which takes applyMu itself.
	if man.Height > n.baseHeight {
		n.replica.AdvanceTo(man.Height - n.baseHeight)
	}
	mSyncPathSnapshot.Inc()
	mSnapInstallHeight.Set(int64(man.Height))
	return true
}
