package node

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
	"time"

	"confide/internal/chain"
	"confide/internal/core"
	"confide/internal/p2p"
)

// pipelineLedgerTxs builds a conflict-heavy confidential workload: seeded
// credits followed by moves/credits over a small hot account set, so the
// parallel OCC lanes see real read/write conflicts.
func pipelineLedgerTxs(t *testing.T, c *Cluster, seed int64, n int) []*chain.Tx {
	t.Helper()
	client := newClusterClient(t, c)
	rng := rand.New(rand.NewSource(seed))
	accounts := []string{"acc-a", "acc-b", "acc-c", "acc-d"}
	var txs []*chain.Tx
	for _, a := range accounts {
		tx, _, err := client.NewConfidentialTx(ledgerAddr, "credit", acct(a), []byte{200})
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	for len(txs) < n {
		from := accounts[rng.Intn(len(accounts))]
		to := accounts[rng.Intn(len(accounts))]
		var tx *chain.Tx
		var err error
		if rng.Intn(3) == 0 {
			tx, _, err = client.NewConfidentialTx(ledgerAddr, "credit", acct(from), []byte{byte(1 + rng.Intn(5))})
		} else {
			tx, _, err = client.NewConfidentialTx(ledgerAddr, "move", acct(from), acct(to))
		}
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	return txs
}

// waitCommittedEverywhere polls until every transaction has a receipt on
// every node, or fails at the deadline.
func waitCommittedEverywhere(t *testing.T, c *Cluster, txs []*chain.Tx, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		missing := 0
		for _, n := range c.Nodes {
			for _, tx := range txs {
				if _, ok := n.Receipt(tx.Hash()); !ok {
					missing++
				}
			}
		}
		if missing == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d (node, tx) receipts still missing after %s", missing, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// headerChainRoot hashes node's header chain [0, height) — equal roots mean
// byte-identical chains, and execution determinism then implies identical
// state.
func headerChainRoot(t *testing.T, n *Node, height uint64) chain.Hash {
	t.Helper()
	hasher := sha256.New()
	for h := uint64(0); h < height; h++ {
		hdr, err := n.HeaderAt(h)
		if err != nil {
			t.Fatalf("node %d missing header %d: %v", n.ID(), h, err)
		}
		hasher.Write(hdr)
	}
	var root chain.Hash
	copy(root[:], hasher.Sum(nil))
	return root
}

// TestPipelinedDriverCommitsAll runs the background driver with a deep
// proposal window and parallel OCC lanes: every submitted transaction must
// commit on every node, with byte-identical header chains — the basic
// no-tx-loss property PR 5 bought by serializing, now under pipelining.
func TestPipelinedDriverCommitsAll(t *testing.T) {
	cluster, err := NewCluster(ClusterOptions{
		Nodes: 4,
		Node: Config{
			BlockMaxTxs:   8,
			PipelineDepth: 4,
			ExecWorkers:   4,
			EngineOpts:    core.AllOptimizations(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.DeployEverywhere(ledgerAddr, chain.AddressFromBytes([]byte("own")), core.VMCVM, ledgerModule(t), true, 1); err != nil {
		t.Fatal(err)
	}
	txs := pipelineLedgerTxs(t, cluster, 7, 96)
	stop := cluster.StartDriver(2 * time.Millisecond)
	defer stop()
	for _, tx := range txs {
		if err := cluster.Leader().SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
	}
	waitCommittedEverywhere(t, cluster, txs, 30*time.Second)
	stop()

	// With 96 txs over 8-tx blocks the run needs ≥ 12 blocks; pipelining
	// must not have forked or diverged any replica.
	height := cluster.Nodes[0].Height()
	if height < 12 {
		t.Fatalf("height %d < 12 — blocks did not fill", height)
	}
	for _, n := range cluster.Nodes[1:] {
		if err := n.WaitHeight(height, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	root := headerChainRoot(t, cluster.Nodes[0], height)
	for _, n := range cluster.Nodes[1:] {
		if got := headerChainRoot(t, n, height); got != root {
			t.Fatalf("node %d header chain %x != node 0 %x", n.ID(), got[:8], root[:8])
		}
	}
}

// TestMixedExecWorkersDeterminism mixes replicas with 1, 2, 4 and 8 OCC
// lanes inside one cluster running pipelined: every replica must commit the
// byte-identical chain and identical plaintext state, because speculation
// reads only the pre-block snapshot and the validation pass serializes in
// block order regardless of lane count.
func TestMixedExecWorkersDeterminism(t *testing.T) {
	cluster, err := NewCluster(ClusterOptions{
		Nodes: 4,
		Node: Config{
			BlockMaxTxs:   8,
			PipelineDepth: 4,
			EngineOpts:    core.AllOptimizations(),
		},
		PerNodeExecWorkers: map[int]int{0: 1, 1: 2, 2: 4, 3: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.DeployEverywhere(ledgerAddr, chain.AddressFromBytes([]byte("own")), core.VMCVM, ledgerModule(t), true, 1); err != nil {
		t.Fatal(err)
	}
	txs := pipelineLedgerTxs(t, cluster, 11, 80)
	client := newClusterClient(t, cluster)
	stop := cluster.StartDriver(2 * time.Millisecond)
	defer stop()
	for _, tx := range txs {
		if err := cluster.Leader().SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
	}
	waitCommittedEverywhere(t, cluster, txs, 30*time.Second)
	stop()

	height := cluster.Nodes[0].Height()
	for _, n := range cluster.Nodes[1:] {
		if err := n.WaitHeight(height, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	root := headerChainRoot(t, cluster.Nodes[0], height)
	for _, n := range cluster.Nodes[1:] {
		if got := headerChainRoot(t, n, height); got != root {
			t.Fatalf("node %d (workers differ) header chain %x != node 0 %x", n.ID(), got[:8], root[:8])
		}
	}
	// Receipts and enclave-read balances must agree across every replica,
	// not just the header chains.
	for _, tx := range txs {
		base, ok := cluster.Nodes[0].Receipt(tx.Hash())
		if !ok {
			t.Fatal("missing baseline receipt")
		}
		for _, n := range cluster.Nodes[1:] {
			got, ok := n.Receipt(tx.Hash())
			if !ok || got.Status != base.Status || !bytes.Equal(got.Output, base.Output) {
				t.Fatalf("node %d receipt diverges from node 0", n.ID())
			}
		}
	}
	for _, a := range []string{"acc-a", "acc-b", "acc-c", "acc-d"} {
		read, _, err := client.NewConfidentialTx(ledgerAddr, "read", acct(a))
		if err != nil {
			t.Fatal(err)
		}
		var base []byte
		for i, n := range cluster.Nodes {
			res, err := n.ConfidentialEngine().Execute(read)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				base = res.Receipt.Output
			} else if !bytes.Equal(res.Receipt.Output, base) {
				t.Fatalf("balance %q differs on node %d: %v vs %v", a, i, res.Receipt.Output, base)
			}
		}
	}
}

// TestBacklogCountsActualInFlightTxs pins the Backlog fix: the in-flight
// term must be the exact number of transactions riding unexecuted
// proposals, not instances × BlockMaxTxs. A partially-full block in a
// partitioned (undeliverable) consensus instance must count its actual
// size; before the fix it counted as a full block.
func TestBacklogCountsActualInFlightTxs(t *testing.T) {
	cluster, err := NewCluster(ClusterOptions{
		Nodes: 4,
		Node: Config{
			BlockMaxTxs:   32,
			PipelineDepth: 4,
			EngineOpts:    core.AllOptimizations(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.DeployEverywhere(ledgerAddr, chain.AddressFromBytes([]byte("own")), core.VMCVM, ledgerModule(t), true, 1); err != nil {
		t.Fatal(err)
	}
	leader := cluster.Leader()
	txs := pipelineLedgerTxs(t, cluster, 5, 10)

	// Isolate the leader so its proposal cannot deliver, keeping the txs
	// in flight deterministically.
	var rest []p2p.NodeID
	for _, n := range cluster.Nodes {
		if n.ID() != leader.ID() {
			rest = append(rest, n.ID())
		}
	}
	cluster.Net().Partition([][]p2p.NodeID{{leader.ID()}, rest})
	for _, tx := range txs {
		if err := leader.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
	}
	leader.PreVerifyPending()
	if got := leader.Backlog(); got != len(txs) {
		t.Fatalf("pre-proposal backlog = %d, want %d (pool only)", got, len(txs))
	}
	if _, err := leader.ProposeBlock(); err != nil {
		t.Fatal(err)
	}
	if got := leader.Backlog(); got != len(txs) {
		t.Fatalf("in-flight backlog = %d, want exactly %d (old estimate: BlockMaxTxs=32)", got, len(txs))
	}
	// A second proposal chains off the predicted parent and cuts an empty
	// block; backlog must not budge.
	if _, err := leader.ProposeBlock(); err != nil {
		t.Fatal(err)
	}
	if got := leader.Backlog(); got != len(txs) {
		t.Fatalf("backlog after empty pipelined proposal = %d, want %d", got, len(txs))
	}

	// Heal; retransmission completes both instances and the backlog drains
	// to zero as the blocks execute.
	cluster.Net().Heal()
	deadline := time.Now().Add(20 * time.Second)
	for {
		if leader.Backlog() == 0 && leader.Height() >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backlog never drained: %d (height %d)", leader.Backlog(), leader.Height())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, tx := range txs {
		if _, ok := leader.Receipt(tx.Hash()); !ok {
			h := tx.Hash()
			t.Fatalf("tx lost through the partition: %x", h[:6])
		}
	}
}
