package node

import (
	"encoding/binary"

	"confide/internal/chain"
	"confide/internal/metrics"
)

// Pipeline instrumentation. The stage tracer follows each transaction
// through the Figure 7 pipeline on this node:
//
//	(seal, client-side) → preverify → order → execute → commit
//
// A span opens when the transaction first enters the node's unverified pool
// (SubmitTx or gossip), marks "preverify" when it moves to the verified
// pool, then "order", "execute" and "commit" as its block commits; the
// "order" stage therefore covers pool wait plus consensus latency. Followers
// that never pre-verified a gossiped transaction skip straight to "order" —
// the tracer allows forward skips by design.
//
// Every node in an in-process cluster executes every transaction, so tracer
// keys are node-scoped (node id + tx hash). Per-node Tracer instances all
// bind to the same underlying registry histograms; the per-stage series
// aggregate across nodes exactly like the other process-wide counters.
var (
	pipelineStages = []string{"preverify", "order", "execute", "commit"}

	mBlocks = metrics.Default().Counter("confide_node_blocks_committed_total",
		"blocks applied to the chain tip")
	mTxsCommitted = metrics.Default().Counter("confide_node_txs_committed_total",
		"transactions committed inside applied blocks")
	mDedupSkips = metrics.Default().Counter("confide_node_dedup_skips_total",
		"transactions skipped at execution because an earlier block already held them")
	mBlockExecSeconds = metrics.Default().Histogram("confide_node_block_execute_seconds",
		"per-block execution time (OCC passes)", nil)
	mBlockCommitSeconds = metrics.Default().Histogram("confide_node_block_commit_seconds",
		"per-block storage commit time (WriteBatch)", nil)
)

// newPipelineTracer creates a node's view of the shared pipeline tracer
// instruments.
func newPipelineTracer() *metrics.Tracer {
	return metrics.NewTracer(metrics.Default(), "confide_pipeline", pipelineStages...)
}

// traceKey scopes a transaction hash to this node, since every node in an
// in-process cluster traces the same transactions.
func (n *Node) traceKey(h chain.Hash) string {
	var key [36]byte
	binary.LittleEndian.PutUint32(key[:4], uint32(n.endpoint.ID()))
	copy(key[4:], h[:])
	return string(key[:])
}
