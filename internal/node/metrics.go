package node

import (
	"encoding/binary"

	"confide/internal/chain"
	"confide/internal/metrics"
)

// Pipeline instrumentation. The stage tracer follows each transaction
// through the Figure 7 pipeline on this node:
//
//	(seal, client-side) → preverify → order → execute → commit
//
// A span opens when the transaction first enters the node's unverified pool
// (SubmitTx or gossip), marks "preverify" when it moves to the verified
// pool, then "order", "execute" and "commit" as its block commits; the
// "order" stage therefore covers pool wait plus consensus latency. Followers
// that never pre-verified a gossiped transaction skip straight to "order" —
// the tracer allows forward skips by design.
//
// Every node in an in-process cluster executes every transaction, so tracer
// keys are node-scoped (node id + tx hash). Per-node Tracer instances all
// bind to the same underlying registry histograms; the per-stage series
// aggregate across nodes exactly like the other process-wide counters.
var (
	pipelineStages = []string{"preverify", "order", "execute", "commit"}

	mBlocks = metrics.Default().Counter("confide_node_blocks_committed_total",
		"blocks applied to the chain tip")
	mTxsCommitted = metrics.Default().Counter("confide_node_txs_committed_total",
		"transactions committed inside applied blocks")
	mDedupSkips = metrics.Default().Counter("confide_node_dedup_skips_total",
		"transactions skipped at execution because an earlier block already held them")
	mOversizedRejected = metrics.Default().Counter("confide_node_oversized_tx_rejections_total",
		"transactions rejected at the submission boundary or on gossip receive for exceeding MaxTxBytes")
	mBlockExecSeconds = metrics.Default().Histogram("confide_node_block_execute_seconds",
		"per-block execution time (OCC passes)", nil)
	mBlockCommitSeconds = metrics.Default().Histogram("confide_node_block_commit_seconds",
		"per-block storage commit time (WriteBatch)", nil)

	// OCC scheduler effectiveness: conflicts/speculative is the fraction of
	// parallel work thrown away by the validation pass.
	mOCCSpeculated = metrics.Default().Counter("confide_node_occ_speculative_total",
		"transactions executed speculatively against the pre-block snapshot")
	mOCCConflicts = metrics.Default().Counter("confide_node_occ_conflicts_total",
		"speculative results discarded and re-executed by the validation pass")

	// Attested pre-verification: whether followers could accept the
	// proposer enclave's signature attestation or had to fall back to full
	// per-transaction ECDSA.
	mVerifyTagAccepted = metrics.Default().Counter("confide_node_verify_tag_total",
		"block pre-verification attestation tags, by outcome", metrics.L{K: "outcome", V: "accepted"})
	mVerifyTagRejected = metrics.Default().Counter("confide_node_verify_tag_total",
		"block pre-verification attestation tags, by outcome", metrics.L{K: "outcome", V: "rejected"})

	// Catch-up path selection: how lagging nodes rejoined the tip.
	mSyncPathBlocks = metrics.Default().Counter("confide_node_sync_path_total",
		"catch-up progress, by path", metrics.L{K: "path", V: "blocks"})
	mSyncPathSnapshot = metrics.Default().Counter("confide_node_sync_path_total",
		"catch-up progress, by path", metrics.L{K: "path", V: "snapshot"})

	// Checkpoint / fast-sync / pruning instruments.
	mCheckpointSeconds = metrics.Default().Histogram("confide_node_checkpoint_export_seconds",
		"time to export one state checkpoint", nil)
	mSnapSyncSeconds = metrics.Default().Histogram("confide_node_snapshot_sync_seconds",
		"manifest-request-to-install time of snapshot fast-syncs", nil)
	mSnapFetchRetries = metrics.Default().Counter("confide_node_snapshot_fetch_retries_total",
		"chunk fetch attempts beyond the first (timeouts, lost or bad responses)")
	mSnapBadChunks = metrics.Default().Counter("confide_node_snapshot_bad_chunks_total",
		"received chunks rejected for a content-hash mismatch")
	mSnapBadManifests = metrics.Default().Counter("confide_node_snapshot_bad_manifests_total",
		"received manifests rejected (MAC or root verification failed)")
	mSnapInstallFailures = metrics.Default().Counter("confide_node_snapshot_install_failures_total",
		"fully-fetched snapshots that failed verification at install")
	mSnapInstallHeight = metrics.Default().Gauge("confide_node_snapshot_install_height",
		"chain height of the most recent snapshot install (0 = never)")
	mBlocksPruned = metrics.Default().Counter("confide_node_blocks_pruned_total",
		"block payloads retired by checkpoint-anchored pruning")
	mStoreFatal = metrics.Default().Counter("confide_node_store_fatal_total",
		"nodes killed by an unrecoverable storage error (fail-stop on fsync/commit failure)")
	mStoreQuarantines = metrics.Default().Counter("confide_node_store_quarantines_total",
		"corrupt or half-installed stores set aside at reopen (node rebuilds via snapshot fast-sync)")
	mCrashRecoveries = metrics.Default().Counter("confide_node_crash_recoveries_total",
		"nodes revived from a simulated crash (store reopened from the post-crash disk image)")
)

// newPipelineTracer creates a node's view of the shared pipeline tracer
// instruments.
func newPipelineTracer() *metrics.Tracer {
	return metrics.NewTracer(metrics.Default(), "confide_pipeline", pipelineStages...)
}

// traceKey scopes a transaction hash to this node, since every node in an
// in-process cluster traces the same transactions.
func (n *Node) traceKey(h chain.Hash) string {
	var key [36]byte
	binary.LittleEndian.PutUint32(key[:4], uint32(n.endpoint.ID()))
	copy(key[4:], h[:])
	return string(key[:])
}
