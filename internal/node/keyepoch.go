package node

import (
	"time"

	"confide/internal/chain"
	"confide/internal/core"
	"confide/internal/keyepoch"
	"confide/internal/storage/vfs"
)

// Key-epoch rotation, node side. A rotation is a governance transaction
// (TYPE=2) carrying keyepoch.Rotation: consensus orders it like any other
// transaction, executing it schedules the rotation (writes the ke/pending
// marker), and when the chain reaches the activation height every replica
// advances its engine ring before executing that block — deterministically,
// because both the schedule and the height are chain state. Two markers
// persist the machine across restarts and ride inside state snapshots:
//
//	ke/epoch   — the epoch the chain has activated (absent = epoch 1)
//	ke/pending — a scheduled rotation not yet activated
var (
	keEpochKey   = []byte("ke/epoch")
	kePendingKey = []byte("ke/pending")
)

// defaultResealRate is the background re-seal budget (records/second) when
// Config.ResealRate is zero.
const defaultResealRate = 2048

// resealTick paces the background sweep; each tick spends a proportional
// slice of the per-second budget.
const resealTick = 50 * time.Millisecond

// adoptEpochState reads the durable epoch markers and brings the engine ring
// and the pending schedule in line with the chain. Runs at construction
// (after recoverChainState) and after a snapshot install, where the markers
// arrive with the snapshot's state chunks. Caller must ensure no concurrent
// block application.
func (n *Node) adoptEpochState() {
	if raw, found, err := n.store.Get(keEpochKey); err == nil && found {
		if it, err := chain.Decode(raw); err == nil && !it.IsList {
			if epoch, err := it.AsUint(); err == nil {
				_ = n.confEngine.AdvanceEpochTo(epoch)
			}
		}
	}
	n.pendingRotation = nil
	if raw, found, err := n.store.Get(kePendingKey); err == nil && found {
		if rot, err := keyepoch.DecodeRotation(raw); err == nil {
			n.pendingRotation = &rot
		}
	}
}

// applyGovernance executes one ordered governance transaction at the given
// block height: the platform applies it directly, no contract VM. Always
// returns a result (governance receipts are public and record rejection as
// a failed status, so every replica writes the identical receipt). Caller
// holds applyMu.
func (n *Node) applyGovernance(tx *chain.Tx, height uint64) *core.ExecResult {
	receipt := &chain.Receipt{TxHash: tx.Hash()}
	fail := func(msg string) *core.ExecResult {
		receipt.Status = chain.ReceiptFailed
		receipt.Output = []byte(msg)
		return core.NewOrderedResult(receipt, nil)
	}
	rot, err := keyepoch.DecodeRotation(tx.Payload)
	if err != nil {
		return fail(err.Error())
	}
	// All conditions check deterministic chain state, so acceptance is
	// identical on every replica.
	switch {
	case n.pendingRotation != nil || n.rotationCandidate != nil:
		return fail("keyepoch: a rotation is already scheduled")
	case rot.NewEpoch != n.confEngine.CurrentEpoch()+1:
		return fail("keyepoch: rotation must target the successor epoch")
	case rot.ActivationHeight <= height:
		return fail("keyepoch: activation height must be in the future")
	}
	n.rotationCandidate = &rot
	receipt.Status = chain.ReceiptOK
	receipt.Output = rot.Encode()
	return core.NewOrderedResult(receipt, map[string][]byte{string(kePendingKey): rot.Encode()})
}

// maybeActivateEpoch advances the engine ring when the block about to
// execute has reached a scheduled activation height, and queues the marker
// flip for the block's atomic batch. Returns the markers to add, or nil.
// Caller holds applyMu.
func (n *Node) maybeActivateEpoch(height uint64) (activated bool) {
	rot := n.pendingRotation
	if rot == nil || height < rot.ActivationHeight {
		return false
	}
	if err := n.confEngine.AdvanceEpochTo(rot.NewEpoch); err != nil {
		// Derivation cannot fail in practice; leave the schedule in place so
		// the next block retries rather than silently diverging.
		return false
	}
	return true
}

// finishEpochTransitions updates the in-memory schedule after a successful
// block commit: an activated rotation is retired and a rotation scheduled in
// this block becomes pending. On a failed commit the candidate is dropped
// (its ke/pending marker never persisted). Caller holds applyMu.
func (n *Node) finishEpochTransitions(committed, activated bool) {
	if !committed {
		n.rotationCandidate = nil
		return
	}
	if activated {
		n.pendingRotation = nil
	}
	if n.rotationCandidate != nil {
		n.pendingRotation = n.rotationCandidate
		n.rotationCandidate = nil
	}
}

// CurrentEpoch reports the confidential engine's active key epoch.
func (n *Node) CurrentEpoch() uint64 { return n.confEngine.CurrentEpoch() }

// PendingRotation returns the scheduled-but-not-activated rotation, if any.
func (n *Node) PendingRotation() *keyepoch.Rotation {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	if n.pendingRotation == nil {
		return nil
	}
	rot := *n.pendingRotation
	return &rot
}

// ResealNow runs one re-seal sweep immediately (budget <= 0 = unlimited),
// zeroizing drained epochs on completion. Tests and benchmarks use it to
// drain deterministically instead of waiting out the background loop.
func (n *Node) ResealNow(budget int) (core.ResealStatus, error) {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	status, err := n.confEngine.ResealSweep(budget)
	if err == nil && status.Done {
		n.lastDrained = n.confEngine.CurrentEpoch()
		n.confEngine.ZeroizeDrainedEpochs()
	}
	return status, err
}

// startResealLoop launches the background re-seal sweeper: a rate-limited
// migration of old-epoch sealed records onto the current epoch's key, so
// retired epochs drain to zero and their secrets can be zeroized inside the
// enclave. A negative ResealRate disables it.
func (n *Node) startResealLoop() {
	rate := n.cfg.ResealRate
	if rate < 0 {
		return
	}
	if rate == 0 {
		rate = defaultResealRate
	}
	budget := rate * int(resealTick) / int(time.Second)
	if budget < 1 {
		budget = 1
	}
	go func() {
		ticker := time.NewTicker(resealTick)
		defer ticker.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-ticker.C:
			}
			// Cheap pre-checks without the apply lock: nothing to do unless
			// stale epochs exist and the current epoch isn't already drained.
			current := n.confEngine.CurrentEpoch()
			if current == 0 || !n.confEngine.StaleEpochsRetained() {
				continue
			}
			if n.crashHit(vfs.CrashResealSweep) {
				return
			}
			n.applyMu.Lock()
			if n.lastDrained == current {
				n.applyMu.Unlock()
				continue
			}
			status, err := n.confEngine.ResealSweep(budget)
			if err == nil && status.Done {
				n.lastDrained = current
				n.confEngine.ZeroizeDrainedEpochs()
			}
			n.applyMu.Unlock()
		}
	}()
}
