package node

import (
	"bytes"
	"testing"
	"time"

	"confide/internal/chain"
	"confide/internal/core"
	"confide/internal/keyepoch"
	"confide/internal/metrics"
)

// Cluster-level key-rotation drills: a governance transaction rotates the
// whole network's engine secrets at a consensus-ordered height, under client
// traffic, with the acceptance window keeping in-flight envelopes alive and
// everything beyond it rejected identically on every replica.

// rotateAndActivate submits a rotation through the leader and drives rounds
// until every node has activated the target epoch.
func rotateAndActivate(t *testing.T, c *Cluster, delay uint64) keyepoch.Rotation {
	t.Helper()
	govTx, rot, err := c.RotateEpoch(delay)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.ProcessRound(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		done := true
		for _, n := range c.Nodes {
			if n.CurrentEpoch() < rot.NewEpoch {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rotation to epoch %d never activated (heights %d..)", rot.NewEpoch, c.Nodes[0].Height())
		}
	}
	// The governance receipt is public and persisted on every replica.
	for _, n := range c.Nodes {
		stored, found, err := n.StoredReceipt(govTx.Hash())
		if err != nil || !found {
			t.Fatalf("node %d: governance receipt missing (err=%v)", n.ID(), err)
		}
		rpt, err := chain.DecodeReceipt(stored)
		if err != nil {
			t.Fatal(err)
		}
		if rpt.Status != chain.ReceiptOK {
			t.Fatalf("node %d: rotation rejected: %s", n.ID(), rpt.Output)
		}
	}
	return rot
}

// TestClusterRotationMidTraffic rotates the key epoch while credit traffic
// flows. Transactions sealed to the pre-rotation pk_tx keep committing (the
// acceptance window covers them) and post-rotation clients use the new key;
// no transaction fails and every replica lands on the same epoch and state.
func TestClusterRotationMidTraffic(t *testing.T) {
	c := newTestCluster(t, ClusterOptions{Nodes: 4, Node: Config{ResealRate: -1}})
	oldClient := newClusterClient(t, c) // seals to epoch 1

	var committed []*chain.Tx
	credit := func(client *core.Client, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			tx, _, err := client.NewConfidentialTx(ledgerAddr, "credit", acct("rot"), []byte{1})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Submit(tx); err != nil {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
			if _, err := c.ProcessRound(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			committed = append(committed, tx)
		}
	}

	credit(oldClient, 3) // pre-rotation traffic
	rot := rotateAndActivate(t, c, 2)
	if rot.NewEpoch != 2 {
		t.Fatalf("rotation targeted epoch %d", rot.NewEpoch)
	}

	// Old-epoch envelopes are still inside the window after activation.
	credit(oldClient, 3)

	// A fresh client picks up the rotated key and epoch tag.
	epoch, pk := c.EnvelopeKeyInfo()
	if epoch != 2 {
		t.Fatalf("cluster reports epoch %d, want 2", epoch)
	}
	newClient := newClusterClient(t, c)
	newClient.SetEnvelopeKey(epoch, pk)
	credit(newClient, 3)

	// Zero failed transactions: every committed receipt is OK.
	for _, tx := range committed {
		stored, found, err := c.Nodes[0].StoredReceipt(tx.Hash())
		if err != nil || !found {
			t.Fatalf("receipt missing for committed tx (err=%v)", err)
		}
		// Confidential receipts are sealed; presence in rc/ plus the block
		// commit path having not aborted is the success signal here, and the
		// balance check below confirms all 9 credits landed.
		_ = stored
	}
	want := readBalance(t, c.Nodes[0], c, "rot")
	if want[0] != 9 {
		t.Fatalf("balance = %d, want 9 (a credit was lost in rotation)", want[0])
	}
	for _, n := range c.Nodes[1:] {
		if got := readBalance(t, n, c, "rot"); !bytes.Equal(got, want) {
			t.Fatalf("node %d balance diverged: %v vs %v", n.ID(), got, want)
		}
	}
	for _, n := range c.Nodes {
		if got := n.CurrentEpoch(); got != 2 {
			t.Fatalf("node %d at epoch %d, want 2", n.ID(), got)
		}
	}
}

// TestClusterStaleEnvelopeRejectedBeyondWindow drives two rotations, pushing
// epoch 1 outside the acceptance window: epoch-1 envelopes are then dropped
// at pre-verification on every replica — deterministically, from public
// header bytes — and no replica commits them.
func TestClusterStaleEnvelopeRejectedBeyondWindow(t *testing.T) {
	c := newTestCluster(t, ClusterOptions{Nodes: 4, Node: Config{ResealRate: -1}})
	staleClient := newClusterClient(t, c) // epoch 1

	// Seed a balance, then rotate twice (epoch 3, window 1 → epoch 1 stale).
	tx, _, err := staleClient.NewConfidentialTx(ledgerAddr, "credit", acct("stale"), []byte{5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, err := c.ProcessRound(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	rotateAndActivate(t, c, 2)
	rotateAndActivate(t, c, 2)

	rejBefore := keyepochStaleRejections()
	late, _, err := staleClient.NewConfidentialTx(ledgerAddr, "credit", acct("stale"), []byte{7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(late); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	count, err := c.ProcessRound(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("stale envelope committed in a block of %d txs", count)
	}
	if keyepochStaleRejections() == rejBefore {
		t.Error("stale-rejection counter never moved")
	}
	if _, found, _ := c.Nodes[0].StoredReceipt(late.Hash()); found {
		t.Error("stale transaction produced a receipt")
	}
	// Balance unchanged: only the seed credit landed.
	epoch, pk := c.EnvelopeKeyInfo()
	client := newClusterClient(t, c)
	client.SetEnvelopeKey(epoch, pk)
	read, _, err := client.NewConfidentialTx(ledgerAddr, "read", acct("stale"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Nodes[0].ConfidentialEngine().Execute(read)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Status != chain.ReceiptOK || res.Receipt.Output[0] != 5 {
		t.Fatalf("balance after stale rejection = %v", res.Receipt.Output)
	}
}

// TestClusterRotationValidation exercises deterministic rejection of bad
// rotations: wrong successor epoch, activation height in the past, and a
// second rotation while one is pending. Every replica records the identical
// failed receipt.
func TestClusterRotationValidation(t *testing.T) {
	c := newTestCluster(t, ClusterOptions{Nodes: 4, Node: Config{ResealRate: -1}})

	submitGov := func(rot keyepoch.Rotation) *chain.Tx {
		t.Helper()
		tx := &chain.Tx{Type: chain.TxTypeGovernance, Payload: rot.Encode()}
		if err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
		if _, err := c.ProcessRound(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		return tx
	}
	expectFailed := func(tx *chain.Tx, why string) {
		t.Helper()
		for _, n := range c.Nodes {
			stored, found, err := n.StoredReceipt(tx.Hash())
			if err != nil || !found {
				t.Fatalf("%s: receipt missing on node %d", why, n.ID())
			}
			rpt, err := chain.DecodeReceipt(stored)
			if err != nil {
				t.Fatal(err)
			}
			if rpt.Status != chain.ReceiptFailed {
				t.Fatalf("%s: accepted on node %d", why, n.ID())
			}
		}
	}

	h := c.Nodes[0].Height()
	expectFailed(submitGov(keyepoch.Rotation{NewEpoch: 3, ActivationHeight: h + 5}), "epoch skip")
	h = c.Nodes[0].Height()
	expectFailed(submitGov(keyepoch.Rotation{NewEpoch: 2, ActivationHeight: h}), "past activation")

	// A valid schedule far in the future, then a second one while pending.
	h = c.Nodes[0].Height()
	good := submitGov(keyepoch.Rotation{NewEpoch: 2, ActivationHeight: h + 50})
	stored, found, _ := c.Nodes[0].StoredReceipt(good.Hash())
	if !found {
		t.Fatal("valid rotation receipt missing")
	}
	if rpt, _ := chain.DecodeReceipt(stored); rpt.Status != chain.ReceiptOK {
		t.Fatalf("valid rotation rejected: %s", rpt.Output)
	}
	for _, n := range c.Nodes {
		if p := n.PendingRotation(); p == nil || p.NewEpoch != 2 {
			t.Fatalf("node %d: pending rotation not recorded", n.ID())
		}
	}
	h = c.Nodes[0].Height()
	expectFailed(submitGov(keyepoch.Rotation{NewEpoch: 2, ActivationHeight: h + 60}), "double schedule")
}

// TestClusterResealDrainsAndZeroizes rotates, runs the deterministic sweep,
// and requires: all sealed records migrated to the new epoch, the retired
// epoch zeroized once out of window, and balances intact afterwards.
func TestClusterResealDrainsAndZeroizes(t *testing.T) {
	c := newTestCluster(t, ClusterOptions{Nodes: 4, Node: Config{ResealRate: -1}})
	client := newClusterClient(t, c)
	for i := 0; i < 3; i++ {
		tx, _, err := client.NewConfidentialTx(ledgerAddr, "credit", acct("drain"), []byte{2})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
		if _, err := c.ProcessRound(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	rotateAndActivate(t, c, 2)
	for _, n := range c.Nodes {
		st, err := n.ResealNow(0)
		if err != nil {
			t.Fatalf("node %d: sweep: %v", n.ID(), err)
		}
		if !st.Done {
			t.Fatalf("node %d: sweep incomplete: %+v", n.ID(), st)
		}
		// Epoch 1 drained but in-window: still retained.
		if !n.ConfidentialEngine().StaleEpochsRetained() {
			t.Fatalf("node %d: in-window epoch dropped early", n.ID())
		}
	}
	rotateAndActivate(t, c, 2)
	for _, n := range c.Nodes {
		if _, err := n.ResealNow(0); err != nil {
			t.Fatal(err)
		}
		// Now epoch 1 is out of window and drained: zeroized by ResealNow.
		if got := n.ConfidentialEngine().CurrentEpoch(); got != 3 {
			t.Fatalf("node %d at epoch %d", n.ID(), got)
		}
	}

	// No sealed record on any node still carries a pre-rotation tag.
	for _, n := range c.Nodes {
		n.Store().Iterate([]byte("st/"), func(k, v []byte) bool {
			if e, _, err := keyepoch.ParseRecord(v); err == nil && e < 3 {
				t.Errorf("node %d: record %q still at epoch %d", n.ID(), k, e)
			}
			return true
		})
	}
	want := readBalance(t, c.Nodes[0], c, "drain")
	if want[0] != 6 {
		t.Fatalf("balance lost in re-seal: %v", want)
	}
}

// TestClusterWipeRejoinAcrossEpochBoundary wipes a follower after a rotation
// and requires it to rejoin via snapshot fast-sync: the checkpoint manifest
// is MAC'd under the rotated epoch's key (recorded in the manifest), the
// joiner verifies it by forward-deriving that epoch, and after install it
// adopts the rotated epoch from the snapshot's ke/ markers.
func TestClusterWipeRejoinAcrossEpochBoundary(t *testing.T) {
	const interval = 3
	c := newTestCluster(t, ClusterOptions{
		Nodes: 4,
		Node: Config{
			CheckpointInterval: interval,
			SnapshotChunkBytes: 256,
			SyncInterval:       15 * time.Millisecond,
			ResealRate:         -1,
		},
	})
	driveBlocks(t, c, 2, "boundary")
	rotateAndActivate(t, c, 2)
	// Cross a checkpoint boundary post-rotation so the latest manifest is
	// sealed under epoch 2.
	for c.Nodes[0].Height()%interval != 0 {
		driveBlocks(t, c, 1, "boundary")
	}
	driveBlocks(t, c, 1, "boundary")
	tip := c.Nodes[0].Height()

	victim := victimOf(c)
	if err := c.RestartNode(victim, true); err != nil {
		t.Fatal(err)
	}
	rejoined := c.Nodes[victim]
	if got := rejoined.CurrentEpoch(); got != 1 {
		t.Fatalf("wiped node boots at epoch %d, want 1", got)
	}
	if err := rejoined.WaitHeight(tip, 15*time.Second); err != nil {
		t.Fatalf("no rejoin across the epoch boundary: %v", err)
	}
	if got := mSyncPathSnapshot.Value(); got == 0 {
		t.Error("rejoin did not take the snapshot path")
	}
	if got := rejoined.CurrentEpoch(); got != 2 {
		t.Fatalf("rejoined node at epoch %d, want 2", got)
	}

	want := readBalance(t, c.Nodes[(victim+1)%4], c, "boundary")
	if got := readBalance(t, rejoined, c, "boundary"); !bytes.Equal(got, want) {
		t.Errorf("balance diverged after epoch-boundary rejoin: %v vs %v", got, want)
	}

	// The rejoined node keeps consensus — including through a further
	// rotation submitted after its return.
	rotateAndActivate(t, c, 2)
	for _, n := range c.Nodes {
		if got := n.CurrentEpoch(); got != 3 {
			t.Fatalf("node %d at epoch %d after post-rejoin rotation", n.ID(), got)
		}
	}
}

// keyepochStaleRejections reads the shared stale-rejection counter.
func keyepochStaleRejections() uint64 {
	return metrics.Default().Snapshot().CounterSum("confide_keyepoch_stale_envelope_rejections_total")
}
