package node

import (
	"bytes"
	"testing"
	"time"

	"confide/internal/chain"
	"confide/internal/metrics"
)

// Cluster-level snapshot fast-sync drills: a node is wiped and must rejoin
// through the checkpoint/snapshot path (not genesis replay), including under
// chunk loss and corruption, and after its peers have pruned the history a
// genesis replay would need.

// driveBlocks commits `rounds` single-credit blocks against acct(account)
// and returns the transactions (for receipt checks later).
func driveBlocks(t *testing.T, c *Cluster, rounds int, account string) []*chain.Tx {
	t.Helper()
	client := newClusterClient(t, c)
	txs := make([]*chain.Tx, 0, rounds)
	for i := 0; i < rounds; i++ {
		tx, _, err := client.NewConfidentialTx(ledgerAddr, "credit", acct(account), []byte{1})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
		if _, err := c.ProcessRound(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	return txs
}

// readBalance executes a read against one node's confidential engine.
func readBalance(t *testing.T, n *Node, c *Cluster, account string) []byte {
	t.Helper()
	client := newClusterClient(t, c)
	readTx, _, err := client.NewConfidentialTx(ledgerAddr, "read", acct(account))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.ConfidentialEngine().Execute(readTx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Status != chain.ReceiptOK {
		t.Fatalf("read failed: status %d (%s)", res.Receipt.Status, res.Receipt.Output)
	}
	return res.Receipt.Output
}

// victimOf picks a non-leader node to wipe so consensus keeps running on the
// surviving quorum.
func victimOf(c *Cluster) int {
	leader := int(c.Leader().ID())
	for i := range c.Nodes {
		if i != leader {
			return i
		}
	}
	return 0
}

func countBlockPayloads(t *testing.T, n *Node) int {
	t.Helper()
	count := 0
	if err := n.Store().Iterate([]byte("blk/"), func(_, _ []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return count
}

// TestClusterWipeAndRejoinSnapshotSync wipes a follower at height ≥ 2×
// CheckpointInterval and requires it to rejoin through snapshot fast-sync —
// certified from the metrics registry (snapshot path taken, zero bad chunks,
// zero failed installs) — replaying only the tail above the checkpoint, and
// to converge to the same state as its peers.
func TestClusterWipeAndRejoinSnapshotSync(t *testing.T) {
	const interval = 3
	c := newTestCluster(t, ClusterOptions{
		Nodes: 4,
		Node: Config{
			CheckpointInterval: interval,
			SnapshotChunkBytes: 256, // force a multi-chunk parallel fetch
			SyncInterval:       15 * time.Millisecond,
		},
	})
	txs := driveBlocks(t, c, 2*interval+1, "wipe") // height 7: checkpoints at 3 and 6
	tip := c.Nodes[0].Height()
	if tip < 2*interval {
		t.Fatalf("height %d below 2×interval", tip)
	}

	before := metrics.Default().Snapshot()
	pathBefore := mSyncPathSnapshot.Value()
	badBefore := mSnapBadChunks.Value()
	failBefore := mSnapInstallFailures.Value()

	victim := victimOf(c)
	if err := c.RestartNode(victim, true); err != nil {
		t.Fatal(err)
	}
	rejoined := c.Nodes[victim]
	if h := rejoined.Height(); h != 0 {
		t.Fatalf("wiped node starts at height %d, want 0", h)
	}
	if err := rejoined.WaitHeight(tip, 15*time.Second); err != nil {
		t.Fatalf("wiped node never caught up: %v", err)
	}

	// Certify the path from the registry: the snapshot route was taken, the
	// chunks all verified, and nothing bad was installed.
	if got := mSyncPathSnapshot.Value() - pathBefore; got == 0 {
		t.Error("rejoin did not take the snapshot path")
	}
	if got := mSnapBadChunks.Value() - badBefore; got != 0 {
		t.Errorf("clean network produced %d bad chunks", got)
	}
	if got := mSnapInstallFailures.Value() - failBefore; got != 0 {
		t.Errorf("%d snapshot installs failed", got)
	}
	after := metrics.Default().Snapshot()
	if d := after.CounterSum("confide_snapshot_installs_total") - before.CounterSum("confide_snapshot_installs_total"); d == 0 {
		t.Error("snapshot install counter never moved")
	}

	// The node adopted the latest checkpoint and replayed less than one
	// interval of blocks.
	rejoined.mu.Lock()
	base := rejoined.storeBase
	rejoined.mu.Unlock()
	if base == 0 || base%interval != 0 {
		t.Errorf("store base %d is not a checkpoint height", base)
	}
	if tail := tip - base; tail >= interval {
		t.Errorf("replayed a %d-block tail, want < %d", tail, interval)
	}
	if got := mSnapInstallHeight.Value(); uint64(got) != base {
		t.Errorf("install-height gauge %d, want %d", got, base)
	}

	// State converged: same tip hash, same balances, and receipts from
	// pre-checkpoint blocks are served from the snapshot's rc/ records.
	for _, n := range c.Nodes {
		if n.Height() != tip {
			t.Fatalf("node %d at height %d, want %d", n.ID(), n.Height(), tip)
		}
	}
	rejoined.mu.Lock()
	gotTip := rejoined.prevHash
	rejoined.mu.Unlock()
	c.Nodes[(victim+1)%4].mu.Lock()
	wantTip := c.Nodes[(victim+1)%4].prevHash
	c.Nodes[(victim+1)%4].mu.Unlock()
	if gotTip != wantTip {
		t.Errorf("tip hash diverged after rejoin: %x vs %x", gotTip[:8], wantTip[:8])
	}
	want := readBalance(t, c.Nodes[(victim+1)%4], c, "wipe")
	if got := readBalance(t, rejoined, c, "wipe"); !bytes.Equal(got, want) {
		t.Errorf("balance on rejoined node = %v, want %v", got, want)
	}
	if _, found, err := rejoined.StoredReceipt(txs[0].Hash()); err != nil || !found {
		t.Errorf("pre-checkpoint receipt missing after snapshot join (found=%v err=%v)", found, err)
	}

	// And the node participates in consensus again.
	driveBlocks(t, c, 1, "wipe")
	if h := rejoined.Height(); h != tip+1 {
		t.Errorf("rejoined node at %d after new block, want %d", h, tip+1)
	}
}

// TestClusterWipeRejoinUnderChunkFaults corrupts then drops snapshot chunk
// responses. Phase 1 (100% corruption) must produce verified-and-rejected
// chunks with retries and no install; phase 2 (corruption lifted, 35% loss)
// must converge to the peers' state with zero bad installs.
func TestClusterWipeRejoinUnderChunkFaults(t *testing.T) {
	const interval = 3
	c := newTestCluster(t, ClusterOptions{
		Nodes: 4,
		Node: Config{
			CheckpointInterval: interval,
			SnapshotChunkBytes: 256,
			SyncInterval:       15 * time.Millisecond,
		},
	})
	driveBlocks(t, c, 2*interval+1, "fault")
	tip := c.Nodes[0].Height()

	badBefore := mSnapBadChunks.Value()
	retryBefore := mSnapFetchRetries.Value()
	failBefore := mSnapInstallFailures.Value()
	pathBefore := mSyncPathSnapshot.Value()

	// Phase 1: every chunk response corrupted in flight. The content-address
	// check must reject them all; nothing can install.
	c.Net().SetTopicCorruptRate(snapChunkRespTopic, 1.0)
	victim := victimOf(c)
	if err := c.RestartNode(victim, true); err != nil {
		t.Fatal(err)
	}
	rejoined := c.Nodes[victim]

	deadline := time.Now().Add(15 * time.Second)
	for mSnapBadChunks.Value() == badBefore || mSnapFetchRetries.Value() == retryBefore {
		if time.Now().After(deadline) {
			t.Fatalf("no bad-chunk rejections observed under 100%% corruption (bad=%d retries=%d)",
				mSnapBadChunks.Value()-badBefore, mSnapFetchRetries.Value()-retryBefore)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := mSyncPathSnapshot.Value() - pathBefore; got != 0 {
		t.Fatalf("snapshot path completed %d times with all chunks corrupted", got)
	}
	if h := rejoined.Height(); h != 0 {
		t.Fatalf("node advanced to height %d on corrupted chunks", h)
	}

	// Phase 2: lift corruption, keep 35% loss on the chunk topic. Retries
	// and peer rotation must still converge the node.
	c.Net().SetTopicCorruptRate(snapChunkRespTopic, 0)
	c.Net().SetTopicDropRate(snapChunkRespTopic, 0.35)
	defer c.Net().SetTopicDropRate(snapChunkRespTopic, 0)
	if err := rejoined.WaitHeight(tip, 30*time.Second); err != nil {
		t.Fatalf("no convergence under chunk loss: %v", err)
	}

	if got := mSyncPathSnapshot.Value() - pathBefore; got == 0 {
		t.Error("rejoin did not take the snapshot path")
	}
	if got := mSnapInstallFailures.Value() - failBefore; got != 0 {
		t.Errorf("%d bad installs under faults, want 0", got)
	}
	want := readBalance(t, c.Nodes[(victim+1)%4], c, "fault")
	if got := readBalance(t, rejoined, c, "fault"); !bytes.Equal(got, want) {
		t.Errorf("balance on rejoined node = %v, want %v", got, want)
	}
}

// TestClusterPruneThenSnapshotSync runs with pruning on (durable stores):
// peers retire history below the checkpoint, so genesis replay is
// impossible and a wiped node can only rejoin via snapshot. Disk stays
// bounded: retained payloads never exceed Retention + one interval.
func TestClusterPruneThenSnapshotSync(t *testing.T) {
	const (
		interval  = 3
		retention = 3
	)
	c := newTestCluster(t, ClusterOptions{
		Nodes:    4,
		StoreDir: t.TempDir(),
		Node: Config{
			CheckpointInterval: interval,
			Retention:          retention,
			SnapshotChunkBytes: 256,
			SyncInterval:       15 * time.Millisecond,
		},
	})
	txs := driveBlocks(t, c, 3*interval, "prune") // height 9: checkpoints 3, 6, 9
	tip := c.Nodes[0].Height()

	// Pruning floor on live nodes: min(checkpoint, height − retention) = 6.
	survivor := c.Nodes[victimOf(c)]
	if _, err := survivor.BlockAt(0); err == nil {
		t.Error("genesis payload still present with pruning on")
	}
	if _, err := survivor.BlockAt(tip - 1); err != nil {
		t.Errorf("tip payload pruned: %v", err)
	}
	for _, n := range c.Nodes {
		if got := countBlockPayloads(t, n); got > retention+interval {
			t.Errorf("node %d retains %d payloads, want ≤ %d", n.ID(), got, retention+interval)
		}
	}
	// Old receipts survive pruning (rc/ is state, not payload history).
	if _, found, err := survivor.StoredReceipt(txs[0].Hash()); err != nil || !found {
		t.Errorf("receipt lost to pruning (found=%v err=%v)", found, err)
	}

	pathBefore := mSyncPathSnapshot.Value()
	blocksPathBefore := mSyncPathBlocks.Value()
	victim := victimOf(c)
	if err := c.RestartNode(victim, true); err != nil {
		t.Fatal(err)
	}
	rejoined := c.Nodes[victim]
	if err := rejoined.WaitHeight(tip, 15*time.Second); err != nil {
		t.Fatalf("wiped node never caught up over pruned peers: %v", err)
	}

	if got := mSyncPathSnapshot.Value() - pathBefore; got == 0 {
		t.Error("rejoin over pruned peers did not take the snapshot path")
	}
	_ = blocksPathBefore // tail replay may or may not run (tail can be empty)
	want := readBalance(t, c.Nodes[(victim+1)%4], c, "prune")
	if got := readBalance(t, rejoined, c, "prune"); !bytes.Equal(got, want) {
		t.Errorf("balance on rejoined node = %v, want %v", got, want)
	}
	if got := countBlockPayloads(t, rejoined); got > retention+interval {
		t.Errorf("rejoined node holds %d payloads, want ≤ %d", got, retention+interval)
	}

	// Round trip: the pruned-and-rejoined cluster still commits.
	driveBlocks(t, c, 1, "prune")
	for _, n := range c.Nodes {
		if n.Height() != tip+1 {
			t.Errorf("node %d at height %d after new block, want %d", n.ID(), n.Height(), tip+1)
		}
	}
}
