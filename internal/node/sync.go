package node

import (
	"time"

	"confide/internal/chain"
	"confide/internal/p2p"
)

// Block catch-up sync. Consensus retransmission recovers messages lost in
// flight, but a node that was crashed or partitioned for several blocks may
// find the replica's in-memory committed log already pruned. This layer
// closes such gaps at the chain level: every node gossips its height, a
// lagging node requests the blocks it is missing from a peer that has them,
// verifies each against its own tip (prev-hash link + recomputed tx root),
// and replays them through the same applyBlock path consensus uses. After
// replay the consensus replica is advanced past the synced sequences so it
// rejoins ordering at the live tip.

const (
	syncStatusTopic = "confide/sync/status"
	syncReqTopic    = "confide/sync/req"
	syncRespTopic   = "confide/sync/resp"
)

// startSync subscribes the sync handlers and launches the height-gossip
// loop.
func (n *Node) startSync() {
	n.endpoint.Subscribe(syncStatusTopic, n.onSyncStatus)
	n.endpoint.Subscribe(syncReqTopic, n.onSyncReq)
	n.endpoint.Subscribe(syncRespTopic, n.onSyncResp)
	go n.syncLoop()
}

func (n *Node) syncLoop() {
	ticker := time.NewTicker(n.cfg.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			// Checkpoint announce goes out before the height status:
			// delivery is FIFO per sender, so a far-behind peer opens its
			// snapshot session before it reacts to the height gap, and
			// onSyncStatus correctly defers to the snapshot path.
			n.announceCheckpoint()
			n.endpoint.Broadcast(syncStatusTopic,
				chain.Encode(chain.Uint(n.Height())))
		}
	}
}

// onSyncStatus reacts to a peer's height announcement: if the peer is
// ahead, request the missing blocks from it. Requests are rate-limited so a
// burst of announcements from many peers yields one in-flight request.
func (n *Node) onSyncStatus(m p2p.Message) {
	it, err := chain.Decode(m.Data)
	if err != nil || it.IsList {
		return
	}
	peerHeight, err := it.AsUint()
	if err != nil {
		return
	}
	// Compare against what the node has already secured locally, not the
	// executed tip: under pipelining (execute-behind-order) the tip trails
	// delivery by up to the window depth at all times, and treating that
	// lag as missing blocks turns every height announcement into a
	// redundant full-block re-request of blocks already sitting in the
	// executor queue.
	height := n.syncedHeight()
	if peerHeight <= height {
		return
	}
	if n.snapshotFetchActive() {
		// A snapshot fast-sync is in flight and will land past these
		// blocks; requesting them now would just be thrown away.
		return
	}
	n.syncMu.Lock()
	now := time.Now()
	if now.Sub(n.syncLastReq) < n.cfg.SyncInterval/2 {
		n.syncMu.Unlock()
		return
	}
	n.syncLastReq = now
	n.syncMu.Unlock()
	n.endpoint.Send(m.From, syncReqTopic, chain.Encode(chain.Uint(height)))
}

// onSyncReq serves up to SyncBatch stored blocks starting at the requested
// height as one response.
func (n *Node) onSyncReq(m p2p.Message) {
	it, err := chain.Decode(m.Data)
	if err != nil || it.IsList {
		return
	}
	from, err := it.AsUint()
	if err != nil {
		return
	}
	var blocks []chain.Item
	for h := from; h < from+uint64(n.cfg.SyncBatch); h++ {
		raw, found, err := n.store.Get(blockKey(h))
		if err != nil || !found {
			break
		}
		blocks = append(blocks, chain.Bytes(raw))
	}
	if len(blocks) == 0 {
		return
	}
	n.endpoint.Send(m.From, syncRespTopic, chain.Encode(chain.List(blocks...)))
}

// onSyncResp replays fetched blocks in order through applyBlock (which
// enforces the prev-hash link and tx-root integrity), then advances the
// consensus replica past everything applied.
func (n *Node) onSyncResp(m p2p.Message) {
	it, err := chain.Decode(m.Data)
	if err != nil || !it.IsList {
		return
	}
	applied := false
	for _, raw := range it.List {
		if !n.applyBlock(raw.Str) {
			break // gap or stale: later blocks in the batch cannot link either
		}
		applied = true
	}
	if !applied {
		return
	}
	mSyncPathBlocks.Inc()
	// Replica seq s ↔ block height baseHeight + s, so the synced tip means
	// every seq below height-baseHeight is settled.
	if height := n.Height(); height > n.baseHeight {
		n.replica.AdvanceTo(height - n.baseHeight)
	}
}
