package node

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"time"

	"confide/internal/ccl"
	"confide/internal/chain"
	"confide/internal/consensus"
	"confide/internal/core"
	"confide/internal/keyepoch"
	"confide/internal/metrics"
	"confide/internal/p2p"
	"confide/internal/storage/vfs"
	"confide/internal/storage/vfs/faultfs"
)

// Chaos harness: a seeded end-to-end fault drill. It boots a cluster, keeps
// a client-style workload flowing (with retries, as a real client would),
// and injects the fault schedule — message loss on every link, leader
// crashes with restarts, and a partition that splits and heals — then
// requires full convergence: every transaction committed with an OK receipt
// on every node, identical chains, identical state roots. Nothing in the
// harness touches consensus internals; recovery comes entirely from the
// automatic timers, retransmission and catch-up sync.

// chaosLedgerSrc is the harness's workload contract: per-account balances
// with a credit operation (so the final state is a deterministic function
// of the committed transaction set, not of ordering).
const chaosLedgerSrc = `
fn u16at(p) -> int { return load8(p) + (load8(p + 1) << 8); }
fn u32at(p) -> int {
	return load8(p) + (load8(p+1) << 8) + (load8(p+2) << 16) + (load8(p+3) << 24);
}
fn arg(buf, idx) -> int {
	let mlen = u16at(buf);
	let p = buf + 2 + mlen + 2;
	let i = 0;
	while i < idx {
		p = p + 4 + u32at(p);
		i = i + 1;
	}
	return p;
}
fn balance(acct) -> int {
	let tmp = alloc(8);
	let n = storage_get(acct, 8, tmp, 8);
	if n < 1 { return 0; }
	return load8(tmp);
}
fn invoke() {
	let n = input_size();
	let buf = alloc(n + 8);
	input_read(buf, 0, n);
	let c = load8(buf + 2);
	if c == 99 { // 'c'redit
		let acct = arg(buf, 0) + 4;
		let amt = load8(arg(buf, 1) + 4);
		let tmp = alloc(8);
		store8(tmp, balance(acct) + amt);
		storage_set(acct, 8, tmp, 1);
	}
}
`

var chaosLedgerAddr = chain.AddressFromBytes([]byte("chaosledger"))

// ChaosOptions shapes one chaos run. The zero value is a quick deterministic
// drill suitable for `go test`.
type ChaosOptions struct {
	// Nodes is the cluster size (default 4; must be ≥ 4 to tolerate one
	// fault).
	Nodes int
	// Txs is the number of client transactions (default 24).
	Txs int
	// Seed drives every random choice: the fault schedule, fault targets
	// and the network's drop lottery. Same seed → same schedule.
	Seed int64
	// DropRate is the global message loss probability (default 0.05 —
	// pass a negative value for a lossless run).
	DropRate float64
	// DuplicateRate / ReorderRate add delivery anomalies (default 0.02 /
	// 0.02; negative disables).
	DuplicateRate float64
	ReorderRate   float64
	// LeaderCrashes is how many crash-and-restart faults target the
	// current leader (default 1).
	LeaderCrashes int
	// Partitions is how many partition/heal cycles isolate one random node
	// (default 1).
	Partitions int
	// WipeRejoins is how many wipe-and-rejoin faults erase a random
	// follower's entire store mid-run (default 0 = off). The wiped node must
	// re-acquire everything from its peers; enabling this turns on
	// checkpoints for the run (CheckpointInterval 3, Retention 6), so the
	// rejoin is required to go through snapshot fast-sync — certified from
	// the metrics registry at the end.
	WipeRejoins int
	// Rotations is how many key-epoch rotations are ordered through
	// governance mid-run (default 0 = off). Each rotation must activate on
	// every replica under the ongoing fault schedule, uncommitted workload
	// re-seals to the new epoch, and the run is certified from the registry:
	// the rotation counter must have moved on every node's ring.
	Rotations int
	// GatewayKills is how many gateway-crash faults are injected (default
	// 0 = off). Requires Gateways: the workload then flows through the HTTP
	// edge instead of in-process SubmitTx, a random node's gateway is killed
	// abruptly mid-traffic and replaced when the fault window lifts, and the
	// run is certified from the gateway request/accept counters.
	GatewayKills int
	// Crashes is how many crash-and-recover disk faults are injected
	// (default 0 = off). Each one arms a random named crash point (WAL
	// append, memtable flush, sstable publish, prune) on a random node and
	// lets live traffic drive the node through it — the fault filesystem
	// freezes at the exact durable image a power cut would leave and the
	// node dies without any clean shutdown. If traffic never reaches the
	// armed point by the end of the fault window the crash is forced (the
	// "power cable" fault). When the window lifts the node is revived from
	// the frozen image: WAL replay normally, quarantine plus snapshot
	// fast-sync when the image is corrupted beyond the WAL's tolerance.
	// Enabling this backs every store with faultfs (synced WALs, small
	// memtables) and turns on checkpoints, and the run is certified from
	// the registry: every crash recovered, no committed transaction lost,
	// identical chain prefixes, and every node's sealed state re-verifies
	// (AuditSealedState) after convergence.
	Crashes int
	// DiskFaults layers transient disk faults onto the crash victim's
	// filesystem during each crash window: ENOSPC after partial writes,
	// transient read EIO, read bit-flips, lying fsyncs. Requires Crashes.
	DiskFaults bool
	// Gateways routes the workload through gateway edges. The node package
	// cannot import the gateway package (the edge builds on the node), so
	// the harness takes the driver as an interface; gateway.NewChaosDriver
	// provides the implementation.
	Gateways GatewayDriver
	// PipelineDepth runs the drill with pipelined proposals (default 0 =
	// depth 1, the serialized fallback): each believed leader fills its
	// in-flight window to this depth every duty-cycle step, and delivered
	// blocks execute behind ordering. Faults — leader kills included — then
	// land mid-pipeline, exercising the predicted-parent abort/re-pool
	// path; the run still certifies that no committed transaction is lost
	// and every chain converges byte-identically.
	PipelineDepth int
	// ExecWorkers widens each node's speculative OCC pass (default 0 =
	// single lane).
	ExecWorkers int
	// FaultFor is how long each fault stays active (default 500ms); faults
	// are scheduled sequentially so at most one is active at a time,
	// keeping the fault count within f.
	FaultFor time.Duration
	// StepEvery paces the driver duty cycle (default 25ms).
	StepEvery time.Duration
	// Timeout aborts a run that fails to converge (default 120s).
	Timeout time.Duration
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.Txs == 0 {
		o.Txs = 24
	}
	if o.DropRate == 0 {
		o.DropRate = 0.05
	}
	if o.DuplicateRate == 0 {
		o.DuplicateRate = 0.02
	}
	if o.ReorderRate == 0 {
		o.ReorderRate = 0.02
	}
	if o.LeaderCrashes == 0 {
		o.LeaderCrashes = 1
	}
	if o.Partitions == 0 {
		o.Partitions = 1
	}
	if o.FaultFor == 0 {
		o.FaultFor = 500 * time.Millisecond
	}
	if o.StepEvery == 0 {
		o.StepEvery = 25 * time.Millisecond
	}
	if o.Timeout == 0 {
		o.Timeout = 120 * time.Second
	}
	return o
}

// ChaosReport summarizes a converged run.
type ChaosReport struct {
	Nodes       int
	Txs         int
	Height      uint64
	ViewChanges uint64
	Elapsed     time.Duration
	// StateRoot commits to the full header chain (which in turn commits to
	// every transaction set); identical on every node at convergence.
	StateRoot chain.Hash
	// Net aggregates the fault injector's counters for the whole run.
	Net p2p.Stats
	// Metrics holds the global-registry counter deltas accrued during the
	// run (family name → increase). These are what the run is certified
	// against: under a leader crash the consensus view-change counter must
	// move, under loss the retransmission counter must, and the pipeline
	// must have traced at least Txs commits.
	Metrics map[string]uint64
	// Disk aggregates the fault filesystems' injected-fault and crash
	// counters across all nodes (Crashes > 0 runs only).
	Disk faultfs.Stats
	// Events is the injected fault timeline.
	Events []string
}

type chaosFault struct {
	at          time.Duration
	until       time.Duration
	isCrash     bool   // crash (else partition, unless isWipe/isGwKill/isDiskCrash)
	isWipe      bool   // wipe-and-rejoin (waits for height ≥ 2×CheckpointInterval)
	isGwKill    bool   // kill one node's gateway edge mid-traffic
	isDiskCrash bool   // arm a crash point, kill without shutdown, revive from disk image
	point       string // armed crash point (disk crashes)
	target      int    // partition / gateway-kill / disk-crash victim
}

// chaosCrashPoints are the points a disk-crash fault arms: the ones the
// drill's own traffic reliably drives (every commit appends to the WAL; the
// 4 KiB memtable makes flushes and publishes frequent; checkpoints every 3
// blocks make prune passes frequent). Checkpoint-install and reseal-sweep
// fire only during fast-sync and rotation drains, so targeted tests cover
// them instead of the randomized drill.
var chaosCrashPoints = []string{
	vfs.CrashWALAppend,
	vfs.CrashMemtableFlush,
	vfs.CrashSSTablePublish,
	vfs.CrashPrune,
}

// GatewayDriver is the seam through which the chaos harness drives HTTP
// gateway edges without the node package importing them. Start boots one
// gateway per cluster node; Submit routes one transaction through node i's
// gateway over real TCP; Kill tears gateway i down abruptly (no drain);
// Restart serves a replacement for node i; Stop closes everything.
type GatewayDriver interface {
	Start(c *Cluster) error
	Submit(i int, tx *chain.Tx) error
	Kill(i int)
	Restart(i int) error
	Stop()
}

// RunChaos executes one seeded chaos drill and verifies convergence.
func RunChaos(opts ChaosOptions) (*ChaosReport, error) {
	opts = opts.withDefaults()
	if opts.Nodes < 4 {
		return nil, fmt.Errorf("chaos: need ≥ 4 nodes to tolerate a fault, got %d", opts.Nodes)
	}
	if opts.GatewayKills > 0 && opts.Gateways == nil {
		return nil, fmt.Errorf("chaos: GatewayKills needs a Gateways driver")
	}
	if opts.DiskFaults && opts.Crashes == 0 {
		return nil, fmt.Errorf("chaos: DiskFaults layers onto crash windows; set Crashes > 0")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	clamp := func(r float64) float64 {
		if r < 0 {
			return 0
		}
		return r
	}
	cluster, err := NewCluster(ClusterOptions{
		Nodes:      opts.Nodes,
		DiskFaults: opts.Crashes > 0,
		FaultSeed:  opts.Seed,
		Network: p2p.Config{
			DropRate:      clamp(opts.DropRate),
			DuplicateRate: clamp(opts.DuplicateRate),
			ReorderRate:   clamp(opts.ReorderRate),
			Seed:          opts.Seed,
		},
		Node: Config{
			EngineOpts: core.AllOptimizations(),
			Consensus: consensus.Options{
				ViewTimeout:        250 * time.Millisecond,
				RetransmitInterval: 20 * time.Millisecond,
				RetransmitMax:      200 * time.Millisecond,
				HeartbeatInterval:  30 * time.Millisecond,
			},
			SyncInterval:       40 * time.Millisecond,
			CheckpointInterval: chaosCheckpointInterval(opts),
			Retention:          chaosRetention(opts),
			PipelineDepth:      opts.PipelineDepth,
			ExecWorkers:        opts.ExecWorkers,
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	if opts.Gateways != nil {
		if err := opts.Gateways.Start(cluster); err != nil {
			return nil, fmt.Errorf("chaos: starting gateways: %w", err)
		}
		defer opts.Gateways.Stop()
	}

	mod, err := ccl.CompileCVM(chaosLedgerSrc)
	if err != nil {
		return nil, fmt.Errorf("chaos: compiling workload contract: %w", err)
	}
	owner := chain.AddressFromBytes([]byte("chaosowner"))
	if err := cluster.DeployEverywhere(chaosLedgerAddr, owner, core.VMCVM, mod.Encode(), true, 1); err != nil {
		return nil, err
	}
	client, err := core.NewClient(cluster.EnvelopePublicKey())
	if err != nil {
		return nil, err
	}

	// Fault schedule: sequential windows with slack between them, so at
	// most one fault is ever active (the cluster tolerates f = 1).
	// Wipe-rejoins go last: they need enough chain behind them (two full
	// checkpoint intervals) to force the snapshot path.
	var faults []chaosFault
	cursor := 300 * time.Millisecond
	for i := 0; i < opts.LeaderCrashes+opts.Partitions+opts.GatewayKills+opts.Crashes+opts.WipeRejoins; i++ {
		f := chaosFault{at: cursor, until: cursor + opts.FaultFor}
		switch {
		case i < opts.LeaderCrashes:
			f.isCrash = true
		case i < opts.LeaderCrashes+opts.Partitions:
			f.target = rng.Intn(opts.Nodes)
		case i < opts.LeaderCrashes+opts.Partitions+opts.GatewayKills:
			f.isGwKill = true
			f.target = rng.Intn(opts.Nodes)
		case i < opts.LeaderCrashes+opts.Partitions+opts.GatewayKills+opts.Crashes:
			f.isDiskCrash = true
			f.point = chaosCrashPoints[rng.Intn(len(chaosCrashPoints))]
			f.target = rng.Intn(opts.Nodes)
		default:
			f.isWipe = true
		}
		faults = append(faults, f)
		cursor = f.until + opts.FaultFor
	}

	// Workload: credits spread over a few accounts, amounts seeded, with
	// submission times spread across the whole fault schedule so every
	// fault window hits in-flight work. Account and amount are kept so an
	// uncommitted transaction can be re-sealed after a key rotation.
	txs := make([]*chain.Tx, opts.Txs)
	submitAt := make([]time.Duration, opts.Txs)
	accounts := make([][]byte, opts.Txs)
	amounts := make([]byte, opts.Txs)
	for i := range txs {
		accounts[i] = []byte(fmt.Sprintf("acct-%03d", i%5))
		amounts[i] = byte(1 + rng.Intn(5))
		tx, _, err := client.NewConfidentialTx(chaosLedgerAddr, "credit", accounts[i], []byte{amounts[i]})
		if err != nil {
			return nil, err
		}
		txs[i] = tx
		submitAt[i] = cursor * time.Duration(i) / time.Duration(opts.Txs)
	}

	report := &ChaosReport{Nodes: opts.Nodes, Txs: opts.Txs}
	before := metrics.Default().Snapshot()
	start := time.Now()
	logEvent := func(format string, args ...any) {
		report.Events = append(report.Events,
			fmt.Sprintf("t+%s ", time.Since(start).Round(time.Millisecond))+fmt.Sprintf(format, args...))
	}

	crashed := -1
	partitioned := false
	gwKilled := -1
	diskCrashed := -1           // disk-crash victim for the active window
	wiped := make(map[int]bool) // nodes that lost their in-memory receipt map
	var lastSubmit time.Time
	deadline := start.Add(opts.Timeout)

	// submit routes one workload transaction: in-process SubmitTx normally,
	// over real TCP through the node's gateway when a driver is attached. A
	// killed gateway is sidestepped like a crashed node — the client's
	// failover, not a harness cheat.
	submit := func(target int, tx *chain.Tx) {
		if target == crashed || target == diskCrashed {
			target = (target + 1) % opts.Nodes
		}
		if opts.Gateways != nil {
			if target == gwKilled {
				target = (target + 1) % opts.Nodes
			}
			opts.Gateways.Submit(target, tx)
			return
		}
		cluster.Nodes[target].SubmitTx(tx)
	}

	// Key-rotation schedule: opts.Rotations governance rotations are ordered
	// mid-run, the first as soon as the chain moves, each next one after the
	// previous has activated on every replica.
	rotationsLeft := opts.Rotations
	var govTx *chain.Tx
	var govRot keyepoch.Rotation
	targetEpoch := uint64(1)

	allCommitted := func() bool {
		for _, n := range cluster.Nodes {
			for _, tx := range txs {
				// The in-memory receipt map holds what this node executed
				// itself; a node that rejoined through snapshot fast-sync —
				// wiped, crash-recovered, or simply partitioned past its
				// peers' pruning horizon — carries earlier receipts only in
				// its snapshot-installed store (rc/). Presence there is the
				// certification: their contents were already status-checked
				// on the replicas that executed them.
				if rpt, ok := n.Receipt(tx.Hash()); ok {
					if rpt.Status != chain.ReceiptOK {
						return false
					}
					continue
				}
				if _, found, err := n.StoredReceipt(tx.Hash()); err != nil || !found {
					return false
				}
			}
		}
		return true
	}
	converged := func() bool {
		// Every ordered rotation must have fully played out: none left to
		// submit, none in flight, and every replica on the final epoch.
		if rotationsLeft > 0 || govTx != nil {
			return false
		}
		for _, n := range cluster.Nodes {
			if n.CurrentEpoch() != targetEpoch {
				return false
			}
		}
		if !allCommitted() {
			return false
		}
		h := cluster.Nodes[0].Height()
		for _, n := range cluster.Nodes[1:] {
			if n.Height() != h {
				return false
			}
		}
		return true
	}

	// The drill runs until the whole fault schedule has played out AND the
	// cluster has converged afterwards.
	for len(faults) > 0 || crashed >= 0 || partitioned || diskCrashed >= 0 || !converged() {
		if time.Now().After(deadline) {
			var state string
			for i, n := range cluster.Nodes {
				missing := 0
				for _, tx := range txs {
					if rpt, ok := n.Receipt(tx.Hash()); !ok || rpt.Status != chain.ReceiptOK {
						missing++
					}
				}
				state += fmt.Sprintf(" node%d{h=%d view=%d delivered=%d pool=%d+%d missing=%d}",
					i, n.Height(), n.Replica().View(), n.Replica().Delivered(),
					n.UnverifiedPoolLen(), n.VerifiedPoolLen(), missing)
			}
			return nil, fmt.Errorf("chaos: no convergence after %s (events: %v; state:%s)",
				opts.Timeout, report.Events, state)
		}
		now := time.Since(start)

		// Inject and lift scheduled faults.
		if len(faults) > 0 && crashed < 0 && !partitioned && gwKilled < 0 && diskCrashed < 0 && now >= faults[0].at {
			f := faults[0]
			if f.isGwKill {
				opts.Gateways.Kill(f.target)
				gwKilled = f.target
				logEvent("kill gateway %d mid-traffic for %s", f.target, opts.FaultFor)
			} else if f.isDiskCrash {
				// Arm the crash point and let live traffic drive the victim
				// through it; the node fail-stops itself the instant it fires.
				// The kill is completed (and forced, if traffic never got
				// there) when the window lifts.
				if _, aerr := cluster.ArmCrash(f.target, f.point); aerr != nil {
					return nil, aerr
				}
				if opts.DiskFaults {
					cluster.FaultFS(f.target).SetProbs(faultfs.Probs{
						WriteErr: 0.01, ReadErr: 0.01, ReadFlip: 0.01, SyncLie: 0.05,
					})
				}
				diskCrashed = f.target
				logEvent("arm crash point %q on node %d (transient disk faults: %v)", f.point, f.target, opts.DiskFaults)
			} else if f.isWipe {
				// Wipe-and-rejoin fires only once two full checkpoint
				// intervals of chain exist, so genesis replay would cross a
				// checkpoint and the snapshot path is mandatory; until then
				// the fault stays pending.
				interval := chaosCheckpointInterval(opts)
				if cluster.Leader().Height() >= 2*interval {
					victim := rng.Intn(opts.Nodes)
					if victim == int(cluster.Leader().ID()) {
						victim = (victim + 1) % opts.Nodes
					}
					if err := cluster.RestartNode(victim, true); err != nil {
						return nil, fmt.Errorf("chaos: wipe-rejoin node %d: %w", victim, err)
					}
					wiped[victim] = true
					logEvent("wipe node %d (store erased; must rejoin via snapshot)", victim)
					faults = faults[1:]
				}
			} else if f.isCrash {
				leader := cluster.Leader()
				crashed = int(leader.ID())
				leader.Endpoint().Crash()
				logEvent("crash leader node %d for %s", crashed, opts.FaultFor)
			} else {
				var majority []p2p.NodeID
				for i := 0; i < opts.Nodes; i++ {
					if i != f.target {
						majority = append(majority, p2p.NodeID(i))
					}
				}
				cluster.Net().Partition([][]p2p.NodeID{majority})
				partitioned = true
				logEvent("partition node %d away for %s", f.target, opts.FaultFor)
			}
		}
		if len(faults) > 0 && now >= faults[0].until && (crashed >= 0 || partitioned || gwKilled >= 0 || diskCrashed >= 0) {
			if crashed >= 0 {
				cluster.Nodes[crashed].Endpoint().Recover()
				logEvent("restart node %d", crashed)
				crashed = -1
			}
			if diskCrashed >= 0 {
				// Complete the kill (idempotent if the armed point already
				// froze the disk and the node fail-stopped) and bring the node
				// back up from the crash image.
				if cerr := cluster.CrashNode(diskCrashed); cerr != nil {
					return nil, cerr
				}
				if opts.Gateways != nil {
					opts.Gateways.Kill(diskCrashed) // edge dies with its host
				}
				quarantined, rerr := cluster.ReviveNode(diskCrashed)
				if rerr != nil {
					return nil, fmt.Errorf("chaos: reviving node %d: %w", diskCrashed, rerr)
				}
				if opts.Gateways != nil {
					if rerr := opts.Gateways.Restart(diskCrashed); rerr != nil {
						return nil, fmt.Errorf("chaos: rebinding gateway %d after revive: %w", diskCrashed, rerr)
					}
				}
				// Pre-crash confidential receipts survive only sealed in the
				// store; the in-memory index is checked via StoredReceipt,
				// like a wiped node's.
				wiped[diskCrashed] = true
				logEvent("revive node %d from crash image (quarantined=%v)", diskCrashed, quarantined)
				diskCrashed = -1
			}
			if partitioned {
				cluster.Net().Heal()
				logEvent("heal partition")
				partitioned = false
			}
			if gwKilled >= 0 {
				if err := opts.Gateways.Restart(gwKilled); err != nil {
					return nil, fmt.Errorf("chaos: restarting gateway %d: %w", gwKilled, err)
				}
				logEvent("restart gateway %d", gwKilled)
				gwKilled = -1
			}
			faults = faults[1:]
		}

		// Rotation driver: order a governance rotation, watch its public
		// receipt, and once the new epoch is active everywhere re-seal the
		// uncommitted workload so nothing strands beyond the window.
		if rotationsLeft > 0 {
			if govTx == nil {
				leader := cluster.Leader()
				if leader.Height() >= 1 && int(leader.ID()) != crashed {
					govRot = keyepoch.Rotation{
						NewEpoch:         targetEpoch + 1,
						ActivationHeight: leader.Height() + 3,
					}
					govTx = &chain.Tx{Type: chain.TxTypeGovernance, Payload: govRot.Encode()}
					if leader.SubmitTx(govTx) != nil {
						govTx = nil
					} else {
						logEvent("rotation to epoch %d scheduled for height %d", govRot.NewEpoch, govRot.ActivationHeight)
					}
				}
			} else {
				// Deterministic rejection (e.g. the chain outran the
				// activation height before ordering): rebuild and resubmit,
				// like any governance client would.
				for _, n := range cluster.Nodes {
					if rpt, ok := n.Receipt(govTx.Hash()); ok && rpt.Status == chain.ReceiptFailed {
						logEvent("rotation schedule rejected (%s); resubmitting", rpt.Output)
						govTx = nil
						break
					}
				}
			}
			if govTx != nil {
				activated := true
				for _, n := range cluster.Nodes {
					if n.CurrentEpoch() < govRot.NewEpoch {
						activated = false
						break
					}
				}
				if activated {
					targetEpoch = govRot.NewEpoch
					rotationsLeft--
					govTx = nil
					logEvent("epoch %d active on every node", targetEpoch)
					epoch, pk := cluster.EnvelopeKeyInfo()
					client.SetEnvelopeKey(epoch, pk)
					for i := range txs {
						committed := false
						for _, n := range cluster.Nodes {
							if _, ok := n.Receipt(txs[i].Hash()); ok {
								committed = true
								break
							}
						}
						if !committed {
							if tx, _, rerr := client.NewConfidentialTx(chaosLedgerAddr, "credit", accounts[i], []byte{amounts[i]}); rerr == nil {
								txs[i] = tx
							}
						}
					}
				} else if cluster.Leader().Height() < govRot.ActivationHeight {
					// Keep blocks flowing toward the activation height even
					// when the workload has drained.
					pending := 0
					for _, n := range cluster.Nodes {
						pending += n.UnverifiedPoolLen() + n.VerifiedPoolLen()
					}
					if pending == 0 {
						if tx, _, rerr := client.NewConfidentialTx(chaosLedgerAddr, "credit", []byte("acctfill"), []byte{1}); rerr == nil {
							submit(rng.Intn(opts.Nodes), tx)
						}
					}
				}
			}
		}

		// Client behaviour: submit each transaction when its scheduled time
		// arrives, and re-submit any that have not committed anywhere yet.
		// Execution-time dedup makes retries safe even when the first copy
		// is still in flight.
		if time.Since(lastSubmit) >= 10*opts.StepEvery || lastSubmit.IsZero() {
			lastSubmit = time.Now()
			for i, tx := range txs {
				if now < submitAt[i] {
					continue
				}
				committed := false
				for _, n := range cluster.Nodes {
					if _, ok := n.Receipt(tx.Hash()); ok {
						committed = true
						break
					}
				}
				if !committed {
					submit(rng.Intn(opts.Nodes), tx)
				}
			}
		}

		// Duty cycle: every live node pre-verifies; every believed leader
		// proposes its backlog (several may believe during a view change —
		// consensus arbitrates), filling its in-flight window when the
		// drill runs pipelined.
		for i, n := range cluster.Nodes {
			if i == crashed {
				continue
			}
			n.PreVerifyPending()
			if opts.PipelineDepth > 1 {
				for n.IsLeader() && n.VerifiedPoolLen() > 0 && n.ConsensusBacklog() < uint64(opts.PipelineDepth) {
					if _, err := n.ProposeBlock(); err != nil {
						break
					}
				}
			} else if n.IsLeader() && n.VerifiedPoolLen() > 0 {
				n.ProposeBlock()
			}
		}
		time.Sleep(opts.StepEvery)
	}

	// Convergence holds; certify identical chains via a state root over the
	// header sequence (headers commit to the tx sets, and execution is
	// deterministic, so equal header chains imply equal state). The root
	// starts at the highest retained floor across nodes: with pruning or a
	// wipe-rejoin in play, history below the last stable checkpoint exists
	// on no (or not every) node — by design — and the headers above it chain
	// from the checkpoint's tip hash, which the snapshot manifest bound.
	report.Height = cluster.Nodes[0].Height()
	floor := uint64(0)
	for _, n := range cluster.Nodes {
		if pt := n.PrunedTo(); pt > floor {
			floor = pt
		}
	}
	roots := make([]chain.Hash, opts.Nodes)
	for i, n := range cluster.Nodes {
		hasher := sha256.New()
		for h := floor; h < report.Height; h++ {
			hdr, err := n.HeaderAt(h)
			if err != nil {
				return nil, fmt.Errorf("chaos: node %d missing block %d after convergence: %w", i, h, err)
			}
			hasher.Write(hdr)
		}
		copy(roots[i][:], hasher.Sum(nil))
	}
	for i := 1; i < opts.Nodes; i++ {
		if roots[i] != roots[0] {
			return nil, fmt.Errorf("chaos: state root divergence: node %d %x vs node 0 %x", i, roots[i][:8], roots[0][:8])
		}
	}
	report.StateRoot = roots[0]
	if opts.Crashes > 0 {
		// Post-crash certification: every node's sealed state must re-verify
		// end-to-end (AEAD open of every confidential code and state record)
		// after the crash-restart cycles, and the audit must actually have
		// had sealed workload to open.
		for i, n := range cluster.Nodes {
			st, aerr := n.ConfidentialEngine().AuditSealedState()
			if aerr != nil {
				return nil, fmt.Errorf("chaos: node %d sealed-state audit failed after crash drill: %w", i, aerr)
			}
			if st.Opened == 0 {
				return nil, fmt.Errorf("chaos: node %d sealed-state audit opened no records — nothing was certified", i)
			}
		}
		for i := range cluster.Nodes {
			s := cluster.FaultFS(i).Stats()
			report.Disk.WriteErrs += s.WriteErrs
			report.Disk.ReadErrs += s.ReadErrs
			report.Disk.BitFlips += s.BitFlips
			report.Disk.SyncErrs += s.SyncErrs
			report.Disk.SyncLies += s.SyncLies
			report.Disk.TornTails += s.TornTails
			report.Disk.Crashes += s.Crashes
		}
	}
	for _, n := range cluster.Nodes {
		if vc := n.Replica().ViewChanges(); vc > report.ViewChanges {
			report.ViewChanges = vc
		}
	}
	report.Net = cluster.Net().Stats()
	report.Elapsed = time.Since(start)

	// Certify the run against the metrics registry: the faults we injected
	// must be visible in the instrumentation, or the observability layer (or
	// the fault injection) is broken. Deltas isolate this run from whatever
	// other tests in the process have accrued; on a shared global registry
	// concurrent runs can only inflate them, never satisfy an assertion that
	// this run's faults failed to produce.
	after := metrics.Default().Snapshot()
	delta := func(family string) uint64 {
		return after.CounterSum(family) - before.CounterSum(family)
	}
	report.Metrics = map[string]uint64{
		"confide_consensus_view_changes_total":             delta("confide_consensus_view_changes_total"),
		"confide_consensus_retransmissions_total":          delta("confide_consensus_retransmissions_total"),
		"confide_consensus_delivered_total":                delta("confide_consensus_delivered_total"),
		"confide_p2p_drops_total":                          delta("confide_p2p_drops_total"),
		"confide_node_blocks_committed_total":              delta("confide_node_blocks_committed_total"),
		"confide_tee_ecalls_total":                         delta("confide_tee_ecalls_total"),
		"confide_snapshot_installs_total":                  delta("confide_snapshot_installs_total"),
		"confide_node_snapshot_bad_chunks_total":           delta("confide_node_snapshot_bad_chunks_total"),
		"confide_node_snapshot_install_failures_total":     delta("confide_node_snapshot_install_failures_total"),
		"confide_keyepoch_rotations_total":                 delta("confide_keyepoch_rotations_total"),
		"confide_keyepoch_stale_envelope_rejections_total": delta("confide_keyepoch_stale_envelope_rejections_total"),
		"confide_gateway_requests_total":                   delta("confide_gateway_requests_total"),
		"confide_gateway_accepted_txs_total":               delta("confide_gateway_accepted_txs_total"),
		"confide_gateway_dedup_hits_total":                 delta("confide_gateway_dedup_hits_total"),
		"confide_gateway_shed_total":                       delta("confide_gateway_shed_total"),
		"confide_node_store_fatal_total":                   delta("confide_node_store_fatal_total"),
		"confide_node_store_quarantines_total":             delta("confide_node_store_quarantines_total"),
		"confide_node_crash_recoveries_total":              delta("confide_node_crash_recoveries_total"),
		"confide_storage_sticky_failures_total":            delta("confide_storage_sticky_failures_total"),
		"confide_storage_read_retries_total":               delta("confide_storage_read_retries_total"),
	}
	if metrics.Default().Enabled() {
		pipelineEnds := after.HistogramCount("confide_pipeline_total_seconds") -
			before.HistogramCount("confide_pipeline_total_seconds")
		if opts.LeaderCrashes > 0 && report.Metrics["confide_consensus_view_changes_total"] == 0 {
			return nil, fmt.Errorf("chaos: %d leader crash(es) injected but the view-change counter never moved", opts.LeaderCrashes)
		}
		if opts.DropRate > 0 && report.Metrics["confide_consensus_retransmissions_total"] == 0 {
			return nil, fmt.Errorf("chaos: %.0f%% loss injected but no retransmissions were recorded", opts.DropRate*100)
		}
		if opts.DropRate > 0 && report.Metrics["confide_p2p_drops_total"] == 0 {
			return nil, fmt.Errorf("chaos: %.0f%% loss injected but the p2p drop counters never moved", opts.DropRate*100)
		}
		if report.Metrics["confide_node_blocks_committed_total"] == 0 {
			return nil, fmt.Errorf("chaos: converged but the block-commit counter never moved")
		}
		if report.Metrics["confide_tee_ecalls_total"] == 0 {
			return nil, fmt.Errorf("chaos: confidential workload ran but no ecalls were counted")
		}
		if pipelineEnds < uint64(opts.Txs) {
			return nil, fmt.Errorf("chaos: %d txs committed but only %d pipeline spans completed", opts.Txs, pipelineEnds)
		}
		if opts.WipeRejoins > 0 {
			// Certify the rejoin path from the registry: every wipe must have
			// gone through a snapshot install, and nothing unverified may
			// have been installed.
			if got := report.Metrics["confide_snapshot_installs_total"]; got < uint64(opts.WipeRejoins) {
				return nil, fmt.Errorf("chaos: %d wipe(s) injected but only %d snapshot installs recorded — a node rejoined by genesis replay",
					opts.WipeRejoins, got)
			}
			if got := report.Metrics["confide_node_snapshot_install_failures_total"]; got != 0 {
				return nil, fmt.Errorf("chaos: %d snapshot install(s) failed verification", got)
			}
		}
		if opts.GatewayKills > 0 {
			// The whole workload flowed through the HTTP edge: every unique
			// transaction must have been accepted by some gateway at least
			// once (commits cannot bypass the edge), and the request counters
			// must show real traffic despite the kills.
			if report.Metrics["confide_gateway_requests_total"] == 0 {
				return nil, fmt.Errorf("chaos: gateway workload ran but the request counters never moved")
			}
			if got := report.Metrics["confide_gateway_accepted_txs_total"]; got < uint64(opts.Txs) {
				return nil, fmt.Errorf("chaos: %d txs committed but gateways only accepted %d — some bypassed the edge",
					opts.Txs, got)
			}
		}
		if opts.Crashes > 0 {
			// Every injected crash must have gone through a revive (WAL
			// recovery or quarantine + fast-sync) — a crash that "recovered"
			// without the recovery path is a harness bug, and a node that
			// never came back would have blocked convergence above.
			if got := report.Metrics["confide_node_crash_recoveries_total"]; got < uint64(opts.Crashes) {
				return nil, fmt.Errorf("chaos: %d crash(es) injected but only %d crash recoveries recorded", opts.Crashes, got)
			}
		}
		if opts.Rotations > 0 {
			// Every node's ring must have advanced for every ordered
			// rotation (a wiped-and-rejoined node re-advances on adoption,
			// which can only add to the delta).
			want := uint64(opts.Rotations * opts.Nodes)
			if got := report.Metrics["confide_keyepoch_rotations_total"]; got < want {
				return nil, fmt.Errorf("chaos: %d rotation(s) ordered across %d nodes but only %d ring advances recorded",
					opts.Rotations, opts.Nodes, got)
			}
		}
	}
	return report, nil
}

// chaosCheckpointInterval is the checkpoint cadence a wipe-rejoin or crash
// drill runs with (checkpoints stay off otherwise, matching the default
// deployment). Crash drills need them so a quarantined store can rebuild by
// snapshot fast-sync — and so the prune crash point has traffic.
func chaosCheckpointInterval(opts ChaosOptions) uint64 {
	if opts.WipeRejoins == 0 && opts.Crashes == 0 {
		return 0
	}
	return 3
}

// chaosRetention keeps two intervals of payload history in a wipe-rejoin or
// crash drill, so pruning is exercised without starving the tail replay.
func chaosRetention(opts ChaosOptions) uint64 {
	if opts.WipeRejoins == 0 && opts.Crashes == 0 {
		return 0
	}
	return 6
}
