package node

import (
	"testing"
	"time"

	"confide/internal/core"
)

// TestClusterOnLSMStores runs the full confidential flow over durable
// LSM-backed nodes (WAL + memtable + SSTables) instead of the in-memory
// store — the "users can choose their own KV store" modularity the paper
// calls out.
func TestClusterOnLSMStores(t *testing.T) {
	c := newTestCluster(t, ClusterOptions{
		Nodes:    4,
		StoreDir: t.TempDir(),
	})
	client := newClusterClient(t, c)

	tx, ktx, err := client.NewConfidentialTx(ledgerAddr, "credit", acct("durable"), []byte{42})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := c.ProcessRound(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Receipt persisted in the LSM store, sealed.
	sealed, found, err := c.Nodes[2].StoredReceipt(tx.Hash())
	if err != nil || !found {
		t.Fatalf("receipt not in LSM store: %v", err)
	}
	rpt, err := core.OpenReceipt(sealed, ktx, tx.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if rpt.Status != 0 {
		t.Fatalf("status %d: %s", rpt.Status, rpt.Output)
	}

	// State readable through the engine after commit.
	read, _, _ := client.NewConfidentialTx(ledgerAddr, "read", acct("durable"))
	res, err := c.Nodes[0].ConfidentialEngine().Execute(read)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Receipt.Output) != 1 || res.Receipt.Output[0] != 42 {
		t.Errorf("balance = %v, want [42]", res.Receipt.Output)
	}

	// SPV proof also works over the LSM-backed block records.
	proof, err := c.Nodes[1].ProveTx(tx.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConsensusRead(proof, []*Node{c.Nodes[0], c.Nodes[2]}, 2); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorStreamsEngineFailures checks that enclave status lines reach
// the exit-less monitor ring when confidential execution hits errors.
func TestMonitorStreamsEngineFailures(t *testing.T) {
	c := newTestCluster(t, ClusterOptions{Nodes: 4})
	client := newClusterClient(t, c)
	engine := c.Nodes[0].ConfidentialEngine()

	// Tampered envelope → pre-processor rejection status.
	tx, _, _ := client.NewConfidentialTx(ledgerAddr, "credit", acct("m"), []byte{1})
	tx.Payload[len(tx.Payload)-1] ^= 0xff
	if _, err := engine.Execute(tx); err == nil {
		t.Fatal("tampered envelope should fail")
	}
	// Failing contract → execution status.
	bad, _, _ := client.NewConfidentialTx(ledgerAddr, "move", acct("empty"), acct("x"))
	if res, err := engine.Execute(bad); err != nil || res.Receipt.Status == 0 {
		t.Fatalf("move from empty account should fail the receipt: %v", err)
	}

	msgs := engine.Monitor().Poll(64)
	if len(msgs) < 2 {
		t.Fatalf("monitor captured %d messages, want >= 2: %q", len(msgs), msgs)
	}
	foundEnvelope, foundExec := false, false
	for _, m := range msgs {
		if len(m) >= 13 && m[:13] == "pre-processor" {
			foundEnvelope = true
		}
		if len(m) >= 9 && m[:9] == "execution" {
			foundExec = true
		}
	}
	if !foundEnvelope || !foundExec {
		t.Errorf("missing status categories in %q", msgs)
	}
}
