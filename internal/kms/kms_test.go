package kms

import (
	"bytes"
	"errors"
	"testing"

	"confide/internal/tee"
)

func testRoot(t *testing.T) *tee.RootOfTrust {
	t.Helper()
	root, err := tee.NewRootOfTrust()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func newNode(t *testing.T, root *tee.RootOfTrust, code string) *NodeKM {
	t.Helper()
	platform := tee.NewPlatform(root)
	km, err := NewNodeKM(platform, root.Verifier(), tee.Config{CodeIdentity: code})
	if err != nil {
		t.Fatal(err)
	}
	return km
}

func TestDecentralizedMAPProvisioning(t *testing.T) {
	root := testRoot(t)
	first := newNode(t, root, "confide-km-v1")
	if err := first.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	joiner := newNode(t, root, "confide-km-v1")
	req, err := joiner.Request()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := first.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Accept(resp); err != nil {
		t.Fatal(err)
	}
	a, b := first.Secrets(), joiner.Secrets()
	if !bytes.Equal(a.StatesKey, b.StatesKey) {
		t.Error("states keys differ after MAP")
	}
	if !bytes.Equal(a.Envelope.Public(), b.Envelope.Public()) {
		t.Error("envelope keys differ after MAP")
	}
}

func TestMAPChainsThroughJoinedNodes(t *testing.T) {
	root := testRoot(t)
	a := newNode(t, root, "confide-km-v1")
	a.Bootstrap()
	b := newNode(t, root, "confide-km-v1")
	req, _ := b.Request()
	resp, _ := a.Serve(req)
	if err := b.Accept(resp); err != nil {
		t.Fatal(err)
	}
	// A third node can now join via b.
	c := newNode(t, root, "confide-km-v1")
	req2, _ := c.Request()
	resp2, err := b.Serve(req2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Accept(resp2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Secrets().StatesKey, a.Secrets().StatesKey) {
		t.Error("secrets diverged along the chain")
	}
}

func TestMAPRejectsDifferentEnclaveCode(t *testing.T) {
	root := testRoot(t)
	honest := newNode(t, root, "confide-km-v1")
	honest.Bootstrap()
	evil := newNode(t, root, "evil-enclave-v1")
	req, _ := evil.Request()
	if _, err := honest.Serve(req); !errors.Is(err, ErrBadAttestation) {
		t.Errorf("err = %v, want ErrBadAttestation", err)
	}
}

func TestMAPRejectsForgedRoot(t *testing.T) {
	root := testRoot(t)
	otherRoot := testRoot(t)
	honest := newNode(t, root, "confide-km-v1")
	honest.Bootstrap()
	// Attacker runs the right code but on hardware with a different
	// (untrusted) manufacturer root.
	impostor := newNode(t, otherRoot, "confide-km-v1")
	req, _ := impostor.Request()
	if _, err := honest.Serve(req); !errors.Is(err, ErrBadAttestation) {
		t.Errorf("err = %v, want ErrBadAttestation", err)
	}
}

func TestMAPRejectsSessionKeySwap(t *testing.T) {
	root := testRoot(t)
	provider := newNode(t, root, "confide-km-v1")
	provider.Bootstrap()
	victim := newNode(t, root, "confide-km-v1")
	req, _ := victim.Request()
	// A MITM substitutes its own session key to intercept the secrets.
	mitm := newNode(t, root, "confide-km-v1")
	req.SessionPub = mitm.session.Public()
	if _, err := provider.Serve(req); !errors.Is(err, ErrBadAttestation) {
		t.Errorf("session-key swap: err = %v, want ErrBadAttestation", err)
	}
}

func TestAcceptRejectsWrongNonce(t *testing.T) {
	root := testRoot(t)
	provider := newNode(t, root, "confide-km-v1")
	provider.Bootstrap()
	joiner := newNode(t, root, "confide-km-v1")
	req, _ := joiner.Request()
	resp, _ := provider.Serve(req)
	resp.Nonce[0] ^= 1 // replayed/stale response
	if err := joiner.Accept(resp); !errors.Is(err, ErrBadAttestation) {
		t.Errorf("err = %v, want ErrBadAttestation", err)
	}
}

func TestServeWithoutSecretsFails(t *testing.T) {
	root := testRoot(t)
	empty := newNode(t, root, "confide-km-v1")
	joiner := newNode(t, root, "confide-km-v1")
	req, _ := joiner.Request()
	if _, err := empty.Serve(req); !errors.Is(err, ErrNoSecrets) {
		t.Errorf("err = %v, want ErrNoSecrets", err)
	}
}

func TestCentralizedProvisioning(t *testing.T) {
	root := testRoot(t)
	node := newNode(t, root, "confide-km-v1")
	kms, err := NewCentralKMS(root.Verifier(), node.Enclave().Measurement())
	if err != nil {
		t.Fatal(err)
	}
	req, _ := node.Request()
	resp, err := kms.Provision(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.AcceptCentral(resp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(node.Secrets().Envelope.Public(), kms.PublicKey()) {
		t.Error("central secrets mismatch")
	}
}

func TestCentralizedRejectsWrongMeasurement(t *testing.T) {
	root := testRoot(t)
	good := newNode(t, root, "confide-km-v1")
	kms, _ := NewCentralKMS(root.Verifier(), good.Enclave().Measurement())
	bad := newNode(t, root, "confide-km-v2")
	req, _ := bad.Request()
	if _, err := kms.Provision(req); !errors.Is(err, ErrBadAttestation) {
		t.Errorf("err = %v, want ErrBadAttestation", err)
	}
}

func TestProvisionCSDestroysKMEnclave(t *testing.T) {
	root := testRoot(t)
	platform := tee.NewPlatform(root)
	km, err := NewNodeKM(platform, root.Verifier(), tee.Config{CodeIdentity: "confide-km-v1"})
	if err != nil {
		t.Fatal(err)
	}
	km.Bootstrap()
	cs, err := platform.CreateEnclave("cs", tee.Config{CodeIdentity: "confide-cs-v1"})
	if err != nil {
		t.Fatal(err)
	}
	secrets, err := km.ProvisionCS(cs)
	if err != nil {
		t.Fatal(err)
	}
	if secrets == nil || len(secrets.StatesKey) == 0 {
		t.Fatal("no secrets provisioned")
	}
	if !km.Enclave().Destroyed() {
		t.Error("KM enclave must be destroyed after provisioning to free EPC")
	}
}

func TestProvisionCSRequiresSamePlatform(t *testing.T) {
	root := testRoot(t)
	p1, p2 := tee.NewPlatform(root), tee.NewPlatform(root)
	km, _ := NewNodeKM(p1, root.Verifier(), tee.Config{CodeIdentity: "confide-km-v1"})
	km.Bootstrap()
	foreignCS, _ := p2.CreateEnclave("cs", tee.Config{CodeIdentity: "confide-cs-v1"})
	if _, err := km.ProvisionCS(foreignCS); err == nil {
		t.Error("cross-platform CS provisioning should fail")
	}
}

func TestSecretsMarshalRoundTrip(t *testing.T) {
	s, err := GenerateSecrets()
	if err != nil {
		t.Fatal(err)
	}
	back, err := unmarshalSecrets(s.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.StatesKey, s.StatesKey) || !bytes.Equal(back.Envelope.Public(), s.Envelope.Public()) {
		t.Error("secrets corrupted in marshal round trip")
	}
	if _, err := unmarshalSecrets([]byte("garbage")); err == nil {
		t.Error("garbage secrets should not unmarshal")
	}
}
