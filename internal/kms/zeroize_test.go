package kms

import (
	"bytes"
	"testing"

	"confide/internal/tee"
)

func TestSecretsZeroize(t *testing.T) {
	s, err := GenerateSecrets()
	if err != nil {
		t.Fatal(err)
	}
	key := s.StatesKey // same backing array
	s.Zeroize()
	if !bytes.Equal(key, make([]byte, len(key))) {
		t.Error("Zeroize left key bytes in place")
	}
	if s.Envelope != nil {
		t.Error("Zeroize kept the envelope key reachable")
	}
}

// unmarshalSecrets must copy the states key out of the decode buffer: the
// chain codec aliases its input, and provisioning wipes the plaintext buffer
// right after unmarshalling.
func TestUnmarshalSecretsDoesNotAliasInput(t *testing.T) {
	s, err := GenerateSecrets()
	if err != nil {
		t.Fatal(err)
	}
	buf := s.marshal()
	back, err := unmarshalSecrets(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0 // what Serve/Accept do to the plaintext
	}
	if !bytes.Equal(back.StatesKey, s.StatesKey) {
		t.Error("states key aliased the wiped decode buffer")
	}
}

// After handing secrets to the CS enclave the KM node must not keep its own
// reference: the KM enclave is destroyed and its copy goes with it.
func TestProvisionCSDropsKMReference(t *testing.T) {
	root := testRoot(t)
	platform := tee.NewPlatform(root)
	km, err := NewNodeKM(platform, root.Verifier(), tee.Config{CodeIdentity: "confide-km-v1"})
	if err != nil {
		t.Fatal(err)
	}
	km.Bootstrap()
	cs, err := platform.CreateEnclave("cs", tee.Config{CodeIdentity: "confide-cs-v1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := km.ProvisionCS(cs); err != nil {
		t.Fatal(err)
	}
	if km.Secrets() != nil {
		t.Error("KM node retains a secrets reference after CS provisioning")
	}
}
