package kms

import "confide/internal/metrics"

// K-Protocol counters. Provisioning is infrequent (once per node join) so
// these are activity indicators rather than hot-path instruments.
var (
	mKeygens    = metrics.Default().Counter("confide_kms_keygens_total", "engine secret sets generated")
	mRequests   = metrics.Default().Counter("confide_kms_requests_total", "attested provisioning requests produced")
	mProvisions = metrics.Default().Counter("confide_kms_provisions_total", "provisioning requests served (secrets wrapped and released)")
	mUnwraps    = metrics.Default().Counter("confide_kms_unwraps_total", "provisioning responses accepted (secrets unwrapped and installed)")
	mRejects    = metrics.Default().Counter("confide_kms_attestation_rejects_total", "provisioning attempts rejected for bad attestation")
)
