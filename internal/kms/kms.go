// Package kms implements CONFIDE's K-Protocol: agreement on the engine
// secrets — the asymmetric envelope key sk_tx and the symmetric states root
// key k_states — among the Confidential-Engines of all blockchain nodes.
//
// Two deployments are supported, as in the paper:
//
//   - a centralized key-management service (an HSM-grade service acceptable
//     in consortium settings), which verifies a node's remote-attestation
//     report before provisioning; and
//   - a decentralized Mutual Authenticated Protocol (MAP): the first node
//     generates the secrets, and every joining node attests mutually with a
//     member node over the remote-attestation protocol before receiving
//     them.
//
// In both cases secrets travel wrapped under an ephemeral enclave-resident
// session key whose fingerprint is locked into the attestation report, so
// a man in the middle can neither read nor redirect a provisioning.
package kms

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"confide/internal/chain"
	"confide/internal/crypto"
	"confide/internal/tee"
)

// Secrets is the material every Confidential-Engine must share.
type Secrets struct {
	// Envelope is sk_tx/pk_tx: the key pair clients seal transactions to.
	Envelope *crypto.EnvelopeKey
	// StatesKey is k_states: the root key for contract-state encryption.
	StatesKey []byte
}

// GenerateSecrets creates fresh engine secrets (the first node of a
// decentralized deployment, or the centralized service, calls this).
func GenerateSecrets() (*Secrets, error) {
	env, err := crypto.GenerateEnvelopeKey()
	if err != nil {
		return nil, err
	}
	states, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	mKeygens.Inc()
	return &Secrets{Envelope: env, StatesKey: states}, nil
}

// Zeroize erases the secrets in place: the states key bytes are overwritten
// and the envelope reference dropped (Go offers no reliable way to scrub the
// P-256 scalar inside crypto/ecdh; unreferencing it is the best available).
// Key-epoch retirement calls this on copies that must not outlive their
// epoch's acceptance window.
func (s *Secrets) Zeroize() {
	wipe(s.StatesKey)
	s.StatesKey = nil
	s.Envelope = nil
}

// wipe overwrites key bytes in place.
func wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// marshal serializes secrets for wrapped transport. Callers must wipe the
// returned buffer once it has been wrapped — it holds sk_tx and k_states in
// the clear.
func (s *Secrets) marshal() []byte {
	return chain.Encode(chain.List(
		chain.Bytes(s.Envelope.Marshal()),
		chain.Bytes(s.StatesKey),
	))
}

func unmarshalSecrets(data []byte) (*Secrets, error) {
	it, err := chain.Decode(data)
	if err != nil || !it.IsList || len(it.List) != 2 {
		return nil, errors.New("kms: malformed secrets")
	}
	env, err := crypto.UnmarshalEnvelopeKey(it.List[0].Str)
	if err != nil {
		return nil, err
	}
	if len(it.List[1].Str) != crypto.SymKeySize {
		return nil, errors.New("kms: bad states key length")
	}
	// Copy out of the decode buffer: the RLP items alias data, and callers
	// wipe that buffer as soon as the secrets are installed.
	return &Secrets{Envelope: env, StatesKey: append([]byte(nil), it.List[1].Str...)}, nil
}

// ProvisionRequest is a node's attested ask for the engine secrets.
type ProvisionRequest struct {
	// Report is the KM enclave's remote attestation; its report data binds
	// SHA256(SessionPub) and the nonce.
	Report tee.Report
	// SessionPub is the ephemeral wrap key generated inside the enclave.
	SessionPub []byte
	// Nonce prevents replaying an old response.
	Nonce [16]byte
}

// ProvisionResponse carries wrapped secrets plus the provider's own
// attestation (the "mutual" in MAP).
type ProvisionResponse struct {
	Report  tee.Report
	Nonce   [16]byte
	Wrapped []byte
}

// reportData binds a session key and nonce into the 64-byte report field.
func reportData(sessionPub []byte, nonce [16]byte) []byte {
	fp := sha256.Sum256(sessionPub)
	out := make([]byte, 0, 48)
	out = append(out, fp[:]...)
	out = append(out, nonce[:]...)
	return out
}

// NodeKM is the key-management side of one node: it owns the KM enclave and
// the provisioned secrets, and hands them to the contract-service enclave
// over a locally-attested channel.
type NodeKM struct {
	enclave  *tee.Enclave
	verifier *ecdsa.PublicKey
	session  *crypto.EnvelopeKey
	nonce    [16]byte
	secrets  *Secrets
}

// NewNodeKM creates the node's KM enclave on the given platform.
func NewNodeKM(platform *tee.Platform, verifier *ecdsa.PublicKey, cfg tee.Config) (*NodeKM, error) {
	if cfg.CodeIdentity == "" {
		cfg.CodeIdentity = "confide-km-v1"
	}
	enclave, err := platform.CreateEnclave("km-"+randomSuffix(), cfg)
	if err != nil {
		return nil, err
	}
	session, err := crypto.GenerateEnvelopeKey()
	if err != nil {
		return nil, err
	}
	km := &NodeKM{enclave: enclave, verifier: verifier, session: session}
	if _, err := io.ReadFull(rand.Reader, km.nonce[:]); err != nil {
		return nil, err
	}
	return km, nil
}

func randomSuffix() string {
	var b [6]byte
	io.ReadFull(rand.Reader, b[:])
	return fmt.Sprintf("%x", b)
}

// Enclave exposes the KM enclave (local attestation, teardown).
func (n *NodeKM) Enclave() *tee.Enclave { return n.enclave }

// Bootstrap makes this node the secrets origin (first node of a
// decentralized deployment).
func (n *NodeKM) Bootstrap() error {
	if n.secrets != nil {
		return errors.New("kms: secrets already present")
	}
	s, err := GenerateSecrets()
	if err != nil {
		return err
	}
	n.secrets = s
	return nil
}

// Secrets returns the provisioned secrets (nil before provisioning).
func (n *NodeKM) Secrets() *Secrets { return n.secrets }

// Request produces this node's attested provisioning request.
func (n *NodeKM) Request() (ProvisionRequest, error) {
	rpt, err := n.enclave.RemoteAttest(reportData(n.session.Public(), n.nonce))
	if err != nil {
		return ProvisionRequest{}, err
	}
	mRequests.Inc()
	return ProvisionRequest{Report: rpt, SessionPub: n.session.Public(), Nonce: n.nonce}, nil
}

// Errors.
var (
	ErrNoSecrets      = errors.New("kms: node holds no secrets")
	ErrBadAttestation = errors.New("kms: attestation verification failed")
)

// verifyRequest checks a request's report against the verifier and the
// expected measurement, and that the report binds the session key.
func verifyRequest(verifier *ecdsa.PublicKey, expected [32]byte, req ProvisionRequest) error {
	if err := tee.VerifyReport(verifier, req.Report, expected); err != nil {
		mRejects.Inc()
		return ErrBadAttestation
	}
	want := reportData(req.SessionPub, req.Nonce)
	if !bytes.Equal(req.Report.ReportData[:len(want)], want) {
		mRejects.Inc()
		return ErrBadAttestation
	}
	return nil
}

// Serve answers a provisioning request from a joining node (decentralized
// MAP). The provider requires the requester to run the *same enclave code*
// (equal measurement) before releasing secrets.
func (n *NodeKM) Serve(req ProvisionRequest) (ProvisionResponse, error) {
	if n.secrets == nil {
		return ProvisionResponse{}, ErrNoSecrets
	}
	if err := verifyRequest(n.verifier, n.enclave.Measurement(), req); err != nil {
		return ProvisionResponse{}, err
	}
	wrapKey, err := crypto.RandomKey()
	if err != nil {
		return ProvisionResponse{}, err
	}
	plain := n.secrets.marshal()
	wrapped, err := crypto.SealEnvelope(req.SessionPub, wrapKey, plain)
	wipe(plain)
	wipe(wrapKey)
	if err != nil {
		return ProvisionResponse{}, err
	}
	rpt, err := n.enclave.RemoteAttest(reportData(req.SessionPub, req.Nonce))
	if err != nil {
		return ProvisionResponse{}, err
	}
	mProvisions.Inc()
	return ProvisionResponse{Report: rpt, Nonce: req.Nonce, Wrapped: wrapped}, nil
}

// Accept validates a provider's response (its attestation, code identity and
// nonce) and installs the secrets.
func (n *NodeKM) Accept(resp ProvisionResponse) error {
	if n.secrets != nil {
		return errors.New("kms: secrets already present")
	}
	if resp.Nonce != n.nonce {
		return ErrBadAttestation
	}
	if err := tee.VerifyReport(n.verifier, resp.Report, n.enclave.Measurement()); err != nil {
		return ErrBadAttestation
	}
	want := reportData(n.session.Public(), n.nonce)
	if !bytes.Equal(resp.Report.ReportData[:len(want)], want) {
		return ErrBadAttestation
	}
	_, plain, err := n.session.OpenEnvelope(resp.Wrapped)
	if err != nil {
		return fmt.Errorf("kms: unwrap secrets: %w", err)
	}
	secrets, err := unmarshalSecrets(plain)
	wipe(plain)
	if err != nil {
		return err
	}
	n.secrets = secrets
	mUnwraps.Inc()
	return nil
}

// ProvisionCS hands the secrets to a contract-service enclave on the same
// platform over a locally-attested channel, then destroys the KM enclave to
// release its EPC pages (the paper destroys the KM enclave as soon as
// possible because key management is infrequent).
func (n *NodeKM) ProvisionCS(cs *tee.Enclave) (*Secrets, error) {
	if n.secrets == nil {
		return nil, ErrNoSecrets
	}
	la, err := cs.LocalAttest(n.enclave)
	if err != nil {
		return nil, err
	}
	if err := n.enclave.VerifyLocal(la); err != nil {
		return nil, fmt.Errorf("kms: local attestation: %w", err)
	}
	// Channel key derivation stands in for an encrypted local channel; the
	// secrets never exist outside enclave memory in production.
	if _, err := n.enclave.SecureChannelKey(cs); err != nil {
		return nil, err
	}
	secrets := n.secrets
	// The KM enclave is gone; the CS enclave now owns the only copy this
	// node holds. Dropping the NodeKM's reference keeps retired material
	// from lingering in a struct nobody will use again.
	n.secrets = nil
	n.enclave.Destroy()
	return secrets, nil
}

// CentralKMS is the centralized deployment: one trusted service that
// verifies attestations and provisions every node.
type CentralKMS struct {
	secrets  *Secrets
	verifier *ecdsa.PublicKey
	expected [32]byte
}

// NewCentralKMS creates the service with fresh secrets. expected is the
// measurement nodes' KM enclaves must present.
func NewCentralKMS(verifier *ecdsa.PublicKey, expected [32]byte) (*CentralKMS, error) {
	s, err := GenerateSecrets()
	if err != nil {
		return nil, err
	}
	return &CentralKMS{secrets: s, verifier: verifier, expected: expected}, nil
}

// PublicKey exposes pk_tx for client distribution.
func (c *CentralKMS) PublicKey() []byte { return c.secrets.Envelope.Public() }

// Provision verifies a node's attestation and returns wrapped secrets. The
// response carries no provider report (clients trust the service itself).
func (c *CentralKMS) Provision(req ProvisionRequest) (ProvisionResponse, error) {
	if err := verifyRequest(c.verifier, c.expected, req); err != nil {
		return ProvisionResponse{}, err
	}
	wrapKey, err := crypto.RandomKey()
	if err != nil {
		return ProvisionResponse{}, err
	}
	plain := c.secrets.marshal()
	wrapped, err := crypto.SealEnvelope(req.SessionPub, wrapKey, plain)
	wipe(plain)
	wipe(wrapKey)
	if err != nil {
		return ProvisionResponse{}, err
	}
	mProvisions.Inc()
	return ProvisionResponse{Nonce: req.Nonce, Wrapped: wrapped}, nil
}

// AcceptCentral installs secrets from the centralized service (no provider
// report to verify — the service endpoint is authenticated out of band,
// e.g. by its TLS identity or HSM custody).
func (n *NodeKM) AcceptCentral(resp ProvisionResponse) error {
	if n.secrets != nil {
		return errors.New("kms: secrets already present")
	}
	if resp.Nonce != n.nonce {
		return ErrBadAttestation
	}
	_, plain, err := n.session.OpenEnvelope(resp.Wrapped)
	if err != nil {
		return fmt.Errorf("kms: unwrap secrets: %w", err)
	}
	secrets, err := unmarshalSecrets(plain)
	wipe(plain)
	if err != nil {
		return err
	}
	n.secrets = secrets
	mUnwraps.Inc()
	return nil
}
