package bench

import (
	"strings"
	"testing"

	"confide/internal/core"
)

// These tests run heavily scaled-down experiment cells to guard the bench
// harness itself; the real measurements live in the repository-root
// benchmarks and cmd/benchrunner.

func TestFigure10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	rows, err := Figure10(Fig10Config{Nodes: 4, TxsPerCell: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 4 workloads × 2 engines × 2 modes
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	for _, r := range rows {
		if r.TPS <= 0 {
			t.Errorf("%s/%s: tps = %v", r.Workload, r.Engine, r.TPS)
		}
	}
	// Shape assertions live in the full-size repository benchmarks; at 3
	// txs per cell the per-round fixed costs dominate.
}

func TestFigure11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	rows, err := Figure11(Fig11Config{
		NodeCounts:     []int{4},
		Parallel:       []int{1, 4},
		TxsPerCell:     8,
		IncludeTwoZone: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestTable1Smoke(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile[core.OpContractCall].Count != 31 {
		t.Errorf("contract calls = %d, want 31", res.Profile[core.OpContractCall].Count)
	}
	if res.Profile[core.OpGetStorage].Count != 151 {
		t.Errorf("GetStorage = %d, want 151", res.Profile[core.OpGetStorage].Count)
	}
	if res.Profile[core.OpSetStorage].Count != 9 {
		t.Errorf("SetStorage = %d, want 9", res.Profile[core.OpSetStorage].Count)
	}
	if !strings.Contains(res.Rendered, "Contract Call") {
		t.Error("rendered table incomplete")
	}
}

func TestFigure12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation experiment")
	}
	rows, err := Figure12(Fig12Config{Txs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// The fully optimized configurations must beat Base (skipped under the
	// race detector, whose instrumentation skews relative timings).
	if !raceEnabled && rows[4].TPS <= rows[0].TPS {
		t.Errorf("all-opts (%.1f) should beat base (%.1f)", rows[4].TPS, rows[0].TPS)
	}
	if !raceEnabled && rows[5].TPS <= rows[0].TPS {
		t.Errorf("all-opts+compile (%.1f) should beat base (%.1f)", rows[5].TPS, rows[0].TPS)
	}
}

func TestProductionMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	m, err := ProductionMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgBlockWrite <= 0 || m.AvgEmptyBlock <= 0 || m.AvgBlockExecution <= 0 {
		t.Errorf("metrics incomplete: %+v", m)
	}
}
