package bench

import (
	"errors"
	"strings"
	"testing"

	"confide/internal/metrics"
)

// TestMetricsOverheadSmoke guards the harness, not the budget: a tiny cell
// is noise-dominated, so only structural properties are asserted. The <2%
// check runs at full size via `make overhead` (recorded in EXPERIMENTS.md).
func TestMetricsOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	res, err := MetricsOverhead(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnabledTPS <= 0 || res.DisabledTPS <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
	if !strings.Contains(res.String(), "delta") {
		t.Errorf("String() = %q", res.String())
	}
	// The harness must restore the registry state it found.
	if !metrics.Default().Enabled() {
		t.Error("registry left disabled after overhead run")
	}
}

// TestSecretsConcurrent drives the shared-secrets accessor from many
// goroutines; under -race this pins down the sync.Once initialization.
func TestSecretsConcurrent(t *testing.T) {
	const goroutines = 16
	results := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			s, err := secrets()
			if err == nil && s == nil {
				err = errors.New("secrets() returned nil without error")
			}
			results <- err
		}()
	}
	for i := 0; i < goroutines; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
}
