package bench

import (
	"fmt"

	"confide/internal/core"
	"confide/internal/metrics"
	"confide/internal/workload"
)

// OverheadResult reports instrumented-vs-disabled throughput for one
// Figure 10 cell (ABS transfer, CONFIDE-VM, confidential, 4 nodes).
type OverheadResult struct {
	EnabledTPS  float64
	DisabledTPS float64
	// DeltaPct is (disabled-enabled)/disabled*100: the throughput the
	// instrumentation costs. Negative values mean noise favoured the
	// instrumented run.
	DeltaPct float64
}

func (r OverheadResult) String() string {
	return fmt.Sprintf("metrics overhead: enabled %.1f TPS, disabled %.1f TPS, delta %+.2f%%",
		r.EnabledTPS, r.DisabledTPS, r.DeltaPct)
}

// MetricsOverhead measures the cost of the observability layer by running
// the same cluster-throughput cell with the registry recording and with it
// switched to the no-op recorder. The budget is <2% (ISSUE acceptance
// criterion); rounds>1 keeps the best run per mode to damp scheduler noise.
func MetricsOverhead(txs, rounds int) (*OverheadResult, error) {
	// Small cells (tens of ms) are dominated by scheduler noise and can
	// report deltas of several percent in either direction; 256 txs keeps a
	// default run representative.
	if txs <= 0 {
		txs = 256
	}
	if rounds <= 0 {
		rounds = 3
	}
	cell := clusterParams{
		nodes:        4,
		vm:           core.VMCVM,
		confidential: true,
		source:       workload.ABSTransferFlatSrc,
		gen:          workload.ABSFlatInputSmall,
		txs:          txs,
		parallel:     4,
	}
	reg := metrics.Default()
	wasEnabled := reg.Enabled()
	defer reg.SetEnabled(wasEnabled)

	best := func(enabled bool) (float64, error) {
		reg.SetEnabled(enabled)
		var top float64
		for i := 0; i < rounds; i++ {
			tps, err := clusterThroughput(cell)
			if err != nil {
				return 0, err
			}
			if tps > top {
				top = tps
			}
		}
		return top, nil
	}

	// Interleaving would be fairer against thermal drift, but the simulator
	// is delay-injected (deterministic sleeps dominate), so sequential best-of
	// is stable in practice.
	enabledTPS, err := best(true)
	if err != nil {
		return nil, fmt.Errorf("overhead (enabled): %w", err)
	}
	disabledTPS, err := best(false)
	if err != nil {
		return nil, fmt.Errorf("overhead (disabled): %w", err)
	}
	return &OverheadResult{
		EnabledTPS:  enabledTPS,
		DisabledTPS: disabledTPS,
		DeltaPct:    (disabledTPS - enabledTPS) / disabledTPS * 100,
	}, nil
}
