package bench

import (
	"fmt"
	"math/rand"
	"time"

	"confide/internal/core"
	"confide/internal/cvm"
	"confide/internal/cvm/compile"
	"confide/internal/evm"
	"confide/internal/workload"
)

// ---------------------------------------------------------------------------
// VM-compile experiment: raw VM execution throughput for the three tiers —
// EVM interpreter, CONFIDE-VM interpreter (OPT4 fused) and CONFIDE-VM
// ahead-of-time compiled — on the four Figure 10 synthetic workloads plus
// the ABS transfer. This isolates the dispatch/operand-stack cost the
// compiler removes: no cluster, no envelopes, no storage commit, just the
// VM hot loop against an in-memory Env.
// ---------------------------------------------------------------------------

// VMCompileRow is one workload's measurement across the three tiers.
type VMCompileRow struct {
	Workload    string  `json:"workload"`
	EVMTPS      float64 `json:"evm_tps"`
	InterpTPS   float64 `json:"cvm_interp_tps"`
	CompiledTPS float64 `json:"cvm_compiled_tps"`
	// Speedup is compiled over interpreted CONFIDE-VM.
	Speedup float64 `json:"speedup"`
}

// VMCompileConfig parameterizes the experiment.
type VMCompileConfig struct {
	// Txs per measurement cell.
	Txs int
}

// DefaultVMCompile returns laptop-scaled parameters.
func DefaultVMCompile() VMCompileConfig { return VMCompileConfig{Txs: 96} }

// vmEnv is the minimal in-memory Env the VM-level cells run against
// (evm.Env is an alias of cvm.Env, so one env serves all tiers).
type vmEnv struct {
	storage map[string][]byte
	input   []byte
	output  []byte
	caller  []byte
}

func newVMEnv() *vmEnv {
	return &vmEnv{storage: make(map[string][]byte), caller: make([]byte, 20)}
}

func (e *vmEnv) GetStorage(key []byte) ([]byte, bool, error) {
	v, ok := e.storage[string(key)]
	return v, ok, nil
}
func (e *vmEnv) SetStorage(key, value []byte) error { e.storage[string(key)] = value; return nil }
func (e *vmEnv) Input() []byte                      { return e.input }
func (e *vmEnv) SetOutput(o []byte)                 { e.output = o }
func (e *vmEnv) Log(string)                         {}
func (e *vmEnv) Caller() []byte                     { return e.caller }
func (e *vmEnv) CallContract([]byte, []byte) ([]byte, error) {
	return nil, fmt.Errorf("bench: no cross-contract calls at VM level")
}

// VMCompile measures the three execution tiers on every workload. Before
// timing, each cell's compiled and interpreted runs are cross-checked on
// output and gas — a benchmark that drifted from the interpreter would be
// measuring a different machine.
func VMCompile(cfg VMCompileConfig) ([]VMCompileRow, error) {
	if cfg.Txs == 0 {
		cfg = DefaultVMCompile()
	}
	type cell struct {
		name string
		src  string
		gen  func(*rand.Rand) (string, [][]byte)
	}
	var cells []cell
	for _, w := range workload.SyntheticWorkloads() {
		cells = append(cells, cell{w.Name, w.Source, w.Input})
	}
	cells = append(cells, cell{"ABS Transfer (flat)", workload.ABSTransferFlatSrc, workload.ABSFlatInput})

	var rows []VMCompileRow
	for _, c := range cells {
		row, err := vmCompileCell(c.name, c.src, c.gen, cfg.Txs)
		if err != nil {
			return nil, fmt.Errorf("vmcompile %s: %w", c.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func vmCompileCell(name, src string, gen func(*rand.Rand) (string, [][]byte), txs int) (VMCompileRow, error) {
	cvmCode, err := workload.CompileCVM(src)
	if err != nil {
		return VMCompileRow{}, err
	}
	evmCode, err := workload.CompileEVM(src)
	if err != nil {
		return VMCompileRow{}, err
	}
	prog, err := cvm.LoadProgram(cvmCode, cvm.BuildOptions{Fuse: true})
	if err != nil {
		return VMCompileRow{}, err
	}
	unit, err := compile.Compile(prog)
	if err != nil {
		return VMCompileRow{}, err
	}

	// Pre-generate the input stream once so every tier executes the exact
	// same transactions.
	rng := rand.New(rand.NewSource(33))
	inputs := make([][]byte, txs)
	for i := range inputs {
		method, args := gen(rng)
		inputs[i] = core.EncodeInput(method, args...)
	}

	// Differential guard: compiled output and gas must match the
	// interpreter on this workload before we bother timing it.
	for i := 0; i < 4 && i < txs; i++ {
		ienv, cenv := newVMEnv(), newVMEnv()
		ienv.input, cenv.input = inputs[i], inputs[i]
		vm := cvm.NewVM(prog, ienv, cvm.Config{})
		if _, err := vm.Run(); err != nil {
			return VMCompileRow{}, fmt.Errorf("interp: %w", err)
		}
		if _, used, err := unit.Run(cenv, cvm.Config{}); err != nil {
			return VMCompileRow{}, fmt.Errorf("compiled: %w", err)
		} else if used != vm.GasUsed() || string(cenv.output) != string(ienv.output) {
			return VMCompileRow{}, fmt.Errorf("compiled diverges from interpreter (gas %d vs %d)", used, vm.GasUsed())
		}
	}

	timeTier := func(run func(input []byte) error) (float64, error) {
		start := time.Now()
		for _, in := range inputs {
			if err := run(in); err != nil {
				return 0, err
			}
		}
		return float64(txs) / time.Since(start).Seconds(), nil
	}

	var row VMCompileRow
	row.Workload = name
	buf := make([]byte, 8*cvm.PageSize)

	if row.EVMTPS, err = timeTier(func(in []byte) error {
		env := newVMEnv()
		env.input = in
		return evm.New(evmCode, env, evm.Config{}).Run()
	}); err != nil {
		return row, fmt.Errorf("evm: %w", err)
	}
	if row.InterpTPS, err = timeTier(func(in []byte) error {
		env := newVMEnv()
		env.input = in
		_, err := cvm.NewVM(prog, env, cvm.Config{MemoryBuffer: buf}).Run()
		return err
	}); err != nil {
		return row, fmt.Errorf("interp: %w", err)
	}
	if row.CompiledTPS, err = timeTier(func(in []byte) error {
		env := newVMEnv()
		env.input = in
		_, _, err := unit.Run(env, cvm.Config{MemoryBuffer: buf})
		return err
	}); err != nil {
		return row, fmt.Errorf("compiled: %w", err)
	}
	row.Speedup = row.CompiledTPS / row.InterpTPS
	return row, nil
}
