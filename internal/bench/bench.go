// Package bench implements the paper's evaluation section: one driver per
// table/figure, shared by the repository's testing.B benchmarks and the
// cmd/benchrunner tool. Absolute numbers differ from the paper (its
// substrate was a 4-node Xeon/SGX cluster; ours is a calibrated simulator),
// but each experiment reproduces the published *shape* — who wins, by
// roughly what factor, and where the knees are.
package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"confide/internal/chain"
	"confide/internal/core"
	"confide/internal/kms"
	"confide/internal/node"
	"confide/internal/p2p"
	"confide/internal/storage"
	"confide/internal/tee"
	"confide/internal/workload"
)

var (
	contractAddr = chain.AddressFromBytes([]byte("bench-contract"))
	ownerAddr    = chain.AddressFromBytes([]byte("bench-owner"))
)

// sharedSecrets amortizes key generation across experiment cells. Drivers
// run concurrently under `go test -bench` and from benchrunner goroutines,
// so initialization is guarded by a sync.Once rather than a naked nil check.
var (
	sharedSecrets     *kms.Secrets
	sharedSecretsErr  error
	sharedSecretsOnce sync.Once
)

func secrets() (*kms.Secrets, error) {
	sharedSecretsOnce.Do(func() {
		sharedSecrets, sharedSecretsErr = kms.GenerateSecrets()
	})
	return sharedSecrets, sharedSecretsErr
}

// newEngine builds a standalone confidential engine with TEE delay
// injection (experiments measure the cost of confidentiality, so the
// simulated hardware tax must consume wall-clock time).
func newEngine(opts core.Options, store storage.KVStore) (*core.Engine, error) {
	s, err := secrets()
	if err != nil {
		return nil, err
	}
	root, err := tee.NewRootOfTrust()
	if err != nil {
		return nil, err
	}
	return core.NewConfidentialEngine(tee.NewPlatform(root), s, store,
		tee.Config{InjectDelays: true}, opts)
}

// makeTxs pre-builds n sealed transactions (client-side sealing is not part
// of any measured region).
func makeTxs(client *core.Client, addr chain.Address, gen func(*rand.Rand) (string, [][]byte), n int, seed int64) ([]*chain.Tx, error) {
	rng := rand.New(rand.NewSource(seed))
	txs := make([]*chain.Tx, 0, n)
	for i := 0; i < n; i++ {
		method, args := gen(rng)
		tx, _, err := client.NewConfidentialTx(addr, method, args...)
		if err != nil {
			return nil, err
		}
		txs = append(txs, tx)
	}
	return txs, nil
}

// ---------------------------------------------------------------------------
// Figure 10: throughput of the four Synthetic workloads on
// {EVM, CONFIDE-VM} × {public, confidential(TEE)}.
// ---------------------------------------------------------------------------

// Fig10Row is one bar of Figure 10.
type Fig10Row struct {
	Workload string
	Engine   string // "EVM" or "CONFIDE-VM"
	TEE      bool
	TPS      float64
}

// Fig10Config parameterizes the experiment.
type Fig10Config struct {
	// Nodes in the cluster (paper: 4).
	Nodes int
	// TxsPerCell per measurement (higher = steadier).
	TxsPerCell int
}

// DefaultFig10 returns paper-faithful parameters scaled for a laptop run.
func DefaultFig10() Fig10Config { return Fig10Config{Nodes: 4, TxsPerCell: 24} }

// Figure10 measures end-to-end cluster throughput for every cell.
func Figure10(cfg Fig10Config) ([]Fig10Row, error) {
	if cfg.Nodes == 0 {
		cfg = DefaultFig10()
	}
	var rows []Fig10Row
	for _, w := range workload.SyntheticWorkloads() {
		for _, vm := range []core.VMKind{core.VMEVM, core.VMCVM} {
			for _, confidential := range []bool{false, true} {
				tps, err := clusterThroughput(clusterParams{
					nodes:        cfg.Nodes,
					vm:           vm,
					confidential: confidential,
					source:       w.Source,
					gen:          w.Input,
					txs:          cfg.TxsPerCell,
					parallel:     1,
				})
				if err != nil {
					return nil, fmt.Errorf("fig10 %s: %w", w.Name, err)
				}
				engine := "CONFIDE-VM"
				if vm == core.VMEVM {
					engine = "EVM"
				}
				rows = append(rows, Fig10Row{Workload: w.Name, Engine: engine, TEE: confidential, TPS: tps})
			}
		}
	}
	return rows, nil
}

// clusterParams is the shared cluster-throughput harness.
type clusterParams struct {
	nodes        int
	zones        []int
	network      p2p.Config
	vm           core.VMKind
	confidential bool
	source       string
	gen          func(*rand.Rand) (string, [][]byte)
	txs          int
	parallel     int
	readLatency  time.Duration
	writeLatency time.Duration
}

func clusterThroughput(p clusterParams) (float64, error) {
	cluster, err := node.NewCluster(node.ClusterOptions{
		Nodes:   p.nodes,
		Zones:   p.zones,
		Network: p.network,
		Node: node.Config{
			BlockMaxTxs: 32,
			Parallelism: p.parallel,
			EngineOpts:  core.AllOptimizations(),
		},
		Enclave:           tee.Config{InjectDelays: true},
		StoreReadLatency:  p.readLatency,
		StoreWriteLatency: p.writeLatency,
	})
	if err != nil {
		return 0, err
	}
	defer cluster.Close()

	code, err := workload.Compile(p.source, p.vm)
	if err != nil {
		return 0, err
	}
	if err := cluster.DeployEverywhere(contractAddr, ownerAddr, p.vm, code, p.confidential, 1); err != nil {
		return 0, err
	}
	var client *core.Client
	if p.confidential {
		client, err = core.NewClient(cluster.EnvelopePublicKey())
	} else {
		client, err = core.NewClient(nil)
	}
	if err != nil {
		return 0, err
	}

	rng := rand.New(rand.NewSource(11))
	build := func(n int) ([]*chain.Tx, error) {
		txs := make([]*chain.Tx, 0, n)
		for i := 0; i < n; i++ {
			method, args := p.gen(rng)
			var tx *chain.Tx
			if p.confidential {
				tx, _, err = client.NewConfidentialTx(contractAddr, method, args...)
			} else {
				tx, err = client.NewPublicTx(contractAddr, method, args...)
			}
			if err != nil {
				return nil, err
			}
			txs = append(txs, tx)
		}
		return txs, nil
	}
	leader := cluster.Leader()

	// Warm-up block: populates code caches and JIT-warms the Go runtime so
	// the measured region reflects steady state.
	warm, err := build(2)
	if err != nil {
		return 0, err
	}
	for _, tx := range warm {
		if err := leader.SubmitTx(tx); err != nil {
			return 0, err
		}
	}
	if _, err := cluster.DrainAll(8, 30*time.Second); err != nil {
		return 0, err
	}

	txs, err := build(p.txs)
	if err != nil {
		return 0, err
	}
	for _, tx := range txs {
		if err := leader.SubmitTx(tx); err != nil {
			return 0, err
		}
	}

	// Pre-verification runs concurrently with the ordering of earlier
	// blocks in production (Figure 7); the synchronous driver cannot
	// overlap phases, so the pipeline's steady state is modelled by
	// letting every node finish pre-verifying before the timed region.
	for attempt := 0; attempt < 100; attempt++ {
		total := 0
		for _, n := range cluster.Nodes {
			n.PreVerifyPending()
			total += n.VerifiedPoolLen()
		}
		if total >= p.txs*len(cluster.Nodes) {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}

	start := time.Now()
	done, err := cluster.DrainAll(64, 30*time.Second)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if done < p.txs {
		return 0, fmt.Errorf("bench: only %d of %d transactions committed", done, p.txs)
	}
	// Verify no transaction failed (a failing workload would report a
	// flattering TPS).
	for _, tx := range txs {
		rpt, ok := leader.Receipt(tx.Hash())
		if !ok || rpt.Status != chain.ReceiptOK {
			return 0, fmt.Errorf("bench: transaction failed: %s", rpt.Output)
		}
	}
	return float64(p.txs) / elapsed.Seconds(), nil
}

// ---------------------------------------------------------------------------
// Figure 11: scalability of the ABS workload with node count, parallel
// execution ways, and single- vs two-zone networks.
// ---------------------------------------------------------------------------

// Fig11Row is one point of Figure 11.
type Fig11Row struct {
	Nodes    int
	Parallel int
	Zones    int
	TPS      float64
}

// Fig11Config parameterizes the experiment.
type Fig11Config struct {
	NodeCounts []int
	Parallel   []int
	TxsPerCell int
	// IncludeTwoZone adds the Shanghai/Beijing-style 1:2 split series.
	IncludeTwoZone bool
}

// DefaultFig11 scales the paper's grid for a laptop run.
func DefaultFig11() Fig11Config {
	return Fig11Config{
		NodeCounts:     []int{4, 8, 12, 16, 20},
		Parallel:       []int{1, 4, 6},
		TxsPerCell:     24,
		IncludeTwoZone: true,
	}
}

// twoZoneSplit assigns nodes to two cities at the paper's 1:2 ratio.
func twoZoneSplit(n int) []int {
	zones := make([]int, n)
	for i := range zones {
		if i < n/3 {
			zones[i] = 0 // the smaller city
		} else {
			zones[i] = 1
		}
	}
	return zones
}

// Figure11 measures ABS throughput across the scalability grid.
func Figure11(cfg Fig11Config) ([]Fig11Row, error) {
	if len(cfg.NodeCounts) == 0 {
		cfg = DefaultFig11()
	}
	intraZone := p2p.LinkProfile{Latency: 200 * time.Microsecond, BytesPerSec: 1 << 30}
	crossZone := p2p.LinkProfile{Latency: 6 * time.Millisecond, BytesPerSec: 16 << 20}

	var rows []Fig11Row
	run := func(nodes, parallel, zoneCount int, zones []int, network p2p.Config) error {
		tps, err := clusterThroughput(clusterParams{
			nodes:        nodes,
			zones:        zones,
			network:      network,
			vm:           core.VMCVM,
			confidential: true,
			source:       workload.ABSTransferFlatSrc,
			gen:          workload.ABSFlatInputSmall,
			txs:          cfg.TxsPerCell,
			parallel:     parallel,
			readLatency:  2 * time.Millisecond, // cloud KV store cold read
		})
		if err != nil {
			return err
		}
		rows = append(rows, Fig11Row{Nodes: nodes, Parallel: parallel, Zones: zoneCount, TPS: tps})
		return nil
	}

	for _, nodes := range cfg.NodeCounts {
		for _, parallel := range cfg.Parallel {
			if err := run(nodes, parallel, 1, nil, p2p.Config{IntraZone: intraZone, CrossZone: intraZone}); err != nil {
				return nil, fmt.Errorf("fig11 n=%d p=%d: %w", nodes, parallel, err)
			}
		}
		if cfg.IncludeTwoZone {
			if err := run(nodes, 4, 2, twoZoneSplit(nodes), p2p.Config{IntraZone: intraZone, CrossZone: crossZone}); err != nil {
				return nil, fmt.Errorf("fig11 two-zone n=%d: %w", nodes, err)
			}
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table 1: operation profile of one SCF-AR asset transfer.
// ---------------------------------------------------------------------------

// Table1Result carries the profile snapshot and its rendered table.
type Table1Result struct {
	Rendered string
	Profile  map[string]core.ProfileEntry
}

// Table1 runs one production-shaped SCF-AR transfer through the
// hierarchical contract suite and reports the engine's operation profile.
func Table1() (*Table1Result, error) {
	store := storage.NewMemStore()
	store.SetReadLatency(50 * time.Microsecond) // cloud KV store
	engine, err := newEngine(core.AllOptimizations(), store)
	if err != nil {
		return nil, err
	}
	gateway := chain.AddressFromBytes([]byte("scf-gateway"))
	manager := chain.AddressFromBytes([]byte("scf-manager"))
	service := chain.AddressFromBytes([]byte("scf-service"))
	for _, c := range []struct {
		addr chain.Address
		src  string
	}{
		{gateway, workload.SCFGatewaySrc},
		{manager, workload.SCFManagerSrc},
		{service, workload.SCFServiceSrc},
	} {
		code, err := workload.CompileCVM(c.src)
		if err != nil {
			return nil, err
		}
		if err := engine.DeployContract(c.addr, ownerAddr, core.VMCVM, code, true, 1); err != nil {
			return nil, err
		}
	}
	client, err := core.NewClient(engine.EnvelopePublicKey())
	if err != nil {
		return nil, err
	}
	commit := func(res *core.ExecResult) error {
		var batch storage.Batch
		if err := res.AppendWrites(&batch); err != nil {
			return err
		}
		return store.WriteBatch(&batch)
	}
	for _, wire := range []struct{ to, val chain.Address }{
		{gateway, manager}, {manager, service},
	} {
		tx, _, err := client.NewConfidentialTx(wire.to, "init", wire.val[:])
		if err != nil {
			return nil, err
		}
		res, err := engine.Execute(tx)
		if err != nil {
			return nil, err
		}
		if err := commit(res); err != nil {
			return nil, err
		}
	}

	engine.Profile().Reset()
	rng := rand.New(rand.NewSource(3))
	method, args := workload.SCFTransferInput(rng)
	tx, _, err := client.NewConfidentialTx(gateway, method, args...)
	if err != nil {
		return nil, err
	}
	// Pre-verification runs ahead of execution, as in production.
	engine.PreVerifyBatch([]*chain.Tx{tx})
	res, err := engine.Execute(tx)
	if err != nil {
		return nil, err
	}
	if res.Receipt.Status != chain.ReceiptOK {
		return nil, fmt.Errorf("bench: SCF transfer failed: %s", res.Receipt.Output)
	}
	return &Table1Result{
		Rendered: engine.Profile().Table(),
		Profile:  engine.Profile().Snapshot(),
	}, nil
}

// ---------------------------------------------------------------------------
// Figure 12: cumulative optimization ablation on the ABS contract.
// ---------------------------------------------------------------------------

// Fig12Row is one bar of Figure 12.
type Fig12Row struct {
	Config  string
	TPS     float64
	Speedup float64 // vs the Base row
}

// Fig12Config parameterizes the ablation.
type Fig12Config struct {
	Txs int
}

// DefaultFig12 returns laptop-scaled parameters.
func DefaultFig12() Fig12Config { return Fig12Config{Txs: 48} }

// fig12Cell describes one cumulative configuration.
type fig12Cell struct {
	name      string
	opts      core.Options
	source    string
	gen       func(*rand.Rand) (string, [][]byte)
	preVerify bool
}

// Figure12 measures execution-phase throughput of the ABS transfer under
// cumulative optimizations: Base → OPT1 (code cache + memory pool) → OPT2
// (Flatbuffers-style encoding replaces JSON) → OPT3 (pre-verification keeps
// envelope opening off the execution path) → OPT4 (reduced instruction set
// + superinstruction fusion).
func Figure12(cfg Fig12Config) ([]Fig12Row, error) {
	if cfg.Txs == 0 {
		cfg = DefaultFig12()
	}
	cells := []fig12Cell{
		{
			name:   "Base",
			opts:   core.Options{},
			source: workload.ABSTransferJSONSrc,
			gen:    workload.ABSJSONInput,
		},
		{
			name:   "+OPT1 code cache & memory mgmt",
			opts:   core.Options{CodeCache: true, MemPool: true},
			source: workload.ABSTransferJSONSrc,
			gen:    workload.ABSJSONInput,
		},
		{
			name:   "+OPT2 Flatbuffers encoding",
			opts:   core.Options{CodeCache: true, MemPool: true},
			source: workload.ABSTransferFlatSrc,
			gen:    workload.ABSFlatInput,
		},
		{
			name:      "+OPT3 pre-verification",
			opts:      core.Options{CodeCache: true, MemPool: true, PreVerify: true},
			source:    workload.ABSTransferFlatSrc,
			gen:       workload.ABSFlatInput,
			preVerify: true,
		},
		{
			name:      "+OPT4 instruction fusion",
			opts:      core.Options{CodeCache: true, MemPool: true, PreVerify: true, Fuse: true},
			source:    workload.ABSTransferFlatSrc,
			gen:       workload.ABSFlatInput,
			preVerify: true,
		},
		{
			name:      "+compile (AOT closure threading)",
			opts:      core.Options{CodeCache: true, MemPool: true, PreVerify: true, Fuse: true, Compile: true},
			source:    workload.ABSTransferFlatSrc,
			gen:       workload.ABSFlatInput,
			preVerify: true,
		},
	}
	var rows []Fig12Row
	base := 0.0
	for _, cell := range cells {
		tps, err := fig12Cell_run(cell, cfg.Txs)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", cell.name, err)
		}
		if base == 0 {
			base = tps
		}
		rows = append(rows, Fig12Row{Config: cell.name, TPS: tps, Speedup: tps / base})
	}
	return rows, nil
}

func fig12Cell_run(cell fig12Cell, txCount int) (float64, error) {
	store := storage.NewMemStore()
	engine, err := newEngine(cell.opts, store)
	if err != nil {
		return 0, err
	}
	code, err := workload.CompileCVM(cell.source)
	if err != nil {
		return 0, err
	}
	if err := engine.DeployContract(contractAddr, ownerAddr, core.VMCVM, code, true, 1); err != nil {
		return 0, err
	}
	client, err := core.NewClient(engine.EnvelopePublicKey())
	if err != nil {
		return 0, err
	}
	txs, err := makeTxs(client, contractAddr, cell.gen, txCount, 21)
	if err != nil {
		return 0, err
	}
	// Pre-verification overlaps the ordering phase in production, so it
	// stays outside the measured execution window when enabled.
	if cell.preVerify {
		engine.PreVerifyBatch(txs)
	}
	start := time.Now()
	for _, tx := range txs {
		res, err := engine.Execute(tx)
		if err != nil {
			return 0, err
		}
		if res.Receipt.Status != chain.ReceiptOK {
			return 0, fmt.Errorf("tx failed: %s", res.Receipt.Output)
		}
		var batch storage.Batch
		if err := res.AppendWrites(&batch); err != nil {
			return 0, err
		}
		if err := store.WriteBatch(&batch); err != nil {
			return 0, err
		}
	}
	return float64(txCount) / time.Since(start).Seconds(), nil
}

// ---------------------------------------------------------------------------
// §6.4 production metrics: block execution / empty block / block write.
// ---------------------------------------------------------------------------

// ProdMetrics reports the three §6.4 production numbers.
type ProdMetrics struct {
	AvgBlockExecution time.Duration // paper: ≈30 ms
	AvgEmptyBlock     time.Duration // paper: ≈5 ms
	AvgBlockWrite     time.Duration // paper: ≈6 ms (cloud SSD)
}

// ProductionMetrics drives ABS batches through a 4-node cluster with a
// cloud-SSD write model and measures block timings.
func ProductionMetrics() (*ProdMetrics, error) {
	cluster, err := node.NewCluster(node.ClusterOptions{
		Nodes: 4,
		Node: node.Config{
			BlockMaxTxs: 16,
			Parallelism: 4,
			EngineOpts:  core.AllOptimizations(),
		},
		Enclave:           tee.Config{InjectDelays: true},
		StoreReadLatency:  300 * time.Microsecond,
		StoreWriteLatency: 6 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	code, err := workload.CompileCVM(workload.ABSTransferFlatSrc)
	if err != nil {
		return nil, err
	}
	if err := cluster.DeployEverywhere(contractAddr, ownerAddr, core.VMCVM, code, true, 1); err != nil {
		return nil, err
	}
	client, err := core.NewClient(cluster.EnvelopePublicKey())
	if err != nil {
		return nil, err
	}
	txs, err := makeTxs(client, contractAddr, workload.ABSFlatInput, 48, 17)
	if err != nil {
		return nil, err
	}
	for _, tx := range txs {
		if err := cluster.Leader().SubmitTx(tx); err != nil {
			return nil, err
		}
	}
	if _, err := cluster.DrainAll(16, 30*time.Second); err != nil {
		return nil, err
	}
	leader := cluster.Leader()
	st := leader.Stats()
	fullBlocks := st.BlocksClosed

	// Empty blocks.
	emptyStart := time.Now()
	const emptyRounds = 5
	for i := 0; i < emptyRounds; i++ {
		if _, err := cluster.ProcessRound(10 * time.Second); err != nil {
			return nil, err
		}
	}
	emptyAvg := time.Since(emptyStart) / emptyRounds

	st2 := leader.Stats()
	metrics := &ProdMetrics{
		AvgEmptyBlock: emptyAvg,
	}
	if fullBlocks > 0 {
		metrics.AvgBlockExecution = st.ExecTime / time.Duration(fullBlocks)
	}
	if st2.BlocksClosed > 0 {
		metrics.AvgBlockWrite = st2.CommitTime / time.Duration(st2.BlocksClosed)
	}
	return metrics, nil
}
