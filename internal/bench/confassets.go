package bench

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"time"

	"confide/internal/chain"
	"confide/internal/confassets"
	"confide/internal/core"
	"confide/internal/node"
	"confide/internal/tee"
	"confide/internal/workload"
)

// ---------------------------------------------------------------------------
// Confidential assets: Pedersen/range-proof microbenchmarks plus end-to-end
// committed-token throughput through a 4-node cluster.
// ---------------------------------------------------------------------------

// ConfAssetsRow is one measurement of the confidential-assets subsystem.
// Speedup is relative to one-at-a-time range verification and only set on
// the batch-verify rows; Bytes is the fixed wire size of the object the
// operation produces, where it has one.
type ConfAssetsRow struct {
	Op        string  `json:"op"`
	Batch     int     `json:"batch,omitempty"`
	Iters     int     `json:"iters"`
	PerOpMs   float64 `json:"per_op_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup,omitempty"`
	Bytes     int     `json:"bytes,omitempty"`
}

// ConfAssetsConfig parameterizes the experiment.
type ConfAssetsConfig struct {
	// Proofs is the range-proof population; it must cover the largest
	// batch size (range proving dominates the experiment's runtime).
	Proofs  int
	Batches []int
	// TokenTxs per cluster measurement cell.
	TokenTxs int
}

// DefaultConfAssets returns laptop-scaled parameters.
func DefaultConfAssets() ConfAssetsConfig {
	return ConfAssetsConfig{Proofs: 64, Batches: []int{4, 16, 64}, TokenTxs: 24}
}

// ConfAssets measures the confassets primitives — commit, deterministic
// blinding derivation, 64-bit range prove/verify (single and batched),
// commitment-to-zero prove/verify — and then drives the committed-token
// contract through a cluster for end-to-end issue and transfer throughput.
func ConfAssets(cfg ConfAssetsConfig) ([]ConfAssetsRow, error) {
	if cfg.Proofs == 0 {
		cfg = DefaultConfAssets()
	}
	for _, b := range cfg.Batches {
		if b > cfg.Proofs {
			return nil, fmt.Errorf("bench: batch %d exceeds proof population %d", b, cfg.Proofs)
		}
	}
	var rows []ConfAssetsRow
	timed := func(op string, iters, batch, bytes int, f func()) ConfAssetsRow {
		start := time.Now()
		f()
		per := time.Since(start).Seconds() / float64(iters)
		return ConfAssetsRow{Op: op, Batch: batch, Iters: iters,
			PerOpMs: per * 1e3, OpsPerSec: 1 / per, Bytes: bytes}
	}

	key := []byte("bench-confassets-blinding-key")
	contract := []byte("bench-contract")

	// Deterministic blinding derivation + commit (the engine's hot path).
	const commitIters = 512
	blinds := make([]*big.Int, commitIters)
	rows = append(rows, timed("derive_blinding", commitIters, 0, 0, func() {
		for i := range blinds {
			blinds[i] = confassets.DeriveBlinding(key, contract, []byte("tx"), []byte("bal"), uint64(i))
		}
	}))
	comms := make([]confassets.Commitment, commitIters)
	rows = append(rows, timed("commit", commitIters, 0, confassets.PointSize, func() {
		for i := range comms {
			comms[i] = confassets.Commit(uint64(1000+i), blinds[i])
		}
	}))

	// 64-bit aggregate range proofs: prove, verify singly, verify batched.
	items := make([]confassets.BatchItem, cfg.Proofs)
	rows = append(rows, timed("range_prove", cfg.Proofs, 0, confassets.RangeProofSize, func() {
		for i := range items {
			r := confassets.DeriveBlinding(key, contract, []byte("rp"), []byte("bal"), uint64(i))
			nonce := make([]byte, 8)
			binary.BigEndian.PutUint64(nonce, uint64(i))
			items[i] = confassets.BatchItem{
				C:     confassets.Commit(uint64(3_000_000+i), r),
				Proof: confassets.ProveRange64(uint64(3_000_000+i), r, nonce),
			}
		}
	}))
	single := timed("range_verify", cfg.Proofs, 1, 0, func() {
		for _, it := range items {
			if !confassets.VerifyRange(it.C, it.Proof) {
				panic("bench: valid range proof rejected")
			}
		}
	})
	rows = append(rows, single)
	for _, b := range cfg.Batches {
		reps := cfg.Proofs / b
		row := timed("range_verify_batch", reps*b, b, 0, func() {
			for rep := 0; rep < reps; rep++ {
				if !confassets.BatchVerifyRange(items[rep*b : (rep+1)*b]) {
					panic("bench: valid batch rejected")
				}
			}
		})
		row.Speedup = single.PerOpMs / row.PerOpMs
		rows = append(rows, row)
	}

	// Conservation proofs (commitment-to-zero), as checked on every
	// confidential transfer.
	const zeroIters = 256
	zr := confassets.DeriveBlinding(key, contract, []byte("zp"), []byte("bal"), 0)
	zc := confassets.Commit(0, zr)
	zps := make([]*confassets.ZeroProof, zeroIters)
	rows = append(rows, timed("zero_prove", zeroIters, 0, 0, func() {
		for i := range zps {
			nonce := make([]byte, 8)
			binary.BigEndian.PutUint64(nonce, uint64(i))
			zps[i] = confassets.ProveZero(zr, nonce)
		}
	}))
	rows = append(rows, timed("zero_verify", zeroIters, 0, 0, func() {
		for _, p := range zps {
			if !confassets.VerifyZero(zc, p) {
				panic("bench: valid zero proof rejected")
			}
		}
	}))

	tokenRows, err := confTokenThroughput(cfg.TokenTxs)
	if err != nil {
		return nil, err
	}
	return append(rows, tokenRows...), nil
}

func beU64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// confTokenThroughput measures end-to-end cluster TPS of the committed
// token: capped issuance into fresh accounts, then transfers between two
// committed balances (two commitments plus a conservation proof per tx).
func confTokenThroughput(txCount int) ([]ConfAssetsRow, error) {
	if txCount == 0 {
		txCount = DefaultConfAssets().TokenTxs
	}
	cluster, err := node.NewCluster(node.ClusterOptions{
		Nodes: 4,
		Node: node.Config{
			BlockMaxTxs: 32,
			Parallelism: 1,
			EngineOpts:  core.AllOptimizations(),
		},
		Enclave: tee.Config{InjectDelays: true},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	code, err := workload.CompileCVM(workload.ConfAssetsTokenSrc)
	if err != nil {
		return nil, err
	}
	tokenAddr := chain.AddressFromBytes([]byte("bench-conftoken"))
	if err := cluster.DeployEverywhere(tokenAddr, ownerAddr, core.VMCVM, code, true, 1); err != nil {
		return nil, err
	}
	client, err := core.NewClient(cluster.EnvelopePublicKey())
	if err != nil {
		return nil, err
	}
	leader := cluster.Leader()

	runCell := func(op string, txs []*chain.Tx) (ConfAssetsRow, error) {
		for _, tx := range txs {
			if err := leader.SubmitTx(tx); err != nil {
				return ConfAssetsRow{}, err
			}
		}
		// As in clusterThroughput: pre-verification overlaps ordering in
		// production, so let it finish before the timed region.
		for attempt := 0; attempt < 100; attempt++ {
			total := 0
			for _, n := range cluster.Nodes {
				n.PreVerifyPending()
				total += n.VerifiedPoolLen()
			}
			if total >= len(txs)*len(cluster.Nodes) {
				break
			}
			time.Sleep(500 * time.Microsecond)
		}
		start := time.Now()
		if _, err := cluster.DrainAll(64, 60*time.Second); err != nil {
			return ConfAssetsRow{}, err
		}
		elapsed := time.Since(start).Seconds()
		for _, tx := range txs {
			rpt, ok := leader.Receipt(tx.Hash())
			if !ok || rpt.Status != chain.ReceiptOK {
				return ConfAssetsRow{}, fmt.Errorf("bench: %s tx failed: %s", op, rpt.Output)
			}
		}
		return ConfAssetsRow{Op: op, Iters: len(txs),
			PerOpMs: elapsed / float64(len(txs)) * 1e3, OpsPerSec: float64(len(txs)) / elapsed}, nil
	}

	build := func(method string, args func(i int) [][]byte) ([]*chain.Tx, error) {
		txs := make([]*chain.Tx, 0, txCount)
		for i := 0; i < txCount; i++ {
			tx, _, err := client.NewConfidentialTx(tokenAddr, method, args(i)...)
			if err != nil {
				return nil, err
			}
			txs = append(txs, tx)
		}
		return txs, nil
	}

	// Seed: one uncapped issuance funds the transfer sender.
	alice, bob := []byte("alice\x00\x00\x00"), []byte("bob\x00\x00\x00\x00\x00")
	seed, _, err := client.NewConfidentialTx(tokenAddr, "issue", alice, beU64(1<<40), beU64(0))
	if err != nil {
		return nil, err
	}
	if _, err := runCell("token_seed", []*chain.Tx{seed}); err != nil {
		return nil, err
	}

	issues, err := build("issue", func(i int) [][]byte {
		return [][]byte{beU64(uint64(0x100 + i)), beU64(7), beU64(0)}
	})
	if err != nil {
		return nil, err
	}
	issueRow, err := runCell("token_issue_tps", issues)
	if err != nil {
		return nil, err
	}

	transfers, err := build("transfer", func(i int) [][]byte {
		return [][]byte{alice, bob, beU64(1)}
	})
	if err != nil {
		return nil, err
	}
	transferRow, err := runCell("token_transfer_tps", transfers)
	if err != nil {
		return nil, err
	}
	return []ConfAssetsRow{issueRow, transferRow}, nil
}
