package bench

import (
	"math/rand"
	"testing"

	"confide/internal/core"
	"confide/internal/cvm"
	"confide/internal/cvm/compile"
	"confide/internal/workload"
)

func absSetup(b *testing.B) (*cvm.Program, *compile.Unit, [][]byte) {
	b.Helper()
	code, err := workload.CompileCVM(workload.ABSTransferFlatSrc)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := cvm.LoadProgram(code, cvm.BuildOptions{Fuse: true})
	if err != nil {
		b.Fatal(err)
	}
	unit, err := compile.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	inputs := make([][]byte, 64)
	for i := range inputs {
		method, args := workload.ABSFlatInput(rng)
		inputs[i] = core.EncodeInput(method, args...)
	}
	return prog, unit, inputs
}

func BenchmarkABSInterp(b *testing.B) {
	prog, _, inputs := absSetup(b)
	buf := make([]byte, 8*cvm.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := newVMEnv()
		env.input = inputs[i%len(inputs)]
		if _, err := cvm.NewVM(prog, env, cvm.Config{MemoryBuffer: buf}).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkABSCompiled(b *testing.B) {
	_, unit, inputs := absSetup(b)
	buf := make([]byte, 8*cvm.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := newVMEnv()
		env.input = inputs[i%len(inputs)]
		if _, _, err := unit.Run(env, cvm.Config{MemoryBuffer: buf}); err != nil {
			b.Fatal(err)
		}
	}
}
