// Package tee is a software simulation of the Trusted Execution Environment
// (Intel SGX) that CONFIDE runs on in production. It reproduces the
// *observable cost structure* of SGX rather than its microarchitecture:
//
//   - an explicit ecall/ocall boundary with per-transition cycle costs
//     (the paper cites 8,314–14,160 cycles per ocall, ≈3–4 µs at 3.7 GHz),
//   - copy-and-check marshalling cost for pointer arguments, skippable with
//     the EDL "user_check" flag,
//   - a bounded Enclave Page Cache (EPC) with encrypt-evict/decrypt-reload
//     page-swap costs when the budget is exceeded,
//   - enclave measurement and attestation rooted in a software
//     "manufacturer" key instead of hardware fuses,
//   - a lock-free-style exit-less call ring buffer for the monitor system.
//
// Costs are always accounted (visible in Stats); wall-clock injection of the
// same costs is optional, so unit tests run fast while benchmarks reproduce
// the paper's latency shapes.
package tee

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// CostModel holds the simulated hardware cost parameters. The defaults are
// calibrated to the numbers the paper cites for its Xeon E3-1240 v6 testbed.
type CostModel struct {
	// CPUGHz converts cycle charges into nanoseconds.
	CPUGHz float64
	// EcallCycles / OcallCycles are charged per boundary crossing. The
	// paper's ocall range is 8,314 (cache hit) to 14,160 (miss); we charge
	// the midpoint per call.
	EcallCycles uint64
	OcallCycles uint64
	// CopyCyclesPerByte models the proxy/bridge copy-and-check of [in]/[out]
	// EDL pointers. user_check transfers skip it.
	CopyCyclesPerByte float64
	// PageSwapCycles is charged per 4 KiB EPC page evicted or reloaded
	// (encrypt + copy + EWB bookkeeping).
	PageSwapCycles uint64
	// MEEFactor inflates in-enclave compute to model the Memory Encryption
	// Engine's bandwidth tax. Applied by callers that meter compute; the
	// boundary itself only charges transitions.
	MEEFactor float64
}

// DefaultCostModel returns the paper-calibrated cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		CPUGHz:            3.7,
		EcallCycles:       8600,  // sgx-perf: ecalls cost slightly less than ocalls
		OcallCycles:       11237, // midpoint of 8,314–14,160 (HotCalls)
		CopyCyclesPerByte: 0.35,
		PageSwapCycles:    40000, // ~11 µs per 4 KiB page encrypt+evict
		MEEFactor:         1.10,
	}
}

// PageSize is the EPC page granularity.
const PageSize = 4096

// Config configures one enclave instance.
type Config struct {
	// CodeIdentity feeds the enclave measurement; two enclaves built from
	// the same code identity have the same measurement.
	CodeIdentity string
	// EPCPages bounds resident enclave memory. 0 means the SGX v1 default
	// budget (93.5 MiB of usable EPC).
	EPCPages int
	// InjectDelays makes every charged cycle cost also consume wall-clock
	// time (spin wait), so end-to-end benchmarks feel the TEE tax.
	InjectDelays bool
	// Costs is the hardware cost model; zero value means DefaultCostModel.
	Costs CostModel
}

// DefaultEPCPages is the usable SGX v1 EPC budget (93.5 MiB) in pages.
const DefaultEPCPages = 23936 // 93.5 MiB / 4 KiB

// Stats aggregates the costs an enclave has accrued. All fields are
// monotonic counters safe for concurrent reads.
type Stats struct {
	Ecalls        uint64
	Ocalls        uint64
	BytesCopied   uint64
	PageSwaps     uint64
	ChargedCycles uint64
}

// Enclave is one simulated SGX enclave.
type Enclave struct {
	name        string
	measurement [32]byte
	cfg         Config
	platform    *Platform
	destroyed   atomic.Bool

	ecalls      atomic.Uint64
	ocalls      atomic.Uint64
	bytesCopied atomic.Uint64
	pageSwaps   atomic.Uint64
	cycles      atomic.Uint64

	mu            sync.Mutex
	residentPages int
	pool          *MemPool
}

// ErrDestroyed is returned by operations on a destroyed enclave.
var ErrDestroyed = errors.New("tee: enclave destroyed")

// Platform models one physical machine: it owns the local-attestation
// platform secret shared by enclaves on the same host, and knows the
// manufacturer root that signs remote-attestation reports.
type Platform struct {
	localKey [32]byte
	root     *RootOfTrust
	mu       sync.Mutex
	enclaves map[string]*Enclave
}

// NewPlatform creates a platform bound to the given manufacturer root.
func NewPlatform(root *RootOfTrust) *Platform {
	p := &Platform{root: root, enclaves: make(map[string]*Enclave)}
	copy(p.localKey[:], root.deriveLocalKey())
	return p
}

// CreateEnclave launches and measures an enclave on this platform.
func (p *Platform) CreateEnclave(name string, cfg Config) (*Enclave, error) {
	if cfg.CodeIdentity == "" {
		return nil, errors.New("tee: enclave needs a code identity")
	}
	if cfg.EPCPages == 0 {
		cfg.EPCPages = DefaultEPCPages
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCostModel()
	}
	e := &Enclave{
		name:        name,
		measurement: sha256.Sum256([]byte("enclave-code:" + cfg.CodeIdentity)),
		cfg:         cfg,
		platform:    p,
	}
	e.pool = NewMemPool(e)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.enclaves[name]; dup {
		return nil, fmt.Errorf("tee: enclave %q already exists on platform", name)
	}
	p.enclaves[name] = e
	return e, nil
}

// Name returns the enclave's instance name.
func (e *Enclave) Name() string { return e.name }

// Measurement returns the enclave's code measurement (MRENCLAVE analogue).
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// Stats returns a snapshot of accrued costs.
func (e *Enclave) Stats() Stats {
	return Stats{
		Ecalls:        e.ecalls.Load(),
		Ocalls:        e.ocalls.Load(),
		BytesCopied:   e.bytesCopied.Load(),
		PageSwaps:     e.pageSwaps.Load(),
		ChargedCycles: e.cycles.Load(),
	}
}

// Destroy tears the enclave down, releasing all EPC pages. The paper's KM
// Enclave is destroyed as soon as key provisioning finishes to return EPC
// to the contract-service enclave.
func (e *Enclave) Destroy() {
	e.destroyed.Store(true)
	e.mu.Lock()
	mEPCResident.Add(-int64(e.residentPages))
	e.residentPages = 0
	e.mu.Unlock()
	e.platform.mu.Lock()
	delete(e.platform.enclaves, e.name)
	e.platform.mu.Unlock()
}

// Destroyed reports whether Destroy has been called.
func (e *Enclave) Destroyed() bool { return e.destroyed.Load() }

// chargeCycles records (and optionally injects) a cycle cost.
func (e *Enclave) chargeCycles(c uint64) {
	e.cycles.Add(c)
	mCycles.Add(c)
	if e.cfg.InjectDelays && c > 0 {
		spin(time.Duration(float64(c) / e.cfg.Costs.CPUGHz))
	}
}

// spin burns wall-clock time without sleeping, to model sub-scheduler-qunatum
// hardware stalls at microsecond granularity.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// TransferFlag describes how a boundary call's buffer arguments are
// marshalled, mirroring the EDL [in]/[out]/user_check annotations.
type TransferFlag int

const (
	// CopyInOut marshals buffers with the generated proxy's copy-and-check.
	CopyInOut TransferFlag = iota
	// UserCheck skips marshalling; the caller guarantees memory safety.
	UserCheck
)

// Ecall enters the enclave, charging the transition and (unless flag is
// UserCheck) the copy-and-check cost for argBytes of pointer arguments, then
// runs fn "inside" the enclave.
func (e *Enclave) Ecall(argBytes int, flag TransferFlag, fn func() error) error {
	if e.destroyed.Load() {
		return ErrDestroyed
	}
	e.ecalls.Add(1)
	mEcalls.Inc()
	cost := e.cfg.Costs.EcallCycles
	if flag == CopyInOut && argBytes > 0 {
		e.bytesCopied.Add(uint64(argBytes))
		mBytesCopied.Add(uint64(argBytes))
		cost += uint64(float64(argBytes) * e.cfg.Costs.CopyCyclesPerByte)
	}
	e.chargeCycles(cost)
	return fn()
}

// Ocall leaves the enclave to run fn in the untrusted host, with the same
// cost accounting as Ecall.
func (e *Enclave) Ocall(argBytes int, flag TransferFlag, fn func() error) error {
	if e.destroyed.Load() {
		return ErrDestroyed
	}
	e.ocalls.Add(1)
	mOcalls.Inc()
	cost := e.cfg.Costs.OcallCycles
	if flag == CopyInOut && argBytes > 0 {
		e.bytesCopied.Add(uint64(argBytes))
		mBytesCopied.Add(uint64(argBytes))
		cost += uint64(float64(argBytes) * e.cfg.Costs.CopyCyclesPerByte)
	}
	e.chargeCycles(cost)
	return fn()
}

// Alloc reserves n bytes of enclave heap. If the resident set exceeds the
// EPC budget, victim pages are swapped out (encrypt + evict), charging
// PageSwapCycles each — the transparent but expensive paging the paper's
// memory-management optimizations exist to avoid.
func (e *Enclave) Alloc(n int) error {
	if e.destroyed.Load() {
		return ErrDestroyed
	}
	if n < 0 {
		return errors.New("tee: negative allocation")
	}
	pages := (n + PageSize - 1) / PageSize
	e.mu.Lock()
	before := e.residentPages
	e.residentPages += pages
	over := e.residentPages - e.cfg.EPCPages
	if over > 0 {
		// Victims are evicted to untrusted memory; the resident set is
		// clamped to the budget.
		e.residentPages = e.cfg.EPCPages
	}
	mEPCResident.Add(int64(e.residentPages - before))
	e.mu.Unlock()
	if over > 0 {
		e.pageSwaps.Add(uint64(over))
		mPageSwaps.Add(uint64(over))
		e.chargeCycles(uint64(over) * e.cfg.Costs.PageSwapCycles)
	}
	return nil
}

// Free releases n bytes of enclave heap.
func (e *Enclave) Free(n int) {
	pages := (n + PageSize - 1) / PageSize
	e.mu.Lock()
	before := e.residentPages
	e.residentPages -= pages
	if e.residentPages < 0 {
		e.residentPages = 0
	}
	mEPCResident.Add(int64(e.residentPages - before))
	e.mu.Unlock()
}

// ResidentPages reports the current EPC resident set.
func (e *Enclave) ResidentPages() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.residentPages
}

// Pool returns the enclave's internal memory pool (OPT1: reduced
// fragmentation and fewer EPC allocations).
func (e *Enclave) Pool() *MemPool { return e.pool }

// localMAC computes the platform-local attestation MAC over a message.
func (p *Platform) localMAC(msg []byte) [32]byte {
	mac := hmac.New(sha256.New, p.localKey[:])
	mac.Write(msg)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}
