package tee

import "confide/internal/metrics"

// Registry mirrors of the per-enclave atomic counters in Enclave. The
// per-instance Stats() API stays authoritative for tests that own one
// enclave; these process-wide series are what /metrics and chaos assertions
// consume. The resident-pages gauge aggregates across all live enclaves
// (deltas applied under each enclave's mu).
var (
	mEcalls      = metrics.Default().Counter("confide_tee_ecalls_total", "enclave entries (ECALL transitions)")
	mOcalls      = metrics.Default().Counter("confide_tee_ocalls_total", "enclave exits (OCALL transitions)")
	mBytesCopied = metrics.Default().Counter("confide_tee_boundary_copied_bytes_total", "bytes marshalled across the enclave boundary (copy-and-check)")
	mPageSwaps   = metrics.Default().Counter("confide_tee_page_swaps_total", "EPC pages encrypt-evicted past the budget")
	mCycles      = metrics.Default().Counter("confide_tee_charged_cycles_total", "simulated cycles charged for boundary crossings, copies and paging")
	mEPCResident = metrics.Default().Gauge("confide_tee_epc_resident_pages", "EPC pages resident across all live enclaves")
)
