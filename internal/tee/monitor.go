package tee

import (
	"sync/atomic"
)

// Monitor implements the improved enclave monitor system from §5.3: status
// messages are streamed out of the enclave through a simplified exit-less
// call into a ring buffer in untrusted memory, where a polling thread drains
// them asynchronously. This avoids the enclave-transition cost of an ocall
// per status line (the messages carry only error/status text, never
// application data).
type Monitor struct {
	buf     []atomic.Pointer[string]
	mask    uint64
	head    atomic.Uint64 // next write slot
	tail    atomic.Uint64 // next read slot
	dropped atomic.Uint64
	// ExitlessCycles is the (tiny) cost charged per push instead of a full
	// ocall transition.
	exitlessCycles uint64
	enclave        *Enclave
}

// NewMonitor creates a monitor ring with the given power-of-two capacity.
func NewMonitor(e *Enclave, capacity int) *Monitor {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Monitor{
		buf:            make([]atomic.Pointer[string], size),
		mask:           uint64(size - 1),
		exitlessCycles: 120,
		enclave:        e,
	}
}

// Push records a status message from inside the enclave. It never blocks:
// if the ring is full the message is dropped and counted, matching the
// one-way, best-effort stream semantics of the production monitor.
func (m *Monitor) Push(msg string) {
	if m.enclave != nil {
		m.enclave.chargeCycles(m.exitlessCycles)
	}
	for {
		head := m.head.Load()
		tail := m.tail.Load()
		if head-tail >= uint64(len(m.buf)) {
			m.dropped.Add(1)
			return
		}
		if m.head.CompareAndSwap(head, head+1) {
			m.buf[head&m.mask].Store(&msg)
			return
		}
	}
}

// Poll drains up to max messages, as the untrusted polling thread does.
func (m *Monitor) Poll(max int) []string {
	var out []string
	for len(out) < max {
		tail := m.tail.Load()
		if tail == m.head.Load() {
			break
		}
		p := m.buf[tail&m.mask].Swap(nil)
		if p == nil {
			// Writer reserved the slot but hasn't stored yet; stop early.
			break
		}
		if !m.tail.CompareAndSwap(tail, tail+1) {
			// Concurrent poller took it; put nothing back, just retry.
			continue
		}
		out = append(out, *p)
	}
	return out
}

// Dropped reports how many messages were lost to back-pressure.
func (m *Monitor) Dropped() uint64 { return m.dropped.Load() }
