package tee

import (
	"errors"
	"sync"
	"testing"
)

func newTestPlatform(t *testing.T) *Platform {
	t.Helper()
	root, err := NewRootOfTrust()
	if err != nil {
		t.Fatal(err)
	}
	return NewPlatform(root)
}

func TestCreateEnclaveDefaults(t *testing.T) {
	p := newTestPlatform(t)
	e, err := p.CreateEnclave("cs", Config{CodeIdentity: "confide-cs-v1"})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.EPCPages != DefaultEPCPages {
		t.Errorf("EPCPages = %d, want default %d", e.cfg.EPCPages, DefaultEPCPages)
	}
	if e.cfg.Costs.CPUGHz == 0 {
		t.Error("cost model not defaulted")
	}
}

func TestCreateEnclaveRequiresIdentity(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.CreateEnclave("x", Config{}); err == nil {
		t.Error("empty code identity should be rejected")
	}
}

func TestCreateEnclaveDuplicateName(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.CreateEnclave("km", Config{CodeIdentity: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateEnclave("km", Config{CodeIdentity: "b"}); err == nil {
		t.Error("duplicate enclave name should be rejected")
	}
}

func TestMeasurementDependsOnlyOnCode(t *testing.T) {
	p := newTestPlatform(t)
	a, _ := p.CreateEnclave("a", Config{CodeIdentity: "confide-cs-v1"})
	b, _ := p.CreateEnclave("b", Config{CodeIdentity: "confide-cs-v1"})
	c, _ := p.CreateEnclave("c", Config{CodeIdentity: "confide-cs-v2"})
	if a.Measurement() != b.Measurement() {
		t.Error("same code identity must measure identically")
	}
	if a.Measurement() == c.Measurement() {
		t.Error("different code identity must measure differently")
	}
}

func TestBoundaryCostAccounting(t *testing.T) {
	p := newTestPlatform(t)
	e, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs"})
	if err := e.Ecall(1000, CopyInOut, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := e.Ocall(0, UserCheck, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Ecalls != 1 || st.Ocalls != 1 {
		t.Errorf("transitions = %d/%d, want 1/1", st.Ecalls, st.Ocalls)
	}
	if st.BytesCopied != 1000 {
		t.Errorf("bytes copied = %d, want 1000", st.BytesCopied)
	}
	base := e.cfg.Costs.EcallCycles + e.cfg.Costs.OcallCycles
	if st.ChargedCycles <= base {
		t.Errorf("cycles = %d, want > transition base %d (copy cost missing)", st.ChargedCycles, base)
	}
}

func TestUserCheckSkipsCopyCost(t *testing.T) {
	p := newTestPlatform(t)
	copied, _ := p.CreateEnclave("copied", Config{CodeIdentity: "cs"})
	zeroCopy, _ := p.CreateEnclave("zerocopy", Config{CodeIdentity: "cs"})
	const big = 1 << 20
	copied.Ocall(big, CopyInOut, func() error { return nil })
	zeroCopy.Ocall(big, UserCheck, func() error { return nil })
	if c, z := copied.Stats().ChargedCycles, zeroCopy.Stats().ChargedCycles; c <= z {
		t.Errorf("copy-in-out (%d cycles) should cost more than user_check (%d)", c, z)
	}
	if zeroCopy.Stats().BytesCopied != 0 {
		t.Error("user_check must not count copied bytes")
	}
}

func TestBoundaryPropagatesError(t *testing.T) {
	p := newTestPlatform(t)
	e, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs"})
	boom := errors.New("boom")
	if err := e.Ecall(0, UserCheck, func() error { return boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestEPCPagingChargesSwaps(t *testing.T) {
	p := newTestPlatform(t)
	e, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs", EPCPages: 10})
	if err := e.Alloc(8 * PageSize); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().PageSwaps; got != 0 {
		t.Fatalf("swaps before exceeding budget = %d, want 0", got)
	}
	if err := e.Alloc(5 * PageSize); err != nil { // 13 pages > budget 10
		t.Fatal(err)
	}
	if got := e.Stats().PageSwaps; got != 3 {
		t.Errorf("swaps = %d, want 3", got)
	}
	if e.ResidentPages() != 10 {
		t.Errorf("resident = %d, want clamped to 10", e.ResidentPages())
	}
	e.Free(4 * PageSize)
	if e.ResidentPages() != 6 {
		t.Errorf("resident after free = %d, want 6", e.ResidentPages())
	}
}

func TestDestroyReleasesAndBlocks(t *testing.T) {
	p := newTestPlatform(t)
	e, _ := p.CreateEnclave("km", Config{CodeIdentity: "km"})
	e.Alloc(PageSize)
	e.Destroy()
	if e.ResidentPages() != 0 {
		t.Error("destroy must release EPC")
	}
	if err := e.Ecall(0, UserCheck, func() error { return nil }); !errors.Is(err, ErrDestroyed) {
		t.Errorf("ecall after destroy: err = %v, want ErrDestroyed", err)
	}
	if err := e.Alloc(PageSize); !errors.Is(err, ErrDestroyed) {
		t.Errorf("alloc after destroy: err = %v, want ErrDestroyed", err)
	}
	// Name becomes available again (service-upgrade flow).
	if _, err := p.CreateEnclave("km", Config{CodeIdentity: "km-v2"}); err != nil {
		t.Errorf("recreate after destroy: %v", err)
	}
}

func TestRemoteAttestation(t *testing.T) {
	root, _ := NewRootOfTrust()
	p := NewPlatform(root)
	e, _ := p.CreateEnclave("cs", Config{CodeIdentity: "confide-cs-v1"})
	fingerprint := []byte("pk_tx-fingerprint-32-bytes-long!")
	rpt, err := e.RemoteAttest(fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReport(root.Verifier(), rpt, e.Measurement()); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
	// The report data must round-trip (clients read pk_tx fingerprint out).
	if string(rpt.ReportData[:len(fingerprint)]) != string(fingerprint) {
		t.Error("report data corrupted")
	}
}

func TestRemoteAttestationRejectsForgery(t *testing.T) {
	root, _ := NewRootOfTrust()
	otherRoot, _ := NewRootOfTrust()
	p := NewPlatform(root)
	e, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs"})
	rpt, _ := e.RemoteAttest(nil)

	if err := VerifyReport(otherRoot.Verifier(), rpt, e.Measurement()); err == nil {
		t.Error("report verified under the wrong root")
	}
	tampered := rpt
	tampered.ReportData[0] ^= 1
	if err := VerifyReport(root.Verifier(), tampered, e.Measurement()); err == nil {
		t.Error("tampered report data verified")
	}
	var wrongMeasurement [32]byte
	wrongMeasurement[0] = 0xee
	if err := VerifyReport(root.Verifier(), rpt, wrongMeasurement); err == nil {
		t.Error("report verified against wrong expected measurement")
	}
}

func TestRemoteAttestLimitsReportData(t *testing.T) {
	p := newTestPlatform(t)
	e, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs"})
	if _, err := e.RemoteAttest(make([]byte, 65)); err == nil {
		t.Error("oversized report data should be rejected")
	}
}

func TestLocalAttestation(t *testing.T) {
	p := newTestPlatform(t)
	km, _ := p.CreateEnclave("km", Config{CodeIdentity: "km"})
	cs, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs"})
	la, err := cs.LocalAttest(km)
	if err != nil {
		t.Fatal(err)
	}
	if err := km.VerifyLocal(la); err != nil {
		t.Errorf("valid local attestation rejected: %v", err)
	}
	// Wrong target.
	other, _ := p.CreateEnclave("other", Config{CodeIdentity: "other"})
	if err := other.VerifyLocal(la); err == nil {
		t.Error("attestation for km verified by other")
	}
	// Tampered MAC.
	la.MAC[0] ^= 1
	if err := km.VerifyLocal(la); err == nil {
		t.Error("tampered local attestation verified")
	}
}

func TestLocalAttestationCrossPlatformFails(t *testing.T) {
	root, _ := NewRootOfTrust()
	p1, p2 := NewPlatform(root), NewPlatform(root)
	a, _ := p1.CreateEnclave("a", Config{CodeIdentity: "a"})
	b, _ := p2.CreateEnclave("b", Config{CodeIdentity: "b"})
	if _, err := a.LocalAttest(b); err == nil {
		t.Error("cross-platform local attestation should fail")
	}
	if _, err := a.SecureChannelKey(b); err == nil {
		t.Error("cross-platform channel should fail")
	}
}

func TestSecureChannelSymmetric(t *testing.T) {
	p := newTestPlatform(t)
	km, _ := p.CreateEnclave("km", Config{CodeIdentity: "km"})
	cs, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs"})
	k1, err := km.SecureChannelKey(cs)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := cs.SecureChannelKey(km)
	if err != nil {
		t.Fatal(err)
	}
	if string(k1) != string(k2) {
		t.Error("channel key must be the same on both ends")
	}
}

func TestMemPoolReuse(t *testing.T) {
	p := newTestPlatform(t)
	e, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs", EPCPages: 1 << 20})
	pool := e.Pool()
	buf, err := pool.Get(1000)
	if err != nil {
		t.Fatal(err)
	}
	if cap(buf) < 1000 {
		t.Fatalf("cap = %d, want >= 1000", cap(buf))
	}
	pool.Put(buf)
	buf2, _ := pool.Get(900)
	pool.Put(buf2)
	if pool.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5 (1 hit of 2 gets)", pool.HitRate())
	}
}

func TestMemPoolOversized(t *testing.T) {
	p := newTestPlatform(t)
	e, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs", EPCPages: 1 << 20})
	pool := e.Pool()
	buf, err := pool.Get(8 << 20) // beyond the largest class
	if err != nil {
		t.Fatal(err)
	}
	if cap(buf) < 8<<20 {
		t.Fatal("oversized get did not allocate enough")
	}
	resident := e.ResidentPages()
	pool.Put(buf)
	if e.ResidentPages() >= resident {
		t.Error("oversized put should free enclave memory")
	}
}

func TestMonitorStreamAndDrops(t *testing.T) {
	p := newTestPlatform(t)
	e, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs"})
	m := NewMonitor(e, 4)
	for i := 0; i < 6; i++ {
		m.Push("status")
	}
	if m.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", m.Dropped())
	}
	got := m.Poll(10)
	if len(got) != 4 {
		t.Errorf("polled %d messages, want 4", len(got))
	}
	// Ring space is reclaimed after polling.
	m.Push("again")
	if got := m.Poll(10); len(got) != 1 || got[0] != "again" {
		t.Errorf("poll after drain = %v", got)
	}
}

func TestMonitorConcurrentPushers(t *testing.T) {
	p := newTestPlatform(t)
	e, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs"})
	m := NewMonitor(e, 1024)
	var wg sync.WaitGroup
	const pushers, each = 8, 100
	for i := 0; i < pushers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				m.Push("msg")
			}
		}()
	}
	wg.Wait()
	total := 0
	for {
		batch := m.Poll(64)
		if len(batch) == 0 {
			break
		}
		total += len(batch)
	}
	if total+int(m.Dropped()) != pushers*each {
		t.Errorf("polled %d + dropped %d != pushed %d", total, m.Dropped(), pushers*each)
	}
}

func TestMonitorCheaperThanOcalls(t *testing.T) {
	p := newTestPlatform(t)
	viaOcall, _ := p.CreateEnclave("o", Config{CodeIdentity: "cs"})
	viaRing, _ := p.CreateEnclave("r", Config{CodeIdentity: "cs"})
	m := NewMonitor(viaRing, 1<<12)
	const n = 1000
	for i := 0; i < n; i++ {
		viaOcall.Ocall(32, CopyInOut, func() error { return nil })
		m.Push("status line")
	}
	if o, r := viaOcall.Stats().ChargedCycles, viaRing.Stats().ChargedCycles; r*10 > o {
		t.Errorf("exit-less monitor (%d cycles) should be >10x cheaper than ocalls (%d)", r, o)
	}
}

func TestInjectDelaysConsumesWallClock(t *testing.T) {
	p := newTestPlatform(t)
	e, _ := p.CreateEnclave("cs", Config{CodeIdentity: "cs", InjectDelays: true})
	start := nowForTest()
	for i := 0; i < 100; i++ {
		e.Ocall(0, UserCheck, func() error { return nil })
	}
	elapsed := nowForTest() - start
	// 100 ocalls * ~3 µs each ≈ 300 µs minimum.
	if elapsed < 200_000 {
		t.Errorf("elapsed = %d ns, want >= 200 µs of injected delay", elapsed)
	}
}
