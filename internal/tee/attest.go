package tee

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// RootOfTrust stands in for the TEE manufacturer's attestation
// infrastructure (Intel's EPID/IAS): it signs enclave reports, and
// verifiers trust its public key. In production this root lives in CPU
// fuses; here it is a software ECDSA key, which preserves the protocol
// structure (measure → report → sign → verify) exactly.
type RootOfTrust struct {
	key *ecdsa.PrivateKey
}

// NewRootOfTrust creates a fresh manufacturer root.
func NewRootOfTrust() (*RootOfTrust, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tee: root of trust: %w", err)
	}
	return &RootOfTrust{key: key}, nil
}

// Verifier returns the value remote parties use to verify reports.
func (r *RootOfTrust) Verifier() *ecdsa.PublicKey { return &r.key.PublicKey }

func (r *RootOfTrust) deriveLocalKey() []byte {
	// Each platform derives its local-attestation secret from the root; on
	// real hardware this is a per-CPU fuse key.
	mac := hmac.New(sha256.New, r.key.D.Bytes())
	mac.Write([]byte("tee/platform-local-key"))
	return mac.Sum(nil)
}

// Report is a remote attestation report: it binds an enclave measurement to
// 64 bytes of report data (CONFIDE locks the pk_tx fingerprint in here) under
// the manufacturer signature.
type Report struct {
	Measurement [32]byte
	ReportData  [64]byte
	Signature   []byte
}

// RemoteAttest produces a signed report for the enclave with the given
// report data. In CONFIDE the report data carries the fingerprint of the
// envelope public key pk_tx, immunizing clients against man-in-the-middle
// key substitution.
func (e *Enclave) RemoteAttest(reportData []byte) (Report, error) {
	if e.destroyed.Load() {
		return Report{}, ErrDestroyed
	}
	if len(reportData) > 64 {
		return Report{}, errors.New("tee: report data exceeds 64 bytes")
	}
	var rpt Report
	rpt.Measurement = e.measurement
	copy(rpt.ReportData[:], reportData)
	digest := reportDigest(rpt.Measurement, rpt.ReportData)
	sig, err := ecdsa.SignASN1(rand.Reader, e.platform.root.key, digest[:])
	if err != nil {
		return Report{}, fmt.Errorf("tee: sign report: %w", err)
	}
	rpt.Signature = sig
	return rpt, nil
}

func reportDigest(measurement [32]byte, data [64]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("tee/report/v1"))
	h.Write(measurement[:])
	h.Write(data[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// ErrBadReport is returned when report verification fails.
var ErrBadReport = errors.New("tee: attestation report verification failed")

// VerifyReport checks a report signature against the manufacturer verifier
// and, if expectedMeasurement is non-zero, that the measurement matches.
func VerifyReport(verifier *ecdsa.PublicKey, rpt Report, expectedMeasurement [32]byte) error {
	digest := reportDigest(rpt.Measurement, rpt.ReportData)
	if !ecdsa.VerifyASN1(verifier, digest[:], rpt.Signature) {
		return ErrBadReport
	}
	var zero [32]byte
	if expectedMeasurement != zero && rpt.Measurement != expectedMeasurement {
		return ErrBadReport
	}
	return nil
}

// LocalAttestation is the proof one enclave presents to another on the same
// platform (SGX EREPORT/local attestation analogue).
type LocalAttestation struct {
	Source [32]byte
	Target [32]byte
	MAC    [32]byte
}

// LocalAttest produces a local attestation from enclave e to target. Only
// enclaves on the same platform share the key needed to verify it.
func (e *Enclave) LocalAttest(target *Enclave) (LocalAttestation, error) {
	if e.destroyed.Load() || target.destroyed.Load() {
		return LocalAttestation{}, ErrDestroyed
	}
	if e.platform != target.platform {
		return LocalAttestation{}, errors.New("tee: local attestation requires same platform")
	}
	la := LocalAttestation{Source: e.measurement, Target: target.measurement}
	la.MAC = e.platform.localMAC(localAttestMsg(la.Source, la.Target))
	return la, nil
}

// VerifyLocal checks that a local attestation was produced on this enclave's
// platform and targets this enclave.
func (e *Enclave) VerifyLocal(la LocalAttestation) error {
	if e.destroyed.Load() {
		return ErrDestroyed
	}
	if la.Target != e.measurement {
		return errors.New("tee: local attestation targets a different enclave")
	}
	want := e.platform.localMAC(localAttestMsg(la.Source, la.Target))
	if !hmac.Equal(want[:], la.MAC[:]) {
		return errors.New("tee: local attestation MAC mismatch")
	}
	return nil
}

func localAttestMsg(src, dst [32]byte) []byte {
	msg := make([]byte, 0, 80)
	msg = append(msg, []byte("tee/local-attest")...)
	msg = append(msg, src[:]...)
	msg = append(msg, dst[:]...)
	return msg
}

// SecureChannelKey derives a shared key between two mutually locally
// attested enclaves on the same platform. The CS Enclave uses this channel
// to receive secret keys provisioned by the KM Enclave.
func (e *Enclave) SecureChannelKey(peer *Enclave) ([]byte, error) {
	if e.platform != peer.platform {
		return nil, errors.New("tee: secure channel requires same platform")
	}
	// Order the measurements so both sides derive the same key.
	a, b := e.measurement, peer.measurement
	if bytes.Compare(a[:], b[:]) > 0 {
		a, b = b, a
	}
	mac := e.platform.localMAC(append(append([]byte("tee/channel"), a[:]...), b[:]...))
	return mac[:], nil
}
