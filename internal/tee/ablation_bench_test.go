package tee

import (
	"fmt"
	"testing"
)

// Benchmarks for the TEE engineering guidance of §5.3. Each pair quantifies
// one of the paper's optimizations against its naive alternative; delay
// injection is ON so the simulated transition costs consume wall-clock time
// exactly as SGX's do.

func ablationEnclave(b *testing.B, pages int) *Enclave {
	b.Helper()
	root, err := NewRootOfTrust()
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{CodeIdentity: "ablation", InjectDelays: true}
	if pages > 0 {
		cfg.EPCPages = pages
	}
	e, err := NewPlatform(root).CreateEnclave("cs", cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkOcallBatching: one ocall fetching a flattened 4 KB structure vs
// sixteen ocalls each fetching one 256 B sub-field. The paper's guidance:
// balance the copy cost of one large transfer against the ~10k-cycle
// transition cost of each small one.
func BenchmarkOcallBatching(b *testing.B) {
	b.Run("one-4KB-ocall", func(b *testing.B) {
		e := ablationEnclave(b, 0)
		for i := 0; i < b.N; i++ {
			e.Ocall(4096, CopyInOut, func() error { return nil })
		}
	})
	b.Run("sixteen-256B-ocalls", func(b *testing.B) {
		e := ablationEnclave(b, 0)
		for i := 0; i < b.N; i++ {
			for j := 0; j < 16; j++ {
				e.Ocall(256, CopyInOut, func() error { return nil })
			}
		}
	})
}

// BenchmarkUserCheck: the EDL user_check flag skips the proxy's
// copy-and-check of pointer arguments — negligible for small buffers,
// significant for large ones.
func BenchmarkUserCheck(b *testing.B) {
	for _, size := range []int{256, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("copy-%dB", size), func(b *testing.B) {
			e := ablationEnclave(b, 0)
			for i := 0; i < b.N; i++ {
				e.Ocall(size, CopyInOut, func() error { return nil })
			}
		})
		b.Run(fmt.Sprintf("user_check-%dB", size), func(b *testing.B) {
			e := ablationEnclave(b, 0)
			for i := 0; i < b.N; i++ {
				e.Ocall(size, UserCheck, func() error { return nil })
			}
		})
	}
}

// BenchmarkEPCPaging: allocations inside vs beyond the EPC budget. Beyond
// it, every page costs an encrypt-evict cycle — the transparent
// degradation the paper's memory-management optimizations avoid.
func BenchmarkEPCPaging(b *testing.B) {
	const working = 64 // pages per allocation burst
	b.Run("within-budget", func(b *testing.B) {
		e := ablationEnclave(b, 1<<20)
		for i := 0; i < b.N; i++ {
			e.Alloc(working * PageSize)
			e.Free(working * PageSize)
		}
	})
	b.Run("thrashing", func(b *testing.B) {
		e := ablationEnclave(b, working/2) // budget half the working set
		for i := 0; i < b.N; i++ {
			e.Alloc(working * PageSize)
			e.Free(working * PageSize)
		}
	})
}

// BenchmarkMonitorVsOcall: the exit-less status ring against a per-line
// ocall — the §5.3 monitor design.
func BenchmarkMonitorVsOcall(b *testing.B) {
	b.Run("status-via-ocall", func(b *testing.B) {
		e := ablationEnclave(b, 0)
		for i := 0; i < b.N; i++ {
			e.Ocall(64, CopyInOut, func() error { return nil })
		}
	})
	b.Run("status-via-exitless-ring", func(b *testing.B) {
		e := ablationEnclave(b, 0)
		m := NewMonitor(e, 1<<16)
		drained := 0
		for i := 0; i < b.N; i++ {
			m.Push("status line")
			if i%1024 == 0 {
				drained += len(m.Poll(2048))
			}
		}
		_ = drained
	})
}

// BenchmarkMemPool: pooled vs direct enclave allocations at the VM
// linear-memory size.
func BenchmarkMemPool(b *testing.B) {
	const bufSize = 512 << 10
	b.Run("pooled", func(b *testing.B) {
		e := ablationEnclave(b, 1<<20)
		pool := e.Pool()
		for i := 0; i < b.N; i++ {
			buf, err := pool.Get(bufSize)
			if err != nil {
				b.Fatal(err)
			}
			pool.Put(buf)
		}
	})
	b.Run("direct-alloc", func(b *testing.B) {
		e := ablationEnclave(b, 1<<20)
		for i := 0; i < b.N; i++ {
			if err := e.Alloc(bufSize); err != nil {
				b.Fatal(err)
			}
			_ = make([]byte, bufSize)
			e.Free(bufSize)
		}
	})
}
