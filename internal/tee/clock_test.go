package tee

import "time"

// nowForTest returns a monotonic nanosecond timestamp for delay assertions.
func nowForTest() int64 { return time.Now().UnixNano() }
