package tee

import "sync"

// MemPool is the enclave-internal memory pool from §5.3: it recycles
// fixed-class buffers to reduce fragmentation and avoid round trips to the
// (expensive, EPC-paging) enclave allocator. Buffers are grouped in
// power-of-two size classes from 256 B to 4 MiB.
type MemPool struct {
	enclave *Enclave
	mu      sync.Mutex
	classes [poolClasses][][]byte

	hits   uint64
	misses uint64
}

const (
	poolMinShift = 8  // 256 B
	poolMaxShift = 22 // 4 MiB
	poolClasses  = poolMaxShift - poolMinShift + 1
)

// NewMemPool creates a pool that charges allocations against the enclave's
// EPC budget.
func NewMemPool(e *Enclave) *MemPool {
	return &MemPool{enclave: e}
}

func classFor(n int) int {
	c := 0
	size := 1 << poolMinShift
	for size < n && c < poolClasses-1 {
		size <<= 1
		c++
	}
	return c
}

func classSize(c int) int { return 1 << (poolMinShift + c) }

// Get returns a zero-length buffer with capacity ≥ n. Reused buffers cost
// nothing; fresh ones charge the enclave allocator.
func (p *MemPool) Get(n int) ([]byte, error) {
	if n > classSize(poolClasses-1) {
		// Oversized: bypass the pool, charge directly.
		if err := p.enclave.Alloc(n); err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.misses++
		p.mu.Unlock()
		return make([]byte, 0, n), nil
	}
	c := classFor(n)
	p.mu.Lock()
	if bufs := p.classes[c]; len(bufs) > 0 {
		buf := bufs[len(bufs)-1]
		p.classes[c] = bufs[:len(bufs)-1]
		p.hits++
		p.mu.Unlock()
		return buf[:0], nil
	}
	p.misses++
	p.mu.Unlock()
	if err := p.enclave.Alloc(classSize(c)); err != nil {
		return nil, err
	}
	return make([]byte, 0, classSize(c)), nil
}

// Put returns a buffer to the pool for reuse. Oversized buffers are released
// to the enclave allocator instead.
func (p *MemPool) Put(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	if cap(buf) > classSize(poolClasses-1) {
		p.enclave.Free(cap(buf))
		return
	}
	c := classFor(cap(buf))
	if classSize(c) > cap(buf) {
		// Undersized for its class (allocated elsewhere); place it a class
		// down so Get's capacity guarantee holds.
		if c == 0 {
			p.enclave.Free(cap(buf))
			return
		}
		c--
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	const maxPerClass = 64
	if len(p.classes[c]) < maxPerClass {
		p.classes[c] = append(p.classes[c], buf)
	} else {
		p.enclave.Free(cap(buf))
	}
}

// HitRate reports the fraction of Gets served from the pool.
func (p *MemPool) HitRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}
