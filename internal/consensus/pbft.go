// Package consensus implements the ordering phase of the platform: a
// PBFT-style three-phase protocol (pre-prepare / prepare / commit) over the
// simulated p2p network. Public and confidential transactions are ordered
// together here — ordering never needs to see inside an envelope, which is
// what lets CONFIDE stay loosely coupled to the platform.
//
// The implementation targets the paper's deployment envelope: a fixed
// replica set, tolerance of f = (n-1)/3 fail-stop replicas, and pipelined
// block proposals, on lossy public-network links. Liveness under faults is
// automatic (see liveness.go): per-instance progress timers vote view
// changes on leader silence, unacknowledged protocol messages retransmit
// with exponential backoff, replicas that missed a pre-prepare fetch it by
// sequence from peers, and replicas that fall behind (crash, partition)
// catch up from peers' committed logs. View change implements leader
// crash-failover: when 2f+1 replicas vote for a higher view, everyone
// adopts it and the round-robin successor leads. Each vote carries the
// voter's prepared certificates (sequence, prepare-view, payload); the new
// leader merges the quorum's certificates — highest prepare-view wins per
// sequence — re-proposes them at their original sequences, and fills any
// certificate-free gap below its pipeline tip with a no-op, so pipelined
// commits that outran an abandoned sequence can still deliver. Carriers
// refuse conflicting digests, which keeps a payload that may have
// committed somewhere from being replaced under fail-stop faults. The
// certificates are unauthenticated (fail-stop model); Byzantine-proof
// signed new-view certificates remain out of scope.
package consensus

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"confide/internal/chain"
	"confide/internal/p2p"
)

// Topics used on the wire.
const (
	topicPrePrepare = "pbft/pre-prepare"
	topicPrepare    = "pbft/prepare"
	topicCommit     = "pbft/commit"
	topicViewChange = "pbft/view-change"
	topicStatus     = "pbft/status"
	topicFetch      = "pbft/fetch"
	topicFetchResp  = "pbft/fetch-resp"
)

// Message-type tags carried by every wire message, so payloads are
// self-describing and a message replayed on the wrong topic is rejected.
const (
	msgPrePrepare = 1 + iota
	msgPrepare
	msgCommit
	msgViewChange
	msgStatus         // heartbeat: view + delivered count
	msgFetch          // request instances/committed payloads from seq
	msgFetchResp      // in-flight payload replay (pre-prepare contents)
	msgFetchCommitted // committed payload from the responder's log
)

// Options tunes a replica's liveness machinery. The zero value selects
// production-shaped defaults; tests and the chaos harness shrink them.
type Options struct {
	// ViewTimeout is how long pending work may stall (no delivery) before
	// this replica votes a view change. Default 1s.
	ViewTimeout time.Duration
	// RetransmitInterval is the initial resend period for unacknowledged
	// messages; it backs off exponentially per instance. Default 50ms.
	RetransmitInterval time.Duration
	// RetransmitMax caps the backoff. Default 500ms.
	RetransmitMax time.Duration
	// HeartbeatInterval paces the status broadcast that drives view and
	// delivery catch-up. Default 100ms.
	HeartbeatInterval time.Duration
	// CommittedLog bounds how many recently delivered payloads are retained
	// to serve catch-up fetches. Default 512.
	CommittedLog int
	// WorkPending, when set, reports whether the application has work an
	// honest leader should be ordering (e.g. non-empty transaction pools).
	// It gates the leader-silence timer: without it only in-flight
	// instances arm the timer.
	WorkPending func() bool
}

func (o Options) withDefaults() Options {
	if o.ViewTimeout == 0 {
		o.ViewTimeout = time.Second
	}
	if o.RetransmitInterval == 0 {
		o.RetransmitInterval = 50 * time.Millisecond
	}
	if o.RetransmitMax == 0 {
		o.RetransmitMax = 500 * time.Millisecond
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 100 * time.Millisecond
	}
	if o.CommittedLog == 0 {
		o.CommittedLog = 512
	}
	return o
}

// CommitFn is called exactly once per sequence number, in order, with the
// committed payload.
type CommitFn func(seq uint64, payload []byte)

// Replica is one PBFT participant.
type Replica struct {
	id       p2p.NodeID
	n        int
	f        int
	endpoint *p2p.Endpoint
	onCommit CommitFn
	opts     Options

	mu        sync.Mutex
	view      uint64
	nextSeq   uint64 // next sequence the leader may propose
	delivered uint64 // next sequence to deliver
	instances map[uint64]*instance
	pending   map[uint64][]byte // committed out of order, awaiting delivery
	// viewVotes[v] holds, per replica that voted to move to view v, the
	// prepared certificates shipped inside its vote.
	viewVotes map[uint64]map[p2p.NodeID][]vcEntry
	votedFor  uint64 // highest view this replica has voted for
	// certView is the highest view this replica adopted with a full 2f+1
	// vote quorum in hand (vs. jumping forward on heartbeat evidence). Only
	// a leader whose view matches certView may gap-fill with no-ops: the
	// quorum's certificates prove the gap holds no prepared payload.
	certView uint64
	closed   bool

	// Liveness state (see liveness.go).
	committedLog  map[uint64][]byte // recent deliveries, serves catch-up
	logMin        uint64            // lowest retained committedLog seq
	carry         map[uint64]carryEntry
	peerViews     map[p2p.NodeID]uint64 // highest view seen per peer
	peerDelivered map[p2p.NodeID]uint64 // highest delivered seen per peer
	lastProgress  time.Time
	lastHeartbeat time.Time
	vcLastSent    time.Time
	vcInterval    time.Duration
	fetchLastSent time.Time
	fetchInterval time.Duration
	viewChanges   uint64
	deliveredCh   chan struct{} // closed+replaced on every delivery
	stop          chan struct{}
}

// carryEntry is a locally prepared (commit-voted) payload carried across a
// view change: the new leader re-proposes it at the same sequence, and
// carriers refuse conflicting digests for that sequence. view records the
// view in which the payload prepared, so merges keep the newest.
type carryEntry struct {
	digest  [32]byte
	view    uint64
	payload []byte
}

// vcEntry is one prepared certificate inside a view-change vote.
type vcEntry struct {
	seq     uint64
	view    uint64 // view in which the payload prepared
	payload []byte
}

// instance tracks one sequence number's progress.
type instance struct {
	digest     [32]byte
	payload    []byte
	havePre    bool
	prepares   map[p2p.NodeID][32]byte
	commits    map[p2p.NodeID][32]byte
	sentCommit bool
	committed  bool
	// Retransmission pacing.
	lastSent time.Time
	resendIn time.Duration
	// prepares/commits double as the early-vote buffer: votes that arrive
	// before the pre-prepare (the network reorders freely) sit here.
}

// ErrNotLeader is returned when a non-leader proposes.
var ErrNotLeader = errors.New("consensus: not the leader for this view")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("consensus: replica closed")

// NewReplica wires a replica to its endpoint with default Options. n is the
// total replica count; ids must be 0..n-1. onCommit receives committed
// payloads in sequence order.
func NewReplica(endpoint *p2p.Endpoint, n int, onCommit CommitFn) *Replica {
	return NewReplicaWithOptions(endpoint, n, onCommit, Options{})
}

// NewReplicaWithOptions wires a replica with explicit liveness tuning.
func NewReplicaWithOptions(endpoint *p2p.Endpoint, n int, onCommit CommitFn, opts Options) *Replica {
	r := &Replica{
		id:            endpoint.ID(),
		n:             n,
		f:             (n - 1) / 3,
		endpoint:      endpoint,
		onCommit:      onCommit,
		opts:          opts.withDefaults(),
		instances:     make(map[uint64]*instance),
		pending:       make(map[uint64][]byte),
		viewVotes:     make(map[uint64]map[p2p.NodeID][]vcEntry),
		committedLog:  make(map[uint64][]byte),
		carry:         make(map[uint64]carryEntry),
		peerViews:     make(map[p2p.NodeID]uint64),
		peerDelivered: make(map[p2p.NodeID]uint64),
		lastProgress:  time.Now(),
		deliveredCh:   make(chan struct{}),
		stop:          make(chan struct{}),
	}
	r.vcInterval = r.opts.RetransmitInterval
	r.fetchInterval = r.opts.RetransmitInterval
	endpoint.Subscribe(topicPrePrepare, r.onPrePrepare)
	endpoint.Subscribe(topicPrepare, r.onPrepare)
	endpoint.Subscribe(topicCommit, r.onCommit3)
	endpoint.Subscribe(topicViewChange, r.onViewChange)
	endpoint.Subscribe(topicStatus, r.onStatus)
	endpoint.Subscribe(topicFetch, r.onFetch)
	endpoint.Subscribe(topicFetchResp, r.onFetchResp)
	go r.run()
	return r
}

// View returns the current view number.
func (r *Replica) View() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view
}

// ViewChanges reports how many view switches this replica has adopted.
func (r *Replica) ViewChanges() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.viewChanges
}

// RequestViewChange votes to replace the current leader (e.g. after a
// proposal timeout). The view switches once 2f+1 replicas vote. The
// progress timer calls this automatically on leader silence; it remains
// public for operator tooling.
func (r *Replica) RequestViewChange() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	target := r.view + 1
	if r.votedFor >= target {
		r.mu.Unlock()
		return
	}
	r.votedFor = target
	r.recordViewVote(target, r.id, nil)
	r.vcLastSent = time.Now()
	r.vcInterval = r.opts.RetransmitInterval
	vote := encodeMsg(msgViewChange, target, 0, zeroDigest[:], encodeVCEntries(r.preparedSet()))
	r.mu.Unlock()
	r.endpoint.Broadcast(topicViewChange, vote)
	r.mu.Lock()
	r.maybeSwitchView(target)
	r.mu.Unlock()
}

func (r *Replica) onViewChange(m p2p.Message) {
	typ, target, _, _, payload, err := decodeMsg(m.Data)
	if err != nil || typ != msgViewChange {
		return
	}
	r.mu.Lock()
	if r.closed || target <= r.view {
		r.mu.Unlock()
		return
	}
	r.recordViewVote(target, m.From, decodeVCEntries(payload))
	// Join the view change once f+1 others ask for it (standard liveness
	// amplification), so one slow timer does not stall the switch.
	join := len(r.viewVotes[target]) >= r.f+1 && r.votedFor < target
	var vote []byte
	if join {
		r.votedFor = target
		r.recordViewVote(target, r.id, nil)
		r.vcLastSent = time.Now()
		r.vcInterval = r.opts.RetransmitInterval
		vote = encodeMsg(msgViewChange, target, 0, zeroDigest[:], encodeVCEntries(r.preparedSet()))
	}
	r.mu.Unlock()
	if join {
		r.endpoint.Broadcast(topicViewChange, vote)
	}
	r.mu.Lock()
	r.maybeSwitchView(target)
	r.mu.Unlock()
}

// recordViewVote tallies a vote with the prepared certificates it shipped.
// The replica's own vote records nil — its local carry/instances are merged
// directly at adoption. Caller holds r.mu.
func (r *Replica) recordViewVote(target uint64, from p2p.NodeID, entries []vcEntry) {
	votes := r.viewVotes[target]
	if votes == nil {
		votes = make(map[p2p.NodeID][]vcEntry)
		r.viewVotes[target] = votes
	}
	if _, seen := votes[from]; !seen || entries != nil {
		votes[from] = entries
	}
}

// preparedSet collects this replica's prepared-but-undelivered payloads —
// current carry plus commit-voted instances — for a view-change vote.
// Caller holds r.mu.
func (r *Replica) preparedSet() []vcEntry {
	var entries []vcEntry
	for seq, c := range r.carry {
		if seq >= r.delivered {
			entries = append(entries, vcEntry{seq: seq, view: c.view, payload: c.payload})
		}
	}
	for seq, inst := range r.instances {
		if seq >= r.delivered && inst.sentCommit && !inst.committed {
			entries = append(entries, vcEntry{seq: seq, view: r.view, payload: inst.payload})
		}
	}
	return entries
}

// maybeSwitchView adopts the target view on a 2f+1 quorum, first merging
// the quorum's prepared certificates into the carry set (highest
// prepare-view wins per sequence). Any 2f+1 votes intersect any commit
// quorum in at least one replica, so every payload that may have committed
// is represented — which is what makes the leader's no-op gap-fill safe.
// Caller holds r.mu.
func (r *Replica) maybeSwitchView(target uint64) {
	if target <= r.view || len(r.viewVotes[target]) < r.Quorum() {
		return
	}
	for _, entries := range r.viewVotes[target] {
		for _, e := range entries {
			if e.seq < r.delivered {
				continue
			}
			if c, held := r.carry[e.seq]; held && c.view >= e.view {
				continue
			}
			r.carry[e.seq] = carryEntry{
				digest:  sha256.Sum256(e.payload),
				view:    e.view,
				payload: append([]byte(nil), e.payload...),
			}
		}
	}
	r.adoptView(target)
	r.certView = target
}

// adoptView moves to view v: in-flight unprepared instances are abandoned
// (their payloads remain in the application's pools and the new leader
// re-proposes them), locally prepared ones are carried for re-proposal at
// the same sequence, and committed-but-undelivered payloads stay pending.
// All vote state for views ≤ v is pruned. Caller holds r.mu.
func (r *Replica) adoptView(v uint64) {
	if v <= r.view {
		return
	}
	for seq, inst := range r.instances {
		if seq >= r.delivered && inst.sentCommit && !inst.committed {
			if c, held := r.carry[seq]; held && c.view > r.view {
				continue // a merged certificate from a newer view wins
			}
			r.carry[seq] = carryEntry{digest: inst.digest, view: r.view, payload: inst.payload}
		}
	}
	r.view = v
	r.viewChanges++
	mViewChanges.Inc()
	if r.votedFor < v {
		r.votedFor = v
	}
	r.instances = make(map[uint64]*instance)
	r.nextSeq = r.delivered
	for seq := range r.pending {
		if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	for seq := range r.carry {
		if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	// Prune vote maps for every view at or below the adopted one — stale
	// lower-view votes can never form a quorum again.
	for target := range r.viewVotes {
		if target <= v {
			delete(r.viewVotes, target)
		}
	}
	r.lastProgress = time.Now()
}

// Leader returns the current view's leader id.
func (r *Replica) Leader() p2p.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return p2p.NodeID(r.view % uint64(r.n))
}

// IsLeader reports whether this replica leads the current view.
func (r *Replica) IsLeader() bool { return r.Leader() == r.id }

// Quorum returns the vote threshold (2f+1, counting the replica itself).
func (r *Replica) Quorum() int { return 2*r.f + 1 }

// Propose starts agreement on payload and returns its sequence number.
// Only the leader may propose; proposals pipeline (no need to wait for the
// previous commit).
func (r *Replica) Propose(payload []byte) (uint64, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, ErrClosed
	}
	if p2p.NodeID(r.view%uint64(r.n)) != r.id {
		r.mu.Unlock()
		return 0, ErrNotLeader
	}
	seq := r.nextSeq
	r.nextSeq++
	digest := sha256.Sum256(payload)
	inst := r.getInstance(seq)
	inst.digest = digest
	inst.payload = append([]byte(nil), payload...)
	inst.havePre = true
	// The leader's own pre-prepare counts as its prepare vote.
	inst.prepares[r.id] = digest
	view := r.view
	r.mu.Unlock()

	mProposals.Inc()
	msg := encodeMsg(msgPrePrepare, view, seq, digest[:], payload)
	r.endpoint.Broadcast(topicPrePrepare, msg)
	// A single-replica network commits immediately.
	r.mu.Lock()
	r.maybeAdvance(seq, inst)
	r.mu.Unlock()
	return seq, nil
}

// getInstance returns (creating if needed) the instance for seq. Caller
// holds r.mu.
func (r *Replica) getInstance(seq uint64) *instance {
	inst, ok := r.instances[seq]
	if !ok {
		inst = &instance{
			prepares: make(map[p2p.NodeID][32]byte),
			commits:  make(map[p2p.NodeID][32]byte),
			lastSent: time.Now(),
			resendIn: r.opts.RetransmitInterval,
		}
		r.instances[seq] = inst
	}
	return inst
}

func (r *Replica) onPrePrepare(m p2p.Message) {
	typ, view, seq, digest, payload, err := decodeMsg(m.Data)
	if err != nil || typ != msgPrePrepare {
		return
	}
	r.mu.Lock()
	if r.closed || view != r.view || seq < r.delivered {
		r.mu.Unlock()
		return
	}
	if m.From != p2p.NodeID(view%uint64(r.n)) {
		r.mu.Unlock()
		return // only the leader may pre-prepare
	}
	if sha256.Sum256(payload) != digest {
		r.mu.Unlock()
		return // digest mismatch: discard
	}
	if c, held := r.carry[seq]; held && c.digest != digest {
		r.mu.Unlock()
		return // conflicts with a payload this replica already commit-voted
	}
	inst := r.getInstance(seq)
	if inst.havePre {
		r.mu.Unlock()
		return // duplicate (first pre-prepare wins within a view)
	}
	inst.havePre = true
	inst.digest = digest
	inst.payload = append([]byte(nil), payload...)
	// The leader's pre-prepare doubles as its prepare vote, and this
	// replica's prepare broadcast counts for itself.
	inst.prepares[m.From] = digest
	inst.prepares[r.id] = digest
	if seq >= r.nextSeq {
		r.nextSeq = seq + 1
	}
	r.mu.Unlock()

	r.endpoint.Broadcast(topicPrepare, encodeMsg(msgPrepare, view, seq, digest[:], nil))
	r.mu.Lock()
	r.maybeAdvance(seq, inst)
	r.mu.Unlock()
}

func (r *Replica) onPrepare(m p2p.Message) {
	typ, view, seq, digest, _, err := decodeMsg(m.Data)
	if err != nil || typ != msgPrepare {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || view != r.view || seq < r.delivered {
		return
	}
	inst := r.getInstance(seq)
	inst.prepares[m.From] = digest
	r.maybeAdvance(seq, inst)
}

func (r *Replica) onCommit3(m p2p.Message) {
	typ, view, seq, digest, _, err := decodeMsg(m.Data)
	if err != nil || typ != msgCommit {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || view != r.view || seq < r.delivered {
		return
	}
	inst := r.getInstance(seq)
	inst.commits[m.From] = digest
	r.maybeAdvance(seq, inst)
}

// maybeAdvance moves an instance through prepared → committed → delivered.
// Caller holds r.mu.
func (r *Replica) maybeAdvance(seq uint64, inst *instance) {
	if !inst.havePre {
		return
	}
	// Count matching prepare votes.
	if !inst.sentCommit && r.countMatching(inst.prepares, inst.digest) >= r.Quorum() {
		inst.sentCommit = true
		inst.commits[r.id] = inst.digest
		view := r.view
		digest := inst.digest
		// Broadcast outside the lock.
		r.mu.Unlock()
		r.endpoint.Broadcast(topicCommit, encodeMsg(msgCommit, view, seq, digest[:], nil))
		r.mu.Lock()
	}
	if !inst.committed && inst.sentCommit && r.countMatching(inst.commits, inst.digest) >= r.Quorum() {
		inst.committed = true
		r.pending[seq] = inst.payload
		r.deliverReady()
	}
	// Single-node special case: quorum of 1 is satisfied instantly.
	if r.n == 1 && !inst.committed {
		inst.committed = true
		r.pending[seq] = inst.payload
		r.deliverReady()
	}
}

func (r *Replica) countMatching(votes map[p2p.NodeID][32]byte, digest [32]byte) int {
	count := 0
	for _, d := range votes {
		if d == digest {
			count++
		}
	}
	return count
}

// deliverReady hands consecutive committed sequences to the application.
// Caller holds r.mu.
func (r *Replica) deliverReady() {
	for {
		payload, ok := r.pending[r.delivered]
		if !ok {
			return
		}
		seq := r.delivered
		delete(r.pending, seq)
		delete(r.instances, seq)
		delete(r.carry, seq)
		r.delivered++
		r.recordDelivered(seq, payload)
		cb := r.onCommit
		r.mu.Unlock()
		if cb != nil {
			cb(seq, payload)
		}
		r.mu.Lock()
	}
}

// recordDelivered maintains the committed log, progress clock and waiter
// notification after one delivery. Caller holds r.mu.
func (r *Replica) recordDelivered(seq uint64, payload []byte) {
	mDelivered.Inc()
	r.committedLog[seq] = payload
	for len(r.committedLog) > r.opts.CommittedLog {
		delete(r.committedLog, r.logMin)
		r.logMin++
	}
	r.lastProgress = time.Now()
	r.fetchInterval = r.opts.RetransmitInterval
	close(r.deliveredCh)
	r.deliveredCh = make(chan struct{})
}

// AdvanceTo fast-forwards the delivery counter after the application
// obtained sequences below seq out of band (block catch-up sync). State for
// skipped sequences is pruned; payloads already committed at or beyond seq
// become deliverable.
func (r *Replica) AdvanceTo(seq uint64) {
	r.mu.Lock()
	if seq <= r.delivered {
		r.mu.Unlock()
		return
	}
	for s := range r.instances {
		if s < seq {
			delete(r.instances, s)
		}
	}
	for s := range r.pending {
		if s < seq {
			delete(r.pending, s)
		}
	}
	for s := range r.carry {
		if s < seq {
			delete(r.carry, s)
		}
	}
	if r.logMin < seq {
		for s := r.logMin; s < seq; s++ {
			delete(r.committedLog, s)
		}
		r.logMin = seq
	}
	r.delivered = seq
	if r.nextSeq < seq {
		r.nextSeq = seq
	}
	for s := range r.pending {
		if s >= r.nextSeq {
			r.nextSeq = s + 1
		}
	}
	for s := range r.carry {
		if s >= r.nextSeq {
			r.nextSeq = s + 1
		}
	}
	r.lastProgress = time.Now()
	r.fetchInterval = r.opts.RetransmitInterval
	close(r.deliveredCh)
	r.deliveredCh = make(chan struct{})
	r.deliverReady()
	r.mu.Unlock()
}

// CompactLog garbage-collects committed-log payloads below seq. The node
// anchors this at its last stable checkpoint: any peer lagging past that
// point is served a state snapshot rather than replayed payloads, so
// retaining them serves nobody and consensus memory stops growing with
// chain length. Sequences not yet delivered are never dropped.
func (r *Replica) CompactLog(seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq > r.delivered {
		seq = r.delivered
	}
	if seq <= r.logMin {
		return
	}
	for s := r.logMin; s < seq; s++ {
		delete(r.committedLog, s)
	}
	r.logMin = seq
}

// Delivered reports how many sequences have been handed to the application.
func (r *Replica) Delivered() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.delivered
}

// InFlight reports how many proposed sequences have not yet been delivered
// — the depth of the consensus pipeline. A leader that keeps proposing far
// ahead of delivery buys nothing but retransmit traffic; callers use this to
// pace proposals against application progress.
func (r *Replica) InFlight() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nextSeq < r.delivered {
		return 0
	}
	return r.nextSeq - r.delivered
}

// Close stops processing and the liveness loop.
func (r *Replica) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	close(r.stop)
}

// WaitDelivered blocks until the replica has delivered at least target
// sequences or the timeout elapses.
func (r *Replica) WaitDelivered(target uint64, timeout time.Duration) error {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		r.mu.Lock()
		if r.delivered >= target {
			r.mu.Unlock()
			return nil
		}
		ch := r.deliveredCh
		r.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			return fmt.Errorf("consensus: timeout waiting for %d deliveries (have %d)", target, r.Delivered())
		}
	}
}

var zeroDigest [32]byte

// Message layout: type(1) view(8) seq(8) digest(32) payload(rest), via
// chain RLP for canonical framing. Control messages (view-change, status,
// fetch) carry a zero digest.
func encodeMsg(typ uint64, view, seq uint64, digest, payload []byte) []byte {
	return chain.Encode(chain.List(
		chain.Uint(typ),
		chain.Uint(view),
		chain.Uint(seq),
		chain.Bytes(digest),
		chain.Bytes(payload),
	))
}

func decodeMsg(data []byte) (typ, view, seq uint64, digest [32]byte, payload []byte, err error) {
	it, err := chain.Decode(data)
	if err != nil {
		return 0, 0, 0, digest, nil, err
	}
	if !it.IsList || len(it.List) != 5 {
		return 0, 0, 0, digest, nil, errors.New("consensus: malformed message")
	}
	if typ, err = it.List[0].AsUint(); err != nil {
		return
	}
	if typ < msgPrePrepare || typ > msgFetchCommitted {
		return 0, 0, 0, digest, nil, errors.New("consensus: unknown message type")
	}
	if view, err = it.List[1].AsUint(); err != nil {
		return
	}
	if seq, err = it.List[2].AsUint(); err != nil {
		return
	}
	if len(it.List[3].Str) != 32 {
		return 0, 0, 0, digest, nil, errors.New("consensus: bad digest length")
	}
	copy(digest[:], it.List[3].Str)
	payload = it.List[4].Str
	return typ, view, seq, digest, payload, nil
}

// encodeVCEntries frames prepared certificates for a view-change vote:
// a list of (seq, prepare-view, payload) triples.
func encodeVCEntries(entries []vcEntry) []byte {
	if len(entries) == 0 {
		return nil
	}
	items := make([]chain.Item, len(entries))
	for i, e := range entries {
		items[i] = chain.List(chain.Uint(e.seq), chain.Uint(e.view), chain.Bytes(e.payload))
	}
	return chain.Encode(chain.List(items...))
}

func decodeVCEntries(data []byte) []vcEntry {
	if len(data) == 0 {
		return nil
	}
	it, err := chain.Decode(data)
	if err != nil || !it.IsList {
		return nil
	}
	var entries []vcEntry
	for _, e := range it.List {
		if !e.IsList || len(e.List) != 3 {
			continue
		}
		seq, errSeq := e.List[0].AsUint()
		view, errView := e.List[1].AsUint()
		if errSeq != nil || errView != nil {
			continue
		}
		entries = append(entries, vcEntry{seq: seq, view: view, payload: e.List[2].Str})
	}
	return entries
}
