// Package consensus implements the ordering phase of the platform: a
// PBFT-style three-phase protocol (pre-prepare / prepare / commit) over the
// simulated p2p network. Public and confidential transactions are ordered
// together here — ordering never needs to see inside an envelope, which is
// what lets CONFIDE stay loosely coupled to the platform.
//
// The implementation targets the paper's evaluation envelope: a fixed
// replica set, tolerance of f = (n-1)/3 fail-stop replicas, and pipelined
// block proposals. View change implements leader crash-failover: when 2f+1
// replicas vote for a higher view, everyone adopts it and the round-robin
// successor leads. In-flight (uncommitted) instances are abandoned on the
// view switch — their transactions remain in the nodes' pools and the new
// leader re-proposes them — which covers the operational leader-crash case
// between blocks; full Byzantine mid-instance recovery (prepared-
// certificate transfer) is out of scope, as the paper's evaluation is
// fault-free.
package consensus

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"confide/internal/chain"
	"confide/internal/p2p"
)

// Topics used on the wire.
const (
	topicPrePrepare = "pbft/pre-prepare"
	topicPrepare    = "pbft/prepare"
	topicCommit     = "pbft/commit"
	topicViewChange = "pbft/view-change"
)

// CommitFn is called exactly once per sequence number, in order, with the
// committed payload.
type CommitFn func(seq uint64, payload []byte)

// Replica is one PBFT participant.
type Replica struct {
	id       p2p.NodeID
	n        int
	f        int
	endpoint *p2p.Endpoint
	onCommit CommitFn

	mu        sync.Mutex
	view      uint64
	nextSeq   uint64 // next sequence the leader may propose
	delivered uint64 // next sequence to deliver
	instances map[uint64]*instance
	pending   map[uint64][]byte // committed out of order, awaiting delivery
	// viewVotes[v] holds the replicas that voted to move to view v.
	viewVotes map[uint64]map[p2p.NodeID]struct{}
	votedFor  uint64 // highest view this replica has voted for
	closed    bool
}

// instance tracks one sequence number's progress.
type instance struct {
	digest     [32]byte
	payload    []byte
	havePre    bool
	prepares   map[p2p.NodeID][32]byte
	commits    map[p2p.NodeID][32]byte
	sentCommit bool
	committed  bool
	// earlyPrepares / earlyCommits buffer votes that arrive before the
	// pre-prepare (the network reorders freely).
}

// ErrNotLeader is returned when a non-leader proposes.
var ErrNotLeader = errors.New("consensus: not the leader for this view")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("consensus: replica closed")

// NewReplica wires a replica to its endpoint. n is the total replica count;
// ids must be 0..n-1. onCommit receives committed payloads in sequence
// order.
func NewReplica(endpoint *p2p.Endpoint, n int, onCommit CommitFn) *Replica {
	r := &Replica{
		id:        endpoint.ID(),
		n:         n,
		f:         (n - 1) / 3,
		endpoint:  endpoint,
		onCommit:  onCommit,
		instances: make(map[uint64]*instance),
		pending:   make(map[uint64][]byte),
		viewVotes: make(map[uint64]map[p2p.NodeID]struct{}),
	}
	endpoint.Subscribe(topicPrePrepare, r.onPrePrepare)
	endpoint.Subscribe(topicPrepare, r.onPrepare)
	endpoint.Subscribe(topicCommit, r.onCommit3)
	endpoint.Subscribe(topicViewChange, r.onViewChange)
	return r
}

// View returns the current view number.
func (r *Replica) View() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view
}

// RequestViewChange votes to replace the current leader (e.g. after a
// proposal timeout). The view switches once 2f+1 replicas vote.
func (r *Replica) RequestViewChange() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	target := r.view + 1
	if r.votedFor >= target {
		r.mu.Unlock()
		return
	}
	r.votedFor = target
	r.recordViewVote(target, r.id)
	r.mu.Unlock()
	r.endpoint.Broadcast(topicViewChange, encodeMsg(target, 0, make([]byte, 32), nil))
	r.mu.Lock()
	r.maybeSwitchView(target)
	r.mu.Unlock()
}

func (r *Replica) onViewChange(m p2p.Message) {
	target, _, _, _, err := decodeMsg(m.Data)
	if err != nil {
		return
	}
	r.mu.Lock()
	if r.closed || target <= r.view {
		r.mu.Unlock()
		return
	}
	r.recordViewVote(target, m.From)
	// Join the view change once f+1 others ask for it (standard liveness
	// amplification), so one slow timer does not stall the switch.
	join := len(r.viewVotes[target]) >= r.f+1 && r.votedFor < target
	if join {
		r.votedFor = target
		r.recordViewVote(target, r.id)
	}
	r.mu.Unlock()
	if join {
		r.endpoint.Broadcast(topicViewChange, encodeMsg(target, 0, make([]byte, 32), nil))
	}
	r.mu.Lock()
	r.maybeSwitchView(target)
	r.mu.Unlock()
}

// recordViewVote tallies a vote. Caller holds r.mu.
func (r *Replica) recordViewVote(target uint64, from p2p.NodeID) {
	votes := r.viewVotes[target]
	if votes == nil {
		votes = make(map[p2p.NodeID]struct{})
		r.viewVotes[target] = votes
	}
	votes[from] = struct{}{}
}

// maybeSwitchView adopts the target view on a 2f+1 quorum, abandoning
// in-flight instances (their payloads remain in the application's pools).
// Caller holds r.mu.
func (r *Replica) maybeSwitchView(target uint64) {
	if target <= r.view || len(r.viewVotes[target]) < r.Quorum() {
		return
	}
	r.view = target
	r.instances = make(map[uint64]*instance)
	r.pending = make(map[uint64][]byte)
	r.nextSeq = r.delivered
	delete(r.viewVotes, target)
}

// Leader returns the current view's leader id.
func (r *Replica) Leader() p2p.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return p2p.NodeID(r.view % uint64(r.n))
}

// IsLeader reports whether this replica leads the current view.
func (r *Replica) IsLeader() bool { return r.Leader() == r.id }

// Quorum returns the vote threshold (2f+1, counting the replica itself).
func (r *Replica) Quorum() int { return 2*r.f + 1 }

// Propose starts agreement on payload and returns its sequence number.
// Only the leader may propose; proposals pipeline (no need to wait for the
// previous commit).
func (r *Replica) Propose(payload []byte) (uint64, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, ErrClosed
	}
	if p2p.NodeID(r.view%uint64(r.n)) != r.id {
		r.mu.Unlock()
		return 0, ErrNotLeader
	}
	seq := r.nextSeq
	r.nextSeq++
	digest := sha256.Sum256(payload)
	inst := r.getInstance(seq)
	inst.digest = digest
	inst.payload = append([]byte(nil), payload...)
	inst.havePre = true
	// The leader's own pre-prepare counts as its prepare vote.
	inst.prepares[r.id] = digest
	view := r.view
	r.mu.Unlock()

	msg := encodeMsg(view, seq, digest[:], payload)
	r.endpoint.Broadcast(topicPrePrepare, msg)
	// A single-replica network commits immediately.
	r.mu.Lock()
	r.maybeAdvance(seq, inst)
	r.mu.Unlock()
	return seq, nil
}

func (r *Replica) getInstance(seq uint64) *instance {
	inst, ok := r.instances[seq]
	if !ok {
		inst = &instance{
			prepares: make(map[p2p.NodeID][32]byte),
			commits:  make(map[p2p.NodeID][32]byte),
		}
		r.instances[seq] = inst
	}
	return inst
}

func (r *Replica) onPrePrepare(m p2p.Message) {
	view, seq, digest, payload, err := decodeMsg(m.Data)
	if err != nil {
		return
	}
	r.mu.Lock()
	if r.closed || view != r.view {
		r.mu.Unlock()
		return
	}
	if m.From != p2p.NodeID(view%uint64(r.n)) {
		r.mu.Unlock()
		return // only the leader may pre-prepare
	}
	if sha256.Sum256(payload) != digest {
		r.mu.Unlock()
		return // digest mismatch: discard
	}
	inst := r.getInstance(seq)
	if inst.havePre {
		r.mu.Unlock()
		return // duplicate
	}
	inst.havePre = true
	inst.digest = digest
	inst.payload = append([]byte(nil), payload...)
	// The leader's pre-prepare doubles as its prepare vote, and this
	// replica's prepare broadcast counts for itself.
	inst.prepares[m.From] = digest
	inst.prepares[r.id] = digest
	if seq >= r.nextSeq {
		r.nextSeq = seq + 1
	}
	r.mu.Unlock()

	r.endpoint.Broadcast(topicPrepare, encodeMsg(view, seq, digest[:], nil))
	r.mu.Lock()
	r.maybeAdvance(seq, inst)
	r.mu.Unlock()
}

func (r *Replica) onPrepare(m p2p.Message) {
	view, seq, digest, _, err := decodeMsg(m.Data)
	if err != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || view != r.view {
		return
	}
	inst := r.getInstance(seq)
	inst.prepares[m.From] = digest
	r.maybeAdvance(seq, inst)
}

func (r *Replica) onCommit3(m p2p.Message) {
	view, seq, digest, _, err := decodeMsg(m.Data)
	if err != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || view != r.view {
		return
	}
	inst := r.getInstance(seq)
	inst.commits[m.From] = digest
	r.maybeAdvance(seq, inst)
}

// maybeAdvance moves an instance through prepared → committed → delivered.
// Caller holds r.mu.
func (r *Replica) maybeAdvance(seq uint64, inst *instance) {
	if !inst.havePre {
		return
	}
	// Count matching prepare votes.
	if !inst.sentCommit && r.countMatching(inst.prepares, inst.digest) >= r.Quorum() {
		inst.sentCommit = true
		inst.commits[r.id] = inst.digest
		view := r.view
		digest := inst.digest
		// Broadcast outside the lock.
		r.mu.Unlock()
		r.endpoint.Broadcast(topicCommit, encodeMsg(view, seq, digest[:], nil))
		r.mu.Lock()
	}
	if !inst.committed && inst.sentCommit && r.countMatching(inst.commits, inst.digest) >= r.Quorum() {
		inst.committed = true
		r.pending[seq] = inst.payload
		r.deliverReady()
	}
	// Single-node special case: quorum of 1 is satisfied instantly.
	if r.n == 1 && !inst.committed {
		inst.committed = true
		r.pending[seq] = inst.payload
		r.deliverReady()
	}
}

func (r *Replica) countMatching(votes map[p2p.NodeID][32]byte, digest [32]byte) int {
	count := 0
	for _, d := range votes {
		if d == digest {
			count++
		}
	}
	return count
}

// deliverReady hands consecutive committed sequences to the application.
// Caller holds r.mu.
func (r *Replica) deliverReady() {
	for {
		payload, ok := r.pending[r.delivered]
		if !ok {
			return
		}
		seq := r.delivered
		delete(r.pending, seq)
		delete(r.instances, seq)
		r.delivered++
		cb := r.onCommit
		r.mu.Unlock()
		if cb != nil {
			cb(seq, payload)
		}
		r.mu.Lock()
	}
}

// Delivered reports how many sequences have been handed to the application.
func (r *Replica) Delivered() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.delivered
}

// Close stops processing.
func (r *Replica) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
}

// WaitDelivered blocks until the replica has delivered at least target
// sequences or the timeout elapses.
func (r *Replica) WaitDelivered(target uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if r.Delivered() >= target {
			return nil
		}
		time.Sleep(50 * time.Microsecond)
	}
	return fmt.Errorf("consensus: timeout waiting for %d deliveries (have %d)", target, r.Delivered())
}

// Message layout: view(8) seq(8) digest(32) payload(rest), via chain RLP for
// canonical framing.
func encodeMsg(view, seq uint64, digest, payload []byte) []byte {
	return chain.Encode(chain.List(
		chain.Uint(view),
		chain.Uint(seq),
		chain.Bytes(digest),
		chain.Bytes(payload),
	))
}

func decodeMsg(data []byte) (view, seq uint64, digest [32]byte, payload []byte, err error) {
	it, err := chain.Decode(data)
	if err != nil {
		return 0, 0, digest, nil, err
	}
	if !it.IsList || len(it.List) != 4 {
		return 0, 0, digest, nil, errors.New("consensus: malformed message")
	}
	if view, err = it.List[0].AsUint(); err != nil {
		return
	}
	if seq, err = it.List[1].AsUint(); err != nil {
		return
	}
	if len(it.List[2].Str) != 32 {
		return 0, 0, digest, nil, errors.New("consensus: bad digest length")
	}
	copy(digest[:], it.List[2].Str)
	payload = it.List[3].Str
	return view, seq, digest, payload, nil
}
