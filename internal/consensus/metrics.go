package consensus

import "confide/internal/metrics"

// Process-wide PBFT counters. Per-replica numbers stay available via each
// Replica's fields; these aggregate across every replica in the process (an
// in-process cluster sums all of them), which is what the chaos harness
// asserts on.
var (
	mProposals   = metrics.Default().Counter("confide_consensus_proposals_total", "payloads proposed by leaders")
	mDelivered   = metrics.Default().Counter("confide_consensus_delivered_total", "payloads delivered (committed and handed to the application)")
	mViewChanges = metrics.Default().Counter("confide_consensus_view_changes_total", "view changes adopted")
	mRetransmits = metrics.Default().Counter("confide_consensus_retransmissions_total", "protocol messages re-sent by the liveness loop (instance resends, view-change revotes)")
	mHeartbeats  = metrics.Default().Counter("confide_consensus_heartbeats_total", "status heartbeats broadcast")
	mFetches     = metrics.Default().Counter("confide_consensus_fetches_total", "catch-up fetch requests sent")
)
