package consensus

import (
	"crypto/sha256"
	"sync/atomic"
	"testing"
	"time"

	"confide/internal/p2p"
)

// fastOpts shrinks the liveness timers so fault tests converge quickly.
func fastOpts() Options {
	return Options{
		ViewTimeout:        120 * time.Millisecond,
		RetransmitInterval: 15 * time.Millisecond,
		RetransmitMax:      120 * time.Millisecond,
		HeartbeatInterval:  20 * time.Millisecond,
	}
}

// TestAutomaticViewChangeOnLeaderSilence: pending work + a crashed leader
// must rotate the view with ZERO manual RequestViewChange calls.
func TestAutomaticViewChangeOnLeaderSilence(t *testing.T) {
	var pending atomic.Bool
	pending.Store(true)
	opts := fastOpts()
	opts.WorkPending = pending.Load
	c := newClusterOpts(t, 4, p2p.Config{}, opts)

	c.endpoints[0].Crash() // view-0 leader dies before proposing anything

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.replicas[1].View() == 0 {
		time.Sleep(time.Millisecond)
	}
	if v := c.replicas[1].View(); v == 0 {
		t.Fatal("progress timer never voted the silent leader out")
	}

	// Whichever live replica now leads can order the pending work.
	var leader *Replica
	for time.Now().Before(deadline) && leader == nil {
		for _, r := range c.replicas[1:] {
			if r.IsLeader() {
				leader = r
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no live replica took over leadership")
	}
	if _, err := leader.Propose([]byte("after automatic failover")); err != nil {
		t.Fatal(err)
	}
	pending.Store(false)
	for _, r := range c.replicas[1:] {
		if err := r.WaitDelivered(1, 5*time.Second); err != nil {
			t.Fatalf("replica %d: %v", r.id, err)
		}
	}
}

// TestCommitsUnderMessageLoss: with 15% random loss and a live leader,
// retransmission alone must push a pipeline of blocks through.
func TestCommitsUnderMessageLoss(t *testing.T) {
	c := newClusterOpts(t, 4, p2p.Config{DropRate: 0.15, Seed: 42}, fastOpts())
	const blocks = 8
	for i := 0; i < blocks; i++ {
		if _, err := c.replicas[0].Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range c.replicas {
		if err := r.WaitDelivered(blocks, 15*time.Second); err != nil {
			t.Fatalf("replica %d under loss: %v", i, err)
		}
		log := c.log(i)
		for j := 0; j < blocks; j++ {
			if log[j][0] != byte(j) {
				t.Fatalf("replica %d delivered out of order at %d", i, j)
			}
		}
	}
}

// TestViewChangeUnderMessageLoss is the satellite scenario: leader crash
// plus 10% drop; recovery must come from the automatic timers and
// retransmitted view-change votes, with no manual votes in the test body.
func TestViewChangeUnderMessageLoss(t *testing.T) {
	var pending atomic.Bool
	pending.Store(true)
	opts := fastOpts()
	opts.WorkPending = pending.Load
	c := newClusterOpts(t, 4, p2p.Config{DropRate: 0.10, Seed: 7}, opts)

	// The leader gets one block through, then dies.
	if _, err := c.replicas[0].Propose([]byte("pre-crash")); err != nil {
		t.Fatal(err)
	}
	for _, r := range c.replicas {
		if err := r.WaitDelivered(1, 10*time.Second); err != nil {
			t.Fatalf("replica %d: %v", r.id, err)
		}
	}
	c.endpoints[0].Crash()

	// Survivors must rotate the view on their own, then commit new work.
	deadline := time.Now().Add(10 * time.Second)
	var leader *Replica
	for time.Now().Before(deadline) && leader == nil {
		for _, r := range c.replicas[1:] {
			if r.View() > 0 && r.IsLeader() {
				leader = r
			}
		}
		time.Sleep(time.Millisecond)
	}
	if leader == nil {
		t.Fatal("automatic view change did not elect a live leader under loss")
	}
	// Propose like a client: a proposal that was not yet prepared is
	// legitimately dropped by a further view change, so retry until every
	// survivor has delivered a second block.
	for {
		for _, r := range c.replicas[1:] {
			if r.IsLeader() {
				r.Propose([]byte("post-crash")) // may race a view change
			}
		}
		converged := true
		for _, r := range c.replicas[1:] {
			if r.Delivered() < 2 {
				converged = false
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never committed new work after failover under loss")
		}
		time.Sleep(20 * time.Millisecond)
	}
	pending.Store(false)
}

// TestRejoiningReplicaCatchesUp: a replica that was crashed while the rest
// of the cluster committed blocks must, after recovery, learn the gap from
// heartbeats and pull the committed payloads via fetch.
func TestRejoiningReplicaCatchesUp(t *testing.T) {
	c := newClusterOpts(t, 4, p2p.Config{}, fastOpts())
	c.endpoints[3].Crash()
	const blocks = 5
	for i := 0; i < blocks; i++ {
		if _, err := c.replicas[0].Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range c.replicas[:3] {
		if err := r.WaitDelivered(blocks, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if c.replicas[3].Delivered() != 0 {
		t.Fatal("crashed replica delivered while down")
	}

	c.endpoints[3].Recover()
	if err := c.replicas[3].WaitDelivered(blocks, 10*time.Second); err != nil {
		t.Fatalf("rejoined replica never caught up: %v", err)
	}
	log := c.log(3)
	for j := 0; j < blocks; j++ {
		if log[j][0] != byte(j) {
			t.Fatalf("caught-up log diverges at %d", j)
		}
	}
}

// TestLostPrePrepareFetchedFromPeers: the leader's pre-prepare to one
// replica is dropped (per-link drop on the pre-prepare path); the replica
// sees the prepare votes, fetches the payload from a peer, and commits.
func TestLostPrePrepareFetchedFromPeers(t *testing.T) {
	c := newClusterOpts(t, 4, p2p.Config{}, fastOpts())
	// Kill only leader→replica-3 traffic: 3 still hears prepares/commits
	// from 1 and 2 but never the pre-prepare or its retransmissions.
	c.net.SetLinkDropRate(0, 3, 1.0)
	if _, err := c.replicas[0].Propose([]byte("fetch me")); err != nil {
		t.Fatal(err)
	}
	if err := c.replicas[3].WaitDelivered(1, 10*time.Second); err != nil {
		t.Fatalf("replica behind a dead leader link never fetched the payload: %v", err)
	}
	if got := c.log(3); string(got[0]) != "fetch me" {
		t.Fatalf("fetched payload = %q", got[0])
	}
}

// TestViewVotesPruned is the regression test for the viewVotes leak: after
// a switch to view v, vote maps for ALL views ≤ v must be gone, not just
// the adopted target's.
func TestViewVotesPruned(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{})
	r := c.replicas[0]
	// Simulate straggler votes for views 1 and 2 arriving while the quorum
	// forms for view 3.
	r.mu.Lock()
	r.recordViewVote(1, 1, nil)
	r.recordViewVote(2, 2, nil)
	r.recordViewVote(3, 1, nil)
	r.recordViewVote(3, 2, nil)
	r.recordViewVote(3, 3, nil)
	r.maybeSwitchView(3)
	leaked := len(r.viewVotes)
	view := r.view
	r.mu.Unlock()
	if view != 3 {
		t.Fatalf("view = %d, want 3", view)
	}
	if leaked != 0 {
		t.Fatalf("%d stale viewVotes entries leaked after the switch", leaked)
	}
}

// TestGapFilledAcrossViewChange reproduces the pipelining wedge: seq 1
// commits while seq 0 was never even pre-prepared (its proposal vanished
// with the leader). The committed payload is stuck behind the hole. After
// the automatic view change, the new leader's quorum certificates prove
// seq 0 holds no prepared payload, so it no-op-fills the hole and seq 1
// finally delivers.
func TestGapFilledAcrossViewChange(t *testing.T) {
	c := newClusterOpts(t, 4, p2p.Config{}, fastOpts())

	// The leader "proposes" only seq 1 — as if seq 0's pre-prepare was
	// composed but never hit the wire before the crash.
	payload := []byte("orphaned behind a hole")
	digest := sha256.Sum256(payload)
	c.endpoints[0].Broadcast(topicPrePrepare, encodeMsg(msgPrePrepare, 0, 1, digest[:], payload))

	// Followers commit seq 1 but cannot deliver past the hole at seq 0.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.replicas[1].mu.Lock()
		stuck := len(c.replicas[1].pending) > 0
		c.replicas[1].mu.Unlock()
		if stuck {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if c.replicas[1].Delivered() != 0 {
		t.Fatal("delivery should be blocked by the hole at seq 0")
	}
	c.endpoints[0].Crash()

	// The survivors' progress timers rotate the view; the new leader must
	// close the hole on its own.
	for _, r := range c.replicas[1:] {
		if err := r.WaitDelivered(2, 10*time.Second); err != nil {
			t.Fatalf("replica %d stuck behind the gap: %v", r.id, err)
		}
	}
	for i := 1; i < 4; i++ {
		log := c.log(i)
		if len(log[0]) != 0 {
			t.Fatalf("replica %d: seq 0 should be a no-op, got %q", i, log[0])
		}
		if string(log[1]) != string(payload) {
			t.Fatalf("replica %d: seq 1 = %q, want the orphaned payload", i, log[1])
		}
	}
}

// TestWaitDeliveredBlocksWithoutSpinning checks the notification-based
// waiter: it must wake promptly on delivery rather than poll.
func TestWaitDeliveredBlocksWithoutSpinning(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{})
	done := make(chan error, 1)
	go func() { done <- c.replicas[2].WaitDelivered(1, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond) // waiter is parked
	if _, err := c.replicas[0].Propose([]byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
}
