package consensus

import (
	"testing"
	"time"

	"confide/internal/p2p"
)

// waitView blocks until the replica reaches the target view.
func waitView(t *testing.T, r *Replica, target uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.View() >= target {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("replica %d stuck in view %d, want %d", r.id, r.View(), target)
}

func TestViewChangeElectsNextLeader(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{})
	// The view-0 leader (replica 0) crashes.
	c.endpoints[0].Crash()
	for i := 1; i < 4; i++ {
		c.replicas[i].RequestViewChange()
	}
	for i := 1; i < 4; i++ {
		waitView(t, c.replicas[i], 1)
	}
	if c.replicas[1].Leader() != 1 {
		t.Fatalf("view 1 leader = %d, want 1 (round robin)", c.replicas[1].Leader())
	}
	if !c.replicas[1].IsLeader() {
		t.Fatal("replica 1 should lead view 1")
	}
	// The new leader proposes and the survivors commit.
	if _, err := c.replicas[1].Propose([]byte("after failover")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if err := c.replicas[i].WaitDelivered(1, 3*time.Second); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
	if log := c.log(1); string(log[0]) != "after failover" {
		t.Errorf("log = %q", log[0])
	}
}

func TestViewChangeRequiresQuorum(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{}) // quorum = 3
	// Only one replica asks: no switch.
	c.replicas[1].RequestViewChange()
	time.Sleep(20 * time.Millisecond)
	for i := range c.replicas {
		if v := c.replicas[i].View(); v != 0 {
			t.Fatalf("replica %d moved to view %d on a single vote", i, v)
		}
	}
}

func TestViewChangeJoinAmplification(t *testing.T) {
	// f+1 = 2 explicit votes must pull the remaining correct replicas in,
	// reaching the 2f+1 switch quorum without their own timers firing.
	c := newCluster(t, 4, p2p.Config{})
	c.replicas[2].RequestViewChange()
	c.replicas[3].RequestViewChange()
	for i := 0; i < 4; i++ {
		waitView(t, c.replicas[i], 1)
	}
}

func TestOldLeaderProposalRejectedAfterViewChange(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{})
	for i := 0; i < 4; i++ {
		c.replicas[i].RequestViewChange()
	}
	for i := 0; i < 4; i++ {
		waitView(t, c.replicas[i], 1)
	}
	if _, err := c.replicas[0].Propose([]byte("stale leader")); err != ErrNotLeader {
		t.Errorf("old leader propose: err = %v, want ErrNotLeader", err)
	}
}

func TestViewChangeIsIdempotent(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{})
	for round := 0; round < 3; round++ {
		// Repeated requests for the same target must not over-advance.
		c.replicas[1].RequestViewChange()
	}
	c.replicas[2].RequestViewChange()
	c.replicas[3].RequestViewChange()
	for i := 0; i < 4; i++ {
		waitView(t, c.replicas[i], 1)
	}
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 4; i++ {
		if v := c.replicas[i].View(); v != 1 {
			t.Fatalf("replica %d at view %d, want exactly 1", i, v)
		}
	}
}

func TestConsecutiveViewChanges(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{})
	for target := uint64(1); target <= 2; target++ {
		for i := 0; i < 4; i++ {
			c.replicas[i].RequestViewChange()
		}
		for i := 0; i < 4; i++ {
			waitView(t, c.replicas[i], target)
		}
	}
	if c.replicas[0].Leader() != 2 {
		t.Errorf("view 2 leader = %d, want 2", c.replicas[0].Leader())
	}
	// Normal operation resumes under the view-2 leader.
	if _, err := c.replicas[2].Propose([]byte("view 2 block")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.replicas[i].WaitDelivered(1, 3*time.Second); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
}
