package consensus

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"confide/internal/p2p"
)

// cluster spins up n replicas on one simulated network and records each
// replica's committed payload log.
type cluster struct {
	replicas  []*Replica
	endpoints []*p2p.Endpoint
	net       *p2p.Network
	mu        sync.Mutex
	logs      [][]([]byte)
}

func newCluster(t *testing.T, n int, cfg p2p.Config) *cluster {
	t.Helper()
	return newClusterOpts(t, n, cfg, Options{})
}

func newClusterOpts(t *testing.T, n int, cfg p2p.Config, opts Options) *cluster {
	t.Helper()
	net := p2p.NewNetwork(cfg)
	c := &cluster{net: net, logs: make([][]([]byte), n)}
	for i := 0; i < n; i++ {
		e, err := net.Join(p2p.NodeID(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		i := i
		r := NewReplicaWithOptions(e, n, func(seq uint64, payload []byte) {
			c.mu.Lock()
			c.logs[i] = append(c.logs[i], append([]byte(nil), payload...))
			c.mu.Unlock()
		}, opts)
		c.replicas = append(c.replicas, r)
		c.endpoints = append(c.endpoints, e)
	}
	t.Cleanup(func() {
		for i := range c.replicas {
			c.replicas[i].Close()
			c.endpoints[i].Close()
		}
	})
	return c
}

func (c *cluster) log(i int) [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte(nil), c.logs[i]...)
}

func TestSingleReplicaCommitsImmediately(t *testing.T) {
	c := newCluster(t, 1, p2p.Config{})
	seq, err := c.replicas[0].Propose([]byte("solo"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 {
		t.Errorf("seq = %d, want 0", seq)
	}
	if err := c.replicas[0].WaitDelivered(1, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.log(0); len(got) != 1 || string(got[0]) != "solo" {
		t.Errorf("log = %q", got)
	}
}

func TestFourReplicasAgree(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{})
	leader := c.replicas[0]
	if !leader.IsLeader() {
		t.Fatal("replica 0 should lead view 0")
	}
	if leader.Quorum() != 3 {
		t.Errorf("quorum = %d, want 3 for n=4", leader.Quorum())
	}
	for i := 0; i < 5; i++ {
		if _, err := leader.Propose([]byte(fmt.Sprintf("block-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range c.replicas {
		if err := r.WaitDelivered(5, 3*time.Second); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
	want := c.log(0)
	for i := 1; i < 4; i++ {
		got := c.log(i)
		if len(got) != len(want) {
			t.Fatalf("replica %d delivered %d, leader %d", i, len(got), len(want))
		}
		for j := range want {
			if !bytes.Equal(got[j], want[j]) {
				t.Fatalf("replica %d log diverges at %d", i, j)
			}
		}
	}
}

func TestNonLeaderCannotPropose(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{})
	if _, err := c.replicas[1].Propose([]byte("x")); err != ErrNotLeader {
		t.Errorf("err = %v, want ErrNotLeader", err)
	}
}

func TestToleratesFCrashedFollowers(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{}) // f = 1
	c.endpoints[3].Crash()
	leader := c.replicas[0]
	for i := 0; i < 3; i++ {
		if _, err := leader.Propose([]byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ { // the live replicas
		if err := c.replicas[i].WaitDelivered(3, 3*time.Second); err != nil {
			t.Fatalf("replica %d with one crashed peer: %v", i, err)
		}
	}
	if c.replicas[3].Delivered() != 0 {
		t.Error("crashed replica should deliver nothing")
	}
}

func TestStallsBeyondF(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{})
	c.endpoints[2].Crash()
	c.endpoints[3].Crash() // 2 > f = 1
	c.replicas[0].Propose([]byte("doomed"))
	if err := c.replicas[0].WaitDelivered(1, 300*time.Millisecond); err == nil {
		t.Error("commit should stall with 2 of 4 replicas crashed")
	}
}

func TestCommitsUnderNetworkLatency(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{
		IntraZone: p2p.LinkProfile{Latency: 2 * time.Millisecond},
	})
	start := time.Now()
	c.replicas[0].Propose([]byte("latent"))
	if err := c.replicas[1].WaitDelivered(1, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	// Three phases × 2 ms ≥ ~4 ms for a follower to deliver (pre-prepare,
	// prepare; its own commit counts locally).
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("delivered in %v; latency model seems bypassed", elapsed)
	}
}

func TestPipelinedProposalsDeliverInOrder(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{
		IntraZone: p2p.LinkProfile{Latency: time.Millisecond},
	})
	const blocks = 20
	for i := 0; i < blocks; i++ {
		if _, err := c.replicas[0].Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range c.replicas {
		if err := c.replicas[i].WaitDelivered(blocks, 5*time.Second); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		log := c.log(i)
		for j := 0; j < blocks; j++ {
			if log[j][0] != byte(j) {
				t.Fatalf("replica %d delivered out of order at %d", i, j)
			}
		}
	}
}

func TestForgedLeaderPrePrepareIgnored(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{})
	// Replica 1 (not the leader) tries to pre-prepare; followers must
	// ignore it because view 0's leader is replica 0.
	forged := encodeMsg(msgPrePrepare, 0, 0, make([]byte, 32), []byte("evil"))
	c.endpoints[1].Broadcast(topicPrePrepare, forged)
	time.Sleep(50 * time.Millisecond)
	for i := range c.replicas {
		if c.replicas[i].Delivered() != 0 {
			t.Fatalf("replica %d committed a forged proposal", i)
		}
	}
}

func TestDigestMismatchDiscarded(t *testing.T) {
	c := newCluster(t, 4, p2p.Config{})
	bad := encodeMsg(msgPrePrepare, 0, 0, make([]byte, 32), []byte("payload-not-matching-digest"))
	c.endpoints[0].Broadcast(topicPrePrepare, bad) // from the real leader
	time.Sleep(50 * time.Millisecond)
	for i := range c.replicas {
		if c.replicas[i].Delivered() != 0 {
			t.Fatalf("replica %d committed a digest-mismatched proposal", i)
		}
	}
}

func TestProposeAfterCloseFails(t *testing.T) {
	c := newCluster(t, 1, p2p.Config{})
	c.replicas[0].Close()
	if _, err := c.replicas[0].Propose([]byte("x")); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestLargerClusterAgrees(t *testing.T) {
	c := newCluster(t, 7, p2p.Config{}) // f = 2, quorum 5
	if c.replicas[0].Quorum() != 5 {
		t.Fatalf("quorum = %d, want 5", c.replicas[0].Quorum())
	}
	c.replicas[0].Propose([]byte("wide"))
	for i := range c.replicas {
		if err := c.replicas[i].WaitDelivered(1, 3*time.Second); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
}
