package consensus

import (
	"crypto/sha256"
	"sort"
	"time"

	"confide/internal/p2p"
)

// This file contains the machinery that keeps PBFT live on a lossy,
// partitioned network with crash/recovery faults:
//
//   - a progress timer that votes a view change when pending work stalls
//     under a silent leader (no manual RequestViewChange needed);
//   - periodic retransmission, with per-instance exponential backoff, of
//     this replica's unacknowledged pre-prepares / prepares / commits and
//     of its outstanding view-change vote;
//   - a status heartbeat (view + delivered count). f+1 peers observed at a
//     higher view is proof a quorum adopted it (at least one of the f+1 is
//     correct), so a rejoining replica jumps forward without re-running
//     the vote; a peer with a higher delivered count is the target for a
//     catch-up fetch;
//   - a fetch-by-sequence protocol: replicas that missed a pre-prepare
//     (but see prepare/commit votes for it) or whole committed sequences
//     (crash, partition) pull them from peers. In-flight payloads are only
//     accepted when f+1 distinct voters vouch for their digest; committed
//     payloads come from the responder's committed log.

// fetchWindow bounds sequences served per fetch request.
const fetchWindow = 8

// outMsg is a message staged under r.mu and sent after unlock.
type outMsg struct {
	to    p2p.NodeID // broadcast when == broadcastTo
	topic string
	data  []byte
}

const broadcastTo = ^p2p.NodeID(0)

// run is the liveness loop: one ticker drives heartbeats, the progress
// timer and retransmission until Close.
func (r *Replica) run() {
	tick := r.opts.RetransmitInterval / 2
	if hb := r.opts.HeartbeatInterval / 2; hb < tick {
		tick = hb
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.tick()
		}
	}
}

func (r *Replica) tick() {
	now := time.Now()
	var out []outMsg
	var requestVC bool

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	leaderID := p2p.NodeID(r.view % uint64(r.n))

	// Heartbeat: view + delivered, the catch-up signal for stragglers.
	if r.n > 1 && now.Sub(r.lastHeartbeat) >= r.opts.HeartbeatInterval {
		r.lastHeartbeat = now
		mHeartbeats.Inc()
		out = append(out, outMsg{to: broadcastTo, topic: topicStatus,
			data: encodeMsg(msgStatus, r.view, r.delivered, zeroDigest[:], nil)})
	}

	// Leader-silence timer: pending work with no delivery progress for
	// ViewTimeout means the leader is crashed, partitioned away, or stuck —
	// vote it out. votedFor > view means the vote is already outstanding.
	pendingWork := len(r.instances) > 0 || len(r.pending) > 0 || len(r.carry) > 0 ||
		(r.opts.WorkPending != nil && r.opts.WorkPending())
	if r.n > 1 && pendingWork && r.votedFor <= r.view &&
		now.Sub(r.lastProgress) >= r.opts.ViewTimeout {
		requestVC = true
	}

	// Retransmit the outstanding view-change vote with backoff.
	if r.votedFor > r.view && now.Sub(r.vcLastSent) >= r.vcInterval {
		r.vcLastSent = now
		r.vcInterval = backoff(r.vcInterval, r.opts.RetransmitMax)
		mRetransmits.Inc()
		out = append(out, outMsg{to: broadcastTo, topic: topicViewChange,
			data: encodeMsg(msgViewChange, r.votedFor, 0, zeroDigest[:],
				encodeVCEntries(r.preparedSet()))})
	}

	// A new leader first re-proposes payloads carried across the view
	// change, at their original sequences.
	if leaderID == r.id {
		for seq, c := range r.carry {
			if seq < r.delivered {
				delete(r.carry, seq)
				continue
			}
			inst := r.getInstance(seq)
			if inst.havePre {
				continue
			}
			inst.havePre = true
			inst.digest = c.digest
			inst.payload = c.payload
			inst.prepares[r.id] = c.digest
			if seq >= r.nextSeq {
				r.nextSeq = seq + 1
			}
			out = append(out, outMsg{to: broadcastTo, topic: topicPrePrepare,
				data: encodeMsg(msgPrePrepare, r.view, seq, c.digest[:], c.payload)})
		}
		// Gap-fill: pipelined commits can outrun a sequence that was
		// abandoned in the old view, leaving a hole below nextSeq that
		// blocks delivery forever. With the vote quorum's certificates in
		// hand (certView), a hole with no certificate provably holds no
		// prepared payload, so a no-op closes it safely. Applications skip
		// undecodable (empty) payloads.
		if r.certView == r.view {
			for seq := r.delivered; seq < r.nextSeq; seq++ {
				if _, ok := r.instances[seq]; ok {
					continue
				}
				if _, ok := r.pending[seq]; ok {
					continue
				}
				if _, ok := r.carry[seq]; ok {
					continue
				}
				inst := r.getInstance(seq)
				inst.havePre = true
				inst.digest = sha256.Sum256(nil)
				inst.prepares[r.id] = inst.digest
				out = append(out, outMsg{to: broadcastTo, topic: topicPrePrepare,
					data: encodeMsg(msgPrePrepare, r.view, seq, inst.digest[:], nil)})
			}
		}
	}

	// Per-instance retransmission with exponential backoff.
	for seq, inst := range r.instances {
		if seq < r.delivered {
			delete(r.instances, seq) // late votes resurrected a done slot
			continue
		}
		if inst.committed || now.Sub(inst.lastSent) < inst.resendIn {
			continue
		}
		inst.lastSent = now
		inst.resendIn = backoff(inst.resendIn, r.opts.RetransmitMax)
		mRetransmits.Inc()
		switch {
		case !inst.havePre:
			// Votes arrived but the pre-prepare was lost: fetch it.
			if len(inst.prepares)+len(inst.commits) > 0 {
				mFetches.Inc()
				out = append(out, outMsg{to: broadcastTo, topic: topicFetch,
					data: encodeMsg(msgFetch, r.view, seq, zeroDigest[:], nil)})
			}
		case inst.havePre && leaderID == r.id:
			out = append(out, outMsg{to: broadcastTo, topic: topicPrePrepare,
				data: encodeMsg(msgPrePrepare, r.view, seq, inst.digest[:], inst.payload)})
			fallthrough
		default:
			if !inst.sentCommit {
				out = append(out, outMsg{to: broadcastTo, topic: topicPrepare,
					data: encodeMsg(msgPrepare, r.view, seq, inst.digest[:], nil)})
			} else {
				out = append(out, outMsg{to: broadcastTo, topic: topicCommit,
					data: encodeMsg(msgCommit, r.view, seq, inst.digest[:], nil)})
			}
		}
	}

	// Delivery-gap fetch: a peer reported a higher delivered count, so the
	// sequences this replica is missing are committed — pull them.
	var bestPeer p2p.NodeID
	var bestDelivered uint64
	for id, d := range r.peerDelivered {
		if d > bestDelivered {
			bestDelivered, bestPeer = d, id
		}
	}
	if bestDelivered > r.delivered && now.Sub(r.fetchLastSent) >= r.fetchInterval {
		r.fetchLastSent = now
		r.fetchInterval = backoff(r.fetchInterval, r.opts.RetransmitMax)
		mFetches.Inc()
		out = append(out, outMsg{to: bestPeer, topic: topicFetch,
			data: encodeMsg(msgFetch, r.view, r.delivered, zeroDigest[:], nil)})
	}
	r.mu.Unlock()

	for _, m := range out {
		if m.to == broadcastTo {
			r.endpoint.Broadcast(m.topic, m.data)
		} else {
			r.endpoint.Send(m.to, m.topic, m.data)
		}
	}
	if requestVC {
		r.RequestViewChange()
	}
}

func backoff(cur, max time.Duration) time.Duration {
	next := cur * 2
	if next > max {
		next = max
	}
	return next
}

// onStatus ingests a peer heartbeat: its view (for view catch-up) and its
// delivered count (for delivery catch-up, served by the tick loop).
func (r *Replica) onStatus(m p2p.Message) {
	typ, view, delivered, _, _, err := decodeMsg(m.Data)
	if err != nil || typ != msgStatus {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if view > r.peerViews[m.From] {
		r.peerViews[m.From] = view
	}
	if delivered > r.peerDelivered[m.From] {
		r.peerDelivered[m.From] = delivered
	}
	// f+1 peers at view ≥ v ⇒ at least one correct replica adopted v, which
	// requires a 2f+1 vote quorum — safe to jump without re-voting.
	if len(r.peerViews) > r.f {
		views := make([]uint64, 0, len(r.peerViews))
		for _, v := range r.peerViews {
			views = append(views, v)
		}
		sort.Slice(views, func(i, j int) bool { return views[i] > views[j] })
		if v := views[r.f]; v > r.view {
			r.adoptView(v)
		}
	}
}

// onFetch serves a peer's catch-up request: up to fetchWindow sequences
// starting at the requested one, each either from the committed log (with
// a committed tag) or, for in-flight instances, the pre-prepare contents.
func (r *Replica) onFetch(m p2p.Message) {
	typ, _, from, _, _, err := decodeMsg(m.Data)
	if err != nil || typ != msgFetch {
		return
	}
	var out []outMsg
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	for seq := from; seq < from+fetchWindow; seq++ {
		if payload, ok := r.committedLog[seq]; ok {
			digest := sha256.Sum256(payload)
			out = append(out, outMsg{to: m.From, topic: topicFetchResp,
				data: encodeMsg(msgFetchCommitted, r.view, seq, digest[:], payload)})
			continue
		}
		if inst, ok := r.instances[seq]; ok && inst.havePre {
			out = append(out, outMsg{to: m.From, topic: topicFetchResp,
				data: encodeMsg(msgFetchResp, r.view, seq, inst.digest[:], inst.payload)})
		}
	}
	r.mu.Unlock()
	for _, o := range out {
		r.endpoint.Send(o.to, o.topic, o.data)
	}
}

// onFetchResp ingests fetched payloads. Committed payloads deliver
// directly (a fail-stop peer only reports committed what a 2f+1 quorum
// committed); in-flight payloads are accepted as the missing pre-prepare
// only when f+1 distinct voters already vouched for their digest.
func (r *Replica) onFetchResp(m p2p.Message) {
	typ, view, seq, digest, payload, err := decodeMsg(m.Data)
	if err != nil || (typ != msgFetchResp && typ != msgFetchCommitted) {
		return
	}
	if sha256.Sum256(payload) != digest {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || seq < r.delivered {
		return
	}

	if typ == msgFetchCommitted {
		inst := r.getInstance(seq)
		if inst.committed {
			return
		}
		inst.committed = true
		inst.havePre = true
		inst.digest = digest
		inst.payload = append([]byte(nil), payload...)
		r.pending[seq] = inst.payload
		if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
		r.deliverReady()
		return
	}

	// In-flight replay: same checks as a pre-prepare, except the payload is
	// vouched for by f+1 voters instead of arriving from the leader.
	if view != r.view {
		return
	}
	if c, held := r.carry[seq]; held && c.digest != digest {
		return
	}
	inst, ok := r.instances[seq]
	if !ok || inst.havePre {
		return
	}
	voters := make(map[p2p.NodeID]struct{})
	for id, d := range inst.prepares {
		if d == digest {
			voters[id] = struct{}{}
		}
	}
	for id, d := range inst.commits {
		if d == digest {
			voters[id] = struct{}{}
		}
	}
	if len(voters) < r.f+1 {
		return
	}
	inst.havePre = true
	inst.digest = digest
	inst.payload = append([]byte(nil), payload...)
	inst.prepares[r.id] = digest
	if seq >= r.nextSeq {
		r.nextSeq = seq + 1
	}
	r.mu.Unlock()
	r.endpoint.Broadcast(topicPrepare, encodeMsg(msgPrepare, view, seq, digest[:], nil))
	r.mu.Lock()
	r.maybeAdvance(seq, inst)
}
