package metrics

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("confide_test_ops_total", "ops")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("confide_test_total", "x", L{"k", "v"})
	b := r.Counter("confide_test_total", "x", L{"k", "v"})
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	c := r.Counter("confide_test_total", "x", L{"k", "other"})
	if a == c {
		t.Fatal("different labels should return a different counter")
	}
	// Label order must not matter.
	g1 := r.Gauge("confide_test_g", "", L{"a", "1"}, L{"b", "2"})
	g2 := r.Gauge("confide_test_g", "", L{"b", "2"}, L{"a", "1"})
	if g1 != g2 {
		t.Fatal("label order should not change identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("confide_test_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("confide_test_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for name %q", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestDisabledRegistryIsNoop(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("confide_test_total", "")
	g := r.Gauge("confide_test_g", "")
	h := r.Histogram("confide_test_seconds", "", nil)
	r.SetEnabled(false)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(2)
	h.Observe(1.0)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("re-enabled counter = %d, want 1", c.Value())
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(2)
	_ = c.Value()
	g.Set(1)
	g.Add(1)
	_ = g.Value()
	h.Observe(1)
	_ = h.Count()
	_ = h.Sum()
	_ = h.Snapshot()
	tr.Begin("k")
	tr.Mark("k", "x")
	tr.End("k")
	tr.Drop("k")
	_ = tr.Active()
}

func TestSnapshotAndCounterSum(t *testing.T) {
	r := NewRegistry()
	r.Counter("confide_test_drops_total", "", L{"reason", "rate"}).Add(3)
	r.Counter("confide_test_drops_total", "", L{"reason", "link"}).Add(4)
	r.Gauge("confide_test_pages", "").Set(7)
	r.Histogram("confide_test_seconds", "", nil).Observe(0.001)

	snap := r.Snapshot()
	if got := snap.CounterSum("confide_test_drops_total"); got != 7 {
		t.Fatalf("CounterSum = %d, want 7", got)
	}
	if got := snap.Gauges["confide_test_pages"]; got != 7 {
		t.Fatalf("gauge snapshot = %d, want 7", got)
	}
	if got := snap.HistogramCount("confide_test_seconds"); got != 1 {
		t.Fatalf("HistogramCount = %d, want 1", got)
	}
	if got := snap.Counters[`confide_test_drops_total{reason="rate"}`]; got != 3 {
		t.Fatalf("labelled series snapshot = %d, want 3", got)
	}
}
