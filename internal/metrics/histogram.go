package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket cumulative-style histogram. Bucket bounds are
// inclusive upper bounds (Prometheus `le` semantics): an observation v lands
// in the first bucket whose bound ≥ v, or the implicit +Inf bucket.
// Observe is lock-free: one enabled check, one bucket add, one count add and
// one CAS-loop float add for the sum.
type Histogram struct {
	enabled *atomic.Bool
	bounds  []float64 // sorted ascending, finite
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DurationBuckets is the default latency bucket layout (seconds): 20 µs up
// to 10 s, roughly 1-2.5-5 per decade — wide enough for ecall-scale costs at
// the bottom and chaos-drill convergence at the top.
var DurationBuckets = []float64{
	20e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// ExpBuckets returns n exponentially spaced bounds: start, start*factor, …
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets requires start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram returns the histogram for name+labels, registering it on first
// use. nil bounds selects DurationBuckets. Bounds must be sorted ascending;
// a first call's bounds win for the whole family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...L) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	f := r.getFamily(name, help, kindHistogram)
	return f.getSeries(labels, func() any {
		return &Histogram{
			enabled: &r.enabled,
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
	}).(*Histogram)
}

// Observe records one value. No-op on a nil or disabled histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.enabled.Load() {
		return
	}
	// Linear scan beats binary search at these bucket counts (≤ ~20) and is
	// branch-predictor friendly for the common small-latency case.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || !h.enabled.Load() {
		return
	}
	h.Observe(since(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// reporting: per-bucket counts (non-cumulative), bounds, count, sum, and
// precomputed quantiles.
type HistogramSnapshot struct {
	Bounds  []float64 // finite upper bounds; Buckets has one extra +Inf slot
	Buckets []uint64
	Count   uint64
	Sum     float64
	P50     float64
	P95     float64
	P99     float64
}

// Snapshot copies the histogram's state and computes p50/p95/p99.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		snap.Buckets[i] = h.buckets[i].Load()
	}
	snap.P50 = snap.Quantile(0.50)
	snap.P95 = snap.Quantile(0.95)
	snap.P99 = snap.Quantile(0.99)
	return snap
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the containing bucket, Prometheus histogram_quantile style: the
// lower edge of the first bucket is 0, and ranks landing in the +Inf bucket
// report the highest finite bound. Returns NaN on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Buckets {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) { // +Inf bucket
			if len(s.Bounds) == 0 {
				return math.NaN()
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		return lower + (upper-lower)*((rank-prev)/float64(c))
	}
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile estimates a quantile from the live histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	return h.Snapshot().Quantile(q)
}
