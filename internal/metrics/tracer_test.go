package metrics

import (
	"testing"
)

func newTestTracer() (*Registry, *Tracer) {
	r := NewRegistry()
	return r, NewTracer(r, "confide_test", "preverify", "order", "execute", "commit")
}

func TestTracerStageOrdering(t *testing.T) {
	r, tr := newTestTracer()
	tr.Begin("tx1")
	tr.Mark("tx1", "preverify")
	tr.Mark("tx1", "order")
	tr.Mark("tx1", "execute")
	tr.Mark("tx1", "commit")
	tr.End("tx1")

	snap := r.Snapshot()
	for _, stage := range []string{"preverify", "order", "execute", "commit"} {
		series := `confide_test_stage_seconds{stage="` + stage + `"}`
		if snap.Histograms[series].Count != 1 {
			t.Fatalf("stage %s count = %d, want 1", stage, snap.Histograms[series].Count)
		}
	}
	if snap.Histograms["confide_test_total_seconds"].Count != 1 {
		t.Fatalf("total count = %d, want 1", snap.Histograms["confide_test_total_seconds"].Count)
	}
	if tr.Active() != 0 {
		t.Fatalf("active = %d, want 0", tr.Active())
	}
}

func TestTracerMisorderRejected(t *testing.T) {
	r, tr := newTestTracer()
	tr.Begin("tx1")
	tr.Mark("tx1", "order")
	tr.Mark("tx1", "preverify") // backward: rejected
	tr.Mark("tx1", "order")     // repeat: rejected
	tr.End("tx1")

	snap := r.Snapshot()
	if got := snap.Counters["confide_test_trace_misorders_total"]; got != 2 {
		t.Fatalf("misorders = %d, want 2", got)
	}
	if got := snap.Histograms[`confide_test_stage_seconds{stage="order"}`].Count; got != 1 {
		t.Fatalf("order observations = %d, want 1", got)
	}
	if got := snap.Histograms[`confide_test_stage_seconds{stage="preverify"}`].Count; got != 0 {
		t.Fatalf("preverify observations = %d, want 0", got)
	}
}

func TestTracerForwardSkip(t *testing.T) {
	r, tr := newTestTracer()
	// A follower that never pre-verified marks "order" directly.
	tr.Begin("tx1")
	tr.Mark("tx1", "execute")
	tr.Mark("tx1", "commit")
	tr.End("tx1")
	snap := r.Snapshot()
	if got := snap.Histograms[`confide_test_stage_seconds{stage="execute"}`].Count; got != 1 {
		t.Fatalf("execute observations = %d, want 1", got)
	}
	if got := snap.Counters["confide_test_trace_misorders_total"]; got != 0 {
		t.Fatalf("misorders = %d, want 0", got)
	}
}

func TestTracerUnknownKeyIgnored(t *testing.T) {
	r, tr := newTestTracer()
	tr.Mark("ghost", "order") // no Begin: silently ignored
	tr.End("ghost")
	tr.Drop("ghost")
	snap := r.Snapshot()
	if got := snap.HistogramCount("confide_test_stage_seconds"); got != 0 {
		t.Fatalf("observations = %d, want 0", got)
	}
	if got := snap.Counters["confide_test_trace_drops_total"]; got != 0 {
		t.Fatalf("drops = %d, want 0", got)
	}
}

func TestTracerUnknownStagePanics(t *testing.T) {
	_, tr := newTestTracer()
	tr.Begin("tx1")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown stage")
		}
	}()
	tr.Mark("tx1", "nonsense")
}

func TestTracerDrop(t *testing.T) {
	r, tr := newTestTracer()
	tr.Begin("tx1")
	tr.Drop("tx1")
	snap := r.Snapshot()
	if got := snap.Counters["confide_test_trace_drops_total"]; got != 1 {
		t.Fatalf("drops = %d, want 1", got)
	}
	if got := snap.Histograms["confide_test_total_seconds"].Count; got != 0 {
		t.Fatalf("total observations = %d, want 0", got)
	}
}

func TestTracerCapBoundsTable(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, "confide_test", "a")
	tr.cap = 2
	tr.Begin("k1")
	tr.Begin("k2")
	tr.Begin("k3") // table full: dropped
	if got := tr.Active(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	snap := r.Snapshot()
	if got := snap.Counters["confide_test_trace_drops_total"]; got != 1 {
		t.Fatalf("drops = %d, want 1", got)
	}
}

func TestTracerDisabledRegistry(t *testing.T) {
	r, tr := newTestTracer()
	r.SetEnabled(false)
	tr.Begin("tx1")
	tr.Mark("tx1", "order")
	tr.End("tx1")
	if tr.Active() != 0 {
		t.Fatalf("disabled tracer opened a span")
	}
	if got := r.Snapshot().HistogramCount("confide_test_stage_seconds"); got != 0 {
		t.Fatalf("disabled tracer observed %d", got)
	}
}
