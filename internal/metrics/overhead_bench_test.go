package metrics

import (
	"testing"
	"time"
)

// These benchmarks quantify the cost of the instrumentation primitives in
// both recording and no-op (disabled) mode. The end-to-end overhead guard —
// an instrumented vs. disabled run of a Figure 10 grid cell — lives in
// internal/bench (MetricsOverhead).

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("confide_bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("confide_bench_total", "")
	r.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("confide_bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("confide_bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0001)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("confide_bench_seconds", "", nil)
	r.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0001)
	}
}

func BenchmarkTracerFullSpan(b *testing.B) {
	r := NewRegistry()
	tr := NewTracer(r, "confide_bench", "preverify", "order", "execute", "commit")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin("tx")
		tr.Mark("tx", "preverify")
		tr.Mark("tx", "order")
		tr.Mark("tx", "execute")
		tr.Mark("tx", "commit")
		tr.End("tx")
	}
}

func BenchmarkObserveSince(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("confide_bench_seconds", "", nil)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}
