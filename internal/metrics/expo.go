package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry two ways: the Prometheus text exposition
// format (version 0.0.4 — what a real scraper consumes from /metrics) and a
// human summary table (what `benchrunner -metrics` and `confide-node` print).

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelBlock renders `{k="v",...}` with an optional extra le pair, or "".
func labelBlock(labels []L, extra ...L) string {
	all := append(append([]L(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.K, escapeLabel(l.V))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders the registry in the Prometheus text exposition format.
// Families appear in registration order; series within a family in label
// order, so output is deterministic for a deterministically-built registry.
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.familiesInOrder() {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		series := make([]any, len(keys))
		labels := make([][]L, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
			labels[i] = f.labels[k]
		}
		f.mu.Unlock()
		if len(series) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for i, s := range series {
			var err error
			switch m := s.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, labelBlock(labels[i]), m.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, labelBlock(labels[i]), m.Value())
			case *Histogram:
				err = writeHistogram(w, f.name, labels[i], m.Snapshot())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, labels []L, snap HistogramSnapshot) error {
	cum := uint64(0)
	for i, bound := range snap.Bounds {
		cum += snap.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, labelBlock(labels, L{"le", formatFloat(bound)}), cum); err != nil {
			return err
		}
	}
	cum += snap.Buckets[len(snap.Buckets)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, labelBlock(labels, L{"le", "+Inf"}), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelBlock(labels), formatFloat(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelBlock(labels), snap.Count)
	return err
}

// Handler returns an http.Handler serving the exposition format — mount it
// at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// Summary renders a human-readable table: counters and gauges with values,
// histograms with count and p50/p95/p99 (milliseconds, since every shipped
// histogram observes seconds). Zero-valued series are elided so quick runs
// print only what actually moved.
func (r *Registry) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-58s %14s\n", "metric", "value")
	for _, f := range r.familiesInOrder() {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, k := range keys {
			name := seriesName(f.name, f.labels[k])
			switch m := f.series[k].(type) {
			case *Counter:
				if v := m.Value(); v > 0 {
					fmt.Fprintf(&b, "%-58s %14d\n", name, v)
				}
			case *Gauge:
				if v := m.Value(); v != 0 {
					fmt.Fprintf(&b, "%-58s %14d\n", name, v)
				}
			case *Histogram:
				snap := m.Snapshot()
				if snap.Count == 0 {
					continue
				}
				fmt.Fprintf(&b, "%-58s %14d  p50=%s p95=%s p99=%s\n",
					name, snap.Count, ms(snap.P50), ms(snap.P95), ms(snap.P99))
			}
		}
		f.mu.Unlock()
	}
	return b.String()
}

func ms(seconds float64) string {
	if math.IsNaN(seconds) {
		return "-"
	}
	return strconv.FormatFloat(seconds*1e3, 'f', 2, 64) + "ms"
}
