// Package metrics is the platform's zero-dependency observability core: a
// process-wide registry of named instruments (atomic counters, gauges and
// fixed-bucket histograms with quantile snapshots) plus a lightweight
// per-transaction stage tracer (tracer.go) and a Prometheus-text exposition
// writer (expo.go).
//
// Design constraints, in order:
//
//  1. Low overhead. Every hot-path operation (Counter.Add, Gauge.Add,
//     Histogram.Observe) is one atomic load of the enabled flag plus one or
//     two atomic adds — cheap enough that instrumentation stays enabled in
//     benchmarks (the overhead guard in the bench package keeps the delta
//     against a disabled registry under 2% on the Figure 10 grid).
//  2. Nil- and disabled-safety. Methods on nil instruments are no-ops, and
//     SetEnabled(false) turns the whole registry into a no-op recorder, so
//     call sites never need conditionals.
//  3. Stable identity. An instrument is identified by its family name plus
//     its sorted label set; asking the registry for the same identity twice
//     returns the same instrument, so packages can cache instruments in
//     package-level vars at init and never touch the registry again.
//
// Metric naming follows the Prometheus convention used across the repo:
// confide_<subsystem>_<noun>_<unit>, with _total for counters (e.g.
// confide_tee_ecalls_total, confide_pipeline_stage_seconds).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// L is one label (name/value pair) attached to an instrument.
type L struct {
	K, V string
}

// kind discriminates instrument families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds instrument families. The zero value is not usable; create
// with NewRegistry or use the process-wide Default().
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	families map[string]*family
	order    []string // family names in registration order
}

// family groups all series sharing one metric name.
type family struct {
	name string
	help string
	kind kind

	mu     sync.Mutex
	series map[string]any // labelKey → *Counter | *Gauge | *Histogram
	order  []string       // labelKeys in registration order
	labels map[string][]L // labelKey → sorted labels
}

// NewRegistry creates an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.enabled.Store(true)
	return r
}

// defaultRegistry is the process-wide registry every instrumented package
// binds to at init.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// SetEnabled flips the registry between recording and no-op. Disabling does
// not clear accumulated values.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry records.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// validateName enforces the Prometheus metric-name charset.
func validateName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			panic(fmt.Sprintf("metrics: invalid metric name %q", name))
		}
	}
}

// labelKey canonicalizes a label set. Labels are sorted by name; duplicate
// names are a programming error.
func labelKey(labels []L) (string, []L) {
	if len(labels) == 0 {
		return "", nil
	}
	sorted := append([]L(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].K < sorted[j].K })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			if sorted[i-1].K == l.K {
				panic(fmt.Sprintf("metrics: duplicate label %q", l.K))
			}
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteByte('=')
		b.WriteString(l.V)
	}
	return b.String(), sorted
}

// getFamily returns (creating if needed) the family for name, enforcing
// one-kind-per-name.
func (r *Registry) getFamily(name, help string, k kind) *family {
	validateName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:   name,
			help:   help,
			kind:   k,
			series: make(map[string]any),
			labels: make(map[string][]L),
		}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
	}
	if f.help == "" && help != "" {
		f.help = help
	}
	return f
}

// getSeries returns (creating via make) the series for the label set.
func (f *family) getSeries(labels []L, make func() any) any {
	key, sorted := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	f.series[key] = s
	f.order = append(f.order, key)
	f.labels[key] = sorted
	return s
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

// Counter is a monotone cumulative count. Safe for concurrent use; methods
// on a nil Counter are no-ops.
type Counter struct {
	enabled *atomic.Bool
	v       atomic.Uint64
}

// Counter returns the counter for name+labels, registering it on first use.
func (r *Registry) Counter(name, help string, labels ...L) *Counter {
	f := r.getFamily(name, help, kindCounter)
	return f.getSeries(labels, func() any {
		return &Counter{enabled: &r.enabled}
	}).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil || !c.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

// Gauge is an instantaneous signed value. Safe for concurrent use; methods
// on a nil Gauge are no-ops.
type Gauge struct {
	enabled *atomic.Bool
	v       atomic.Int64
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...L) *Gauge {
	f := r.getFamily(name, help, kindGauge)
	return f.getSeries(labels, func() any {
		return &Gauge{enabled: &r.enabled}
	}).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// ---------------------------------------------------------------------------
// Snapshots (programmatic access — what RunChaos asserts on)
// ---------------------------------------------------------------------------

// Snapshot is a point-in-time copy of every series in a registry, keyed by
// the full series name: `name` or `name{k="v",...}`.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, f := range r.familiesInOrder() {
		f.mu.Lock()
		for _, key := range f.order {
			series := seriesName(f.name, f.labels[key])
			switch s := f.series[key].(type) {
			case *Counter:
				snap.Counters[series] = s.Value()
			case *Gauge:
				snap.Gauges[series] = s.Value()
			case *Histogram:
				snap.Histograms[series] = s.Snapshot()
			}
		}
		f.mu.Unlock()
	}
	return snap
}

// CounterSum sums every series of a counter family (all label combinations).
func (s Snapshot) CounterSum(name string) uint64 {
	var total uint64
	for series, v := range s.Counters {
		if seriesFamily(series) == name {
			total += v
		}
	}
	return total
}

// HistogramCount sums observation counts across a histogram family.
func (s Snapshot) HistogramCount(name string) uint64 {
	var total uint64
	for series, h := range s.Histograms {
		if seriesFamily(series) == name {
			total += h.Count
		}
	}
	return total
}

// seriesFamily strips the label block from a series name.
func seriesFamily(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// seriesName renders `name{k="v",...}` (or bare name without labels).
func seriesName(name string, labels []L) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.V))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) familiesInOrder() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.families[name])
	}
	return out
}

// since is a tiny helper for "observe elapsed" call sites.
func since(start time.Time) float64 { return time.Since(start).Seconds() }
