package metrics

import (
	"bytes"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// goldenRegistry builds the deterministic registry behind the golden file.
// Every observed value is exactly representable in binary so the rendered sum
// is stable across platforms.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("confide_demo_ops_total", "operations").Add(42)
	r.Counter("confide_demo_drops_total", "drops by reason", L{"reason", "rate"}).Add(3)
	r.Counter("confide_demo_drops_total", "drops by reason", L{"reason", "link"}).Add(1)
	r.Gauge("confide_demo_pages", "resident pages").Set(7)
	h := r.Histogram("confide_demo_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(2)
	return r
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/exposition.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE confide_demo_ops_total counter",
		`confide_demo_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("response missing %q:\n%s", want, body)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	r := NewRegistry()
	r.Counter("confide_demo_total", "", L{"path", "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `confide_demo_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped series missing; got:\n%s", buf.String())
	}
}

func TestSummary(t *testing.T) {
	s := goldenRegistry().Summary()
	for _, want := range []string{
		"confide_demo_ops_total",
		"confide_demo_pages",
		"confide_demo_seconds",
		"p50=",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	// Zero-valued series are elided.
	r := goldenRegistry()
	r.Counter("confide_demo_never_total", "")
	if strings.Contains(r.Summary(), "never") {
		t.Fatalf("summary should elide zero counters:\n%s", r.Summary())
	}
}
