package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("confide_test_seconds", "", []float64{1, 2, 4})

	// le semantics: a value exactly on a bound lands in that bucket.
	h.Observe(1)   // bucket le=1
	h.Observe(1.5) // bucket le=2
	h.Observe(2)   // bucket le=2
	h.Observe(3)   // bucket le=4
	h.Observe(4)   // bucket le=4
	h.Observe(9)   // +Inf
	h.Observe(0)   // bucket le=1

	snap := h.Snapshot()
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, snap.Buckets[i], w, snap.Buckets)
		}
	}
	if snap.Count != 7 {
		t.Fatalf("count = %d, want 7", snap.Count)
	}
	if got, want := snap.Sum, 1+1.5+2+3+4+9+0.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("confide_test_seconds", "", []float64{1, 2, 4})
	// 10 observations uniformly into le=1 bucket → interpolation inside [0,1].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	snap := h.Snapshot()
	// rank(0.5) = 5 of 10, all in first bucket [0,1] → 0 + 1*(5/10) = 0.5.
	if got := snap.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.5", got)
	}

	h2 := r.Histogram("confide_test2_seconds", "", []float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h2.Observe(0.5) // le=1
	}
	for i := 0; i < 50; i++ {
		h2.Observe(3) // le=4
	}
	s2 := h2.Snapshot()
	// p95 rank = 95 → in bucket (2,4], prev cum = 50 → 2 + 2*(45/50) = 3.8.
	if got := s2.Quantile(0.95); math.Abs(got-3.8) > 1e-9 {
		t.Fatalf("p95 = %v, want 3.8", got)
	}

	// +Inf bucket reports the highest finite bound.
	h3 := r.Histogram("confide_test3_seconds", "", []float64{1, 2, 4})
	h3.Observe(100)
	if got := h3.Quantile(0.99); got != 4 {
		t.Fatalf("quantile in +Inf bucket = %v, want 4", got)
	}

	// Empty histogram → NaN.
	h4 := r.Histogram("confide_test4_seconds", "", []float64{1})
	if got := h4.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %v, want NaN", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("confide_test_seconds", "", []float64{1, 2})
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	if got, want := h.Sum(), float64(workers*perWorker)*0.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad ExpBuckets args")
		}
	}()
	ExpBuckets(0, 2, 3)
}

func TestUnsortedBoundsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted bounds")
		}
	}()
	r.Histogram("confide_test_seconds", "", []float64{2, 1})
}
