package metrics

import (
	"sync"
	"time"
)

// Tracer tracks individual items (transactions) through an ordered sequence
// of named stages, observing per-stage latency into one histogram family
// (`<name>_stage_seconds{stage="..."}`) and end-to-end latency into
// `<name>_total_seconds`. It is the pipeline instrument behind the paper's
// Figure 7 phases: seal → preverify → order → execute → commit.
//
// Semantics:
//
//   - Begin(key) starts a span at the current time.
//   - Mark(key, stage) records time-since-previous-mark into that stage's
//     histogram and advances the span to the stage after it. Stages may be
//     skipped forward (a follower that never pre-verified a transaction can
//     Mark "order" directly); marking a stage at or before one already
//     recorded is counted in <name>_trace_misorders_total and ignored, so
//     duplicate deliveries cannot double-observe.
//   - End(key) observes the span's total lifetime and retires it.
//   - Drop(key) retires a span without observing (duplicate/stale items).
//
// Marks for unknown keys are ignored (the item predates the tracer or was
// evicted). The active-span table is bounded: when full, Begin drops the new
// span and counts it in <name>_trace_drops_total. All methods are safe for
// concurrent use.
type Tracer struct {
	reg    *Registry
	stages []string
	index  map[string]int
	hists  []*Histogram
	total  *Histogram

	misorders *Counter
	drops     *Counter

	mu     sync.Mutex
	active map[string]*span
	cap    int
}

type span struct {
	start time.Time
	last  time.Time
	next  int // lowest stage index still markable
}

// DefaultTracerCap bounds in-flight spans per tracer.
const DefaultTracerCap = 1 << 16

// NewTracer creates a tracer over the ordered stage list, binding its
// instruments to r. name is the metric family prefix (e.g.
// "confide_pipeline").
func NewTracer(r *Registry, name string, stages ...string) *Tracer {
	if len(stages) == 0 {
		panic("metrics: tracer needs at least one stage")
	}
	t := &Tracer{
		reg:       r,
		stages:    append([]string(nil), stages...),
		index:     make(map[string]int, len(stages)),
		total:     r.Histogram(name+"_total_seconds", "end-to-end pipeline latency", nil),
		misorders: r.Counter(name+"_trace_misorders_total", "stage marks rejected as out of order"),
		drops:     r.Counter(name+"_trace_drops_total", "spans dropped (table full or retired unobserved)"),
		active:    make(map[string]*span),
		cap:       DefaultTracerCap,
	}
	for i, s := range stages {
		if _, dup := t.index[s]; dup {
			panic("metrics: duplicate tracer stage " + s)
		}
		t.index[s] = i
		t.hists = append(t.hists, r.Histogram(
			name+"_stage_seconds", "per-stage pipeline latency", nil, L{"stage", s}))
	}
	return t
}

// Stages returns the ordered stage names.
func (t *Tracer) Stages() []string { return append([]string(nil), t.stages...) }

// Begin opens a span for key. Re-beginning an active key is a no-op.
func (t *Tracer) Begin(key string) {
	if t == nil || !t.reg.enabled.Load() {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, live := t.active[key]; live {
		return
	}
	if len(t.active) >= t.cap {
		t.drops.Inc()
		return
	}
	t.active[key] = &span{start: now, last: now}
}

// Mark records that key just completed stage.
func (t *Tracer) Mark(key, stage string) {
	if t == nil || !t.reg.enabled.Load() {
		return
	}
	idx, known := t.index[stage]
	if !known {
		panic("metrics: unknown tracer stage " + stage)
	}
	now := time.Now()
	t.mu.Lock()
	sp, live := t.active[key]
	if !live {
		t.mu.Unlock()
		return
	}
	if idx < sp.next {
		t.mu.Unlock()
		t.misorders.Inc()
		return
	}
	elapsed := now.Sub(sp.last)
	sp.last = now
	sp.next = idx + 1
	t.mu.Unlock()
	t.hists[idx].ObserveDuration(elapsed)
}

// End retires key's span, observing its total lifetime.
func (t *Tracer) End(key string) {
	if t == nil || !t.reg.enabled.Load() {
		return
	}
	now := time.Now()
	t.mu.Lock()
	sp, live := t.active[key]
	if live {
		delete(t.active, key)
	}
	t.mu.Unlock()
	if live {
		t.total.ObserveDuration(now.Sub(sp.start))
	}
}

// Drop retires key's span without observing anything.
func (t *Tracer) Drop(key string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	_, live := t.active[key]
	if live {
		delete(t.active, key)
	}
	t.mu.Unlock()
	if live {
		t.drops.Inc()
	}
}

// Active reports the number of open spans.
func (t *Tracer) Active() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}
