// Package core implements CONFIDE's primary contribution: the Confidential
// Smart Contract Execution Engine (Confidential-Engine) and the protocols
// around it. It wires together the TEE simulator, the two virtual machines,
// the secure data module (SDM, D-Protocol), transaction pre-verification
// (Figure 7), and the client-side T-Protocol.
package core

import (
	"encoding/binary"
	"errors"
)

// Input codec: contracts receive their call payload as
//
//	u16le methodLen | method | u16le argc | (u32le argLen | arg)*
//
// The fixed-width little-endian framing is deliberately trivial to parse
// from CCL with load8().
const maxInputArgs = 256

// EncodeInput frames a method selector and its arguments.
func EncodeInput(method string, args ...[]byte) []byte {
	size := 2 + len(method) + 2
	for _, a := range args {
		size += 4 + len(a)
	}
	out := make([]byte, 0, size)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(method)))
	out = append(out, u16[:]...)
	out = append(out, method...)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(args)))
	out = append(out, u16[:]...)
	var u32 [4]byte
	for _, a := range args {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(a)))
		out = append(out, u32[:]...)
		out = append(out, a...)
	}
	return out
}

// ErrBadInput reports malformed call input.
var ErrBadInput = errors.New("core: malformed call input")

// DecodeInput reverses EncodeInput.
func DecodeInput(data []byte) (method string, args [][]byte, err error) {
	if len(data) < 2 {
		return "", nil, ErrBadInput
	}
	mlen := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	if len(data) < mlen+2 {
		return "", nil, ErrBadInput
	}
	method = string(data[:mlen])
	data = data[mlen:]
	argc := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	if argc > maxInputArgs {
		return "", nil, ErrBadInput
	}
	for i := 0; i < argc; i++ {
		if len(data) < 4 {
			return "", nil, ErrBadInput
		}
		n := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if n < 0 || len(data) < n {
			return "", nil, ErrBadInput
		}
		args = append(args, append([]byte(nil), data[:n]...))
		data = data[n:]
	}
	if len(data) != 0 {
		return "", nil, ErrBadInput
	}
	return method, args, nil
}
