package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"time"

	"confide/internal/chain"
	"confide/internal/confassets"
	"confide/internal/crypto"
	"confide/internal/metrics"
	"confide/internal/tee"
)

// The confidential-assets host interface. Contracts reach it through the
// HostConfAssets VM call with an op-coded request; the engine performs the
// group arithmetic, derives blindings deterministically from k_states, and
// enforces conservation inside the apply path. Committed balances are
// stored as opaque 74-byte records in confidential contract state — the
// SDM seals them at rest like any other cell — with this layout:
//
//	[0xCA][33-byte commitment][8-byte value BE][32-byte blinding]
//
// The commitment half is what a cell discloses (receipts, the `committed`
// CCLe grade); the value/blinding half is the opening, which never leaves
// sealed state.
const (
	caRecordMagic = 0xCA
	caRecordSize  = 1 + confassets.PointSize + 8 + confassets.ScalarSize
	caLabelSize   = 8
)

// Host op codes for the ConfAssetsCall request byte.
const (
	caOpCommit     = 1 // [op][value 8][label 8] → record
	caOpTransfer   = 2 // [op][from rec][to rec][amount 8][fromLabel 8][toLabel 8] → from'||to'
	caOpVerify     = 3 // [op][commitment 33][range proof] → [1], or rejected
	caOpCommitment = 4 // [op][record] → commitment 33
	caOpSupplyAdd  = 5 // [op][record][delta 8][cap 8][label 8] → record
	caOpAddC       = 6 // [op][commitment 33][commitment 33] → commitment 33
)

var (
	mConfCommits = metrics.Default().Counter("confide_confassets_host_ops_total",
		"confidential-assets host operations, by op", metrics.L{K: "op", V: "commit"})
	mConfTransfers = metrics.Default().Counter("confide_confassets_host_ops_total",
		"confidential-assets host operations, by op", metrics.L{K: "op", V: "transfer"})
	mConfVerifies = metrics.Default().Counter("confide_confassets_host_ops_total",
		"confidential-assets host operations, by op", metrics.L{K: "op", V: "verify"})
	mConfRejects = metrics.Default().Counter("confide_confassets_rejects_total",
		"confidential-assets operations rejected in the apply path (bad proof, overflow, conservation)")
	mConfVerifySeconds = metrics.Default().Histogram("confide_confassets_verify_seconds",
		"in-engine range-proof verification latency", nil)
)

// errConfAssets wraps every deterministic confidential-assets failure; the
// VM surfaces it as a trap, so the transaction fails at the apply path on
// every replica identically.
func confErr(format string, args ...any) error {
	mConfRejects.Inc()
	return fmt.Errorf("confassets: "+format, args...)
}

// confAssetsBlindLabel scopes the blinding-derivation key under k_states.
const confAssetsBlindLabel = "confide/confassets-blinding"

// confAssetsBlindKey derives the blinding key from the current epoch's
// k_states. Epoch advances are consensus-ordered at fixed heights, so a
// replaying replica crosses rotations at the same transactions and derives
// identical blindings. Nil for the public engine.
func (e *Engine) confAssetsBlindKey() []byte {
	if e.ring == nil {
		return nil
	}
	_, k := e.ring.SealKey()
	return crypto.DeriveSubKey(k, confAssetsBlindLabel)
}

// nextBlinding mints the next deterministic blinding factor for this
// transaction: unique per (contract, tx, label, counter).
func (f *frameEnv) nextBlinding(blindKey []byte, label []byte) *big.Int {
	r := confassets.DeriveBlinding(blindKey, f.contract[:], f.tx.txHash[:], label, f.tx.caCounter)
	f.tx.caCounter++
	return r
}

// caRecord is the decoded committed-balance record.
type caRecord struct {
	c confassets.Commitment
	v uint64
	r *big.Int
}

func (rec *caRecord) encode() []byte {
	out := make([]byte, 0, caRecordSize)
	out = append(out, caRecordMagic)
	out = append(out, rec.c.Bytes()...)
	out = binary.BigEndian.AppendUint64(out, rec.v)
	return append(out, confassets.ScalarBytes(rec.r)...)
}

// decodeCARecord parses and re-authenticates a record: the commitment must
// recompute from the carried opening, so a contract cannot fabricate
// record bytes claiming a value it never committed.
func decodeCARecord(b []byte) (*caRecord, error) {
	if len(b) != caRecordSize || b[0] != caRecordMagic {
		return nil, errors.New("malformed committed-balance record")
	}
	c, err := confassets.DecodeCommitment(b[1 : 1+confassets.PointSize])
	if err != nil {
		return nil, err
	}
	v := binary.BigEndian.Uint64(b[1+confassets.PointSize : 1+confassets.PointSize+8])
	r, err := confassets.DecodeScalar(b[1+confassets.PointSize+8:])
	if err != nil {
		return nil, err
	}
	if !confassets.Commit(v, r).Equal(c) {
		return nil, errors.New("committed-balance record fails self-authentication")
	}
	return &caRecord{c: c, v: v, r: r}, nil
}

// ConfAssetsCall implements cvm.ConfAssetsEnv. Every branch is
// deterministic: outputs depend only on the request, the transaction hash
// and consensus-ordered key material.
func (f *frameEnv) ConfAssetsCall(in []byte) ([]byte, error) {
	e := f.tx.engine
	blindKey := e.confAssetsBlindKey()
	if blindKey == nil {
		return nil, errors.New("confassets: requires the confidential engine")
	}
	if len(in) == 0 {
		return nil, confErr("empty request")
	}
	switch in[0] {
	case caOpCommit:
		if len(in) != 1+8+caLabelSize {
			return nil, confErr("commit: bad request length %d", len(in))
		}
		mConfCommits.Inc()
		v := binary.BigEndian.Uint64(in[1:9])
		r := f.nextBlinding(blindKey, in[9:])
		rec := &caRecord{c: confassets.Commit(v, r), v: v, r: r}
		return rec.encode(), nil

	case caOpTransfer:
		if len(in) != 1+2*caRecordSize+8+2*caLabelSize {
			return nil, confErr("transfer: bad request length %d", len(in))
		}
		mConfTransfers.Inc()
		off := 1
		from, err := decodeCARecord(in[off : off+caRecordSize])
		if err != nil {
			return nil, confErr("transfer: from: %v", err)
		}
		off += caRecordSize
		to, err := decodeCARecord(in[off : off+caRecordSize])
		if err != nil {
			return nil, confErr("transfer: to: %v", err)
		}
		off += caRecordSize
		amount := binary.BigEndian.Uint64(in[off : off+8])
		fromLabel := in[off+8 : off+8+caLabelSize]
		toLabel := in[off+8+caLabelSize:]
		if amount > from.v {
			return nil, confErr("transfer: insufficient committed balance")
		}
		if to.v+amount < to.v {
			return nil, confErr("transfer: recipient balance overflow")
		}
		// Conservation is enforced arithmetically: both input records were
		// re-authenticated against their commitments (decodeCARecord), and
		// the balance/overflow checks above guarantee
		// from.v + to.v == newFrom.v + newTo.v over uint64, so the
		// homomorphic difference sum(inputs) − sum(outputs) is a commitment
		// to zero by construction. No zero-proof is generated here: this
		// host derives both the outputs and their blindings itself, so a
		// proof it verified against its own material could never fail and
		// would guarantee nothing. External parties who need evidence of
		// conservation check the published commitments homomorphically, or
		// demand disclosure receipts over them.
		newFrom := &caRecord{v: from.v - amount, r: f.nextBlinding(blindKey, fromLabel)}
		newFrom.c = confassets.Commit(newFrom.v, newFrom.r)
		newTo := &caRecord{v: to.v + amount, r: f.nextBlinding(blindKey, toLabel)}
		newTo.c = confassets.Commit(newTo.v, newTo.r)
		return append(newFrom.encode(), newTo.encode()...), nil

	case caOpVerify:
		if len(in) != 1+confassets.PointSize+confassets.RangeProofSize {
			return nil, confErr("verify: bad request length %d", len(in))
		}
		mConfVerifies.Inc()
		start := time.Now()
		defer mConfVerifySeconds.ObserveSince(start)
		c, err := confassets.DecodeCommitment(in[1 : 1+confassets.PointSize])
		if err != nil {
			mConfRejects.Inc()
			return nil, nil // rejected: contract sees -1
		}
		proof, err := confassets.UnmarshalRangeProof(in[1+confassets.PointSize:])
		if err != nil || !confassets.VerifyRange(c, proof) {
			mConfRejects.Inc()
			return nil, nil // rejected: contract sees -1
		}
		return []byte{1}, nil

	case caOpCommitment:
		if len(in) != 1+caRecordSize {
			return nil, confErr("commitment: bad request length %d", len(in))
		}
		rec, err := decodeCARecord(in[1:])
		if err != nil {
			return nil, confErr("commitment: %v", err)
		}
		return rec.c.Bytes(), nil

	case caOpSupplyAdd:
		if len(in) != 1+caRecordSize+8+8+caLabelSize {
			return nil, confErr("supply: bad request length %d", len(in))
		}
		off := 1
		rec, err := decodeCARecord(in[off : off+caRecordSize])
		if err != nil {
			return nil, confErr("supply: %v", err)
		}
		off += caRecordSize
		delta := binary.BigEndian.Uint64(in[off : off+8])
		capV := binary.BigEndian.Uint64(in[off+8 : off+16])
		label := in[off+16:]
		next := rec.v + delta
		if next < rec.v {
			return nil, confErr("supply: uint64 overflow")
		}
		if capV != 0 && next > capV {
			return nil, confErr("supply: mint exceeds supply cap")
		}
		out := &caRecord{v: next, r: f.nextBlinding(blindKey, label)}
		out.c = confassets.Commit(out.v, out.r)
		return out.encode(), nil

	case caOpAddC:
		if len(in) != 1+2*confassets.PointSize {
			return nil, confErr("addc: bad request length %d", len(in))
		}
		c1, err := confassets.DecodeCommitment(in[1 : 1+confassets.PointSize])
		if err != nil {
			return nil, confErr("addc: %v", err)
		}
		c2, err := confassets.DecodeCommitment(in[1+confassets.PointSize:])
		if err != nil {
			return nil, confErr("addc: %v", err)
		}
		return c1.Add(c2).Bytes(), nil
	}
	return nil, confErr("unknown op %d", in[0])
}

// DisclosureRequest asks the engine for a selective-disclosure receipt
// over one committed state cell. Requests are authenticated: the requester
// signs the canonical statement bytes with its transaction-signing key, and
// the enclave consults the target contract's authorize rule (the same
// well-known method receipt access uses) with the requester's derived
// address before building any proof.
type DisclosureRequest struct {
	Contract  chain.Address
	Key       []byte          // state key of the committed cell
	Kind      confassets.Kind // what to prove
	Threshold uint64          // KindThreshold
	Lo, Hi    uint64          // KindInterval
	Verifier  []byte          // named-verifier tag; for KindOpen, must be the requester
	Height    uint64          // chain height, stamped by the node

	// RequesterPub is the requester's verification key (PKIX, as in
	// chain.RawTx.SenderPub); the on-chain requester address is derived
	// from it exactly as for transactions.
	RequesterPub []byte
	// SigHeight is the chain height the requester stamped into the
	// signature; the enclave bounds |Height − SigHeight| to refuse stale
	// captured requests.
	SigHeight uint64
	// Sig is the requester's ECDSA signature over SigningBytes.
	Sig []byte
}

// SigningBytes is the canonical encoding the requester signs; its SHA-256
// is the digest the contract's authorize rule decides on.
func (req *DisclosureRequest) SigningBytes() []byte {
	return confassets.DisclosureStatementBytes(req.Contract[:], req.Key,
		req.Kind, req.Threshold, req.Lo, req.Hi,
		req.Verifier, req.RequesterPub, req.SigHeight)
}

// disclosureSigWindow bounds how many blocks a signed disclosure request
// stays acceptable around its SigHeight. Within the window a captured
// request can be replayed, but a replay can only re-issue a receipt for the
// identical statement the owner already authorized.
const disclosureSigWindow = 128

// ErrDisclosureDenied is returned when the target contract's authorize rule
// refuses the requester.
var ErrDisclosureDenied = errors.New("core: disclosure: contract denied the requester")

// DisclosureReceipt unseals the committed cell inside the enclave, builds
// the requested proof, and signs the statement with the current epoch's
// sk_tx — the key whose fingerprint the attestation report vouches for.
// The opening never leaves the enclave (except for KindOpen, which is the
// explicit open-to-named-verifier tier).
//
// Before any cell is touched, the request itself must pass three gates
// inside the enclave: the requester's signature over the canonical
// statement bytes verifies, the signature's height stamp is fresh, and the
// target contract's authorize rule — a read-only execution with the
// requester as caller, exactly as for receipt access — approves the
// statement digest. KindOpen additionally requires the verifier tag to be
// the authenticated requester, so a full opening can only be issued to the
// party the contract approved, never to a bystander naming someone else.
func (e *Engine) DisclosureReceipt(req DisclosureRequest) (*confassets.Receipt, error) {
	if e.ring == nil || e.enclave == nil {
		return nil, errors.New("core: disclosure requires the confidential engine")
	}
	if len(req.Key) == 0 || len(req.Key) > 256 || len(req.Verifier) > 256 {
		return nil, errors.New("core: disclosure: bad key or verifier")
	}
	if len(req.RequesterPub) == 0 || len(req.Sig) == 0 {
		return nil, errors.New("core: disclosure: request is not signed")
	}
	var receipt *confassets.Receipt
	err := e.enclave.Ecall(len(req.Key)+len(req.Verifier)+len(req.RequesterPub)+len(req.Sig), tee.CopyInOut, func() error {
		signing := req.SigningBytes()
		if err := crypto.Verify(req.RequesterPub, signing, req.Sig); err != nil {
			return fmt.Errorf("core: disclosure: bad request signature: %w", err)
		}
		if req.Height > req.SigHeight+disclosureSigWindow || req.SigHeight > req.Height+disclosureSigWindow {
			return fmt.Errorf("core: disclosure: signature height %d outside freshness window at height %d",
				req.SigHeight, req.Height)
		}
		h := crypto.Keccak256(req.RequesterPub)
		var requester chain.Address
		copy(requester[:], h[12:])

		rec, _, err := e.sdm.loadContract(req.Contract)
		if err != nil {
			return err
		}
		if !rec.Confidential {
			return errors.New("core: disclosure: contract is not confidential")
		}

		// Consult the contract's access rule with the authenticated
		// requester as caller and the statement digest as subject; writes
		// are discarded. Anything but an explicit 0x01 approval refuses.
		digest := sha256.Sum256(signing)
		txc := &txContext{
			engine:       e,
			readSet:      make(map[string]struct{}),
			writes:       make(map[string]map[string][]byte),
			confidential: true,
		}
		input := EncodeInput(AuthorizeMethod, requester[:], digest[:])
		out, err := e.runContract(txc, req.Contract, input, requester[:], 0)
		if err != nil {
			return fmt.Errorf("core: disclosure rule: %w", err)
		}
		if len(out) != 1 || out[0] != 0x01 {
			return ErrDisclosureDenied
		}
		if req.Kind == confassets.KindOpen && !bytes.Equal(req.Verifier, requester[:]) {
			return errors.New("core: disclosure: open receipts must name the authenticated requester as verifier")
		}

		raw, found, err := e.sdm.load(req.Contract, rec.SecVer, true, req.Key)
		if err != nil {
			return err
		}
		if !found {
			return ErrNoDisclosureCell
		}
		cell, err := decodeCARecord(raw)
		if err != nil {
			return fmt.Errorf("core: disclosure: cell is not a committed balance: %w", err)
		}
		epoch := e.ring.Current()
		receipt = &confassets.Receipt{
			Kind:       req.Kind,
			Contract:   req.Contract[:],
			Key:        append([]byte(nil), req.Key...),
			Commitment: cell.c,
			Height:     req.Height,
			Epoch:      epoch,
			Verifier:   append([]byte(nil), req.Verifier...),
		}
		// Proof nonces are derived from the cell's own opening: secret and
		// deterministic. The statement parameters are mixed into the label
		// so receipts over the same cell for different statements (and the
		// two proofs of an interval) never share a nonce key — belt and
		// braces on top of the prover's own commitment binding.
		nk := crypto.DeriveSubKey(confassets.ScalarBytes(cell.r),
			fmt.Sprintf("confide/disclosure-nonce/v2|%d|%d|%d|%d", req.Kind, req.Threshold, req.Lo, req.Hi))
		switch req.Kind {
		case confassets.KindOpen:
			receipt.Value, receipt.Blinding = cell.v, cell.r
		case confassets.KindRange:
			receipt.Proof = confassets.ProveRange64(cell.v, cell.r, nk)
		case confassets.KindThreshold:
			if cell.v < req.Threshold {
				return ErrDisclosureUnsatisfied
			}
			receipt.Threshold = req.Threshold
			receipt.Proof = confassets.ProveRange64(cell.v-req.Threshold, cell.r, nk)
		case confassets.KindInterval:
			if req.Lo > req.Hi || cell.v < req.Lo || cell.v > req.Hi {
				return ErrDisclosureUnsatisfied
			}
			receipt.Lo, receipt.Hi = req.Lo, req.Hi
			receipt.Proof = confassets.ProveRange64(cell.v-req.Lo, cell.r, nk)
			negR := confassets.SubScalars(new(big.Int), cell.r)
			receipt.Proof2 = confassets.ProveRange64(req.Hi-cell.v, negR, nk)
		default:
			return fmt.Errorf("core: disclosure: unknown kind %d", req.Kind)
		}
		sk, err := e.ring.Envelope(epoch)
		if err != nil {
			return err
		}
		receipt.Sig, err = sk.SignData(receipt.SigningBytes())
		return err
	})
	if err != nil {
		return nil, err
	}
	return receipt, nil
}

// ErrNoDisclosureCell is returned when the requested state key holds no
// value.
var ErrNoDisclosureCell = errors.New("core: disclosure: no such state cell")

// ErrDisclosureUnsatisfied is returned when the committed value does not
// satisfy the requested predicate (v < threshold, or v outside [lo, hi]).
// The enclave refuses to produce the receipt rather than sign a false
// statement — and the error deliberately does not reveal the value.
var ErrDisclosureUnsatisfied = errors.New("core: disclosure: statement not satisfied")
