package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"confide/internal/chain"
	"confide/internal/crypto"
	"confide/internal/cvm"
	"confide/internal/cvm/compile"
	"confide/internal/evm"
	"confide/internal/keyepoch"
	"confide/internal/kms"
	"confide/internal/storage"
	"confide/internal/tee"
)

// Options toggles the engine's optimizations — each maps to one bar of the
// paper's Figure 12 ablation.
type Options struct {
	// CodeCache enables the decoded-program cache (OPT1).
	CodeCache bool
	// MemPool recycles VM linear memories through the enclave pool (OPT1).
	MemPool bool
	// PreVerify enables the pre-verification metadata cache (OPT3).
	PreVerify bool
	// Fuse enables superinstruction fusion in CONFIDE-VM (OPT4).
	Fuse bool
	// Compile enables the CONFIDE-VM ahead-of-time compiler: at deploy time
	// (and on first call) fused programs are lowered to closure-threaded
	// code cached alongside the decoded form; programs the compiler
	// declines fall back to the interpreter transparently. Requires
	// CodeCache (compiled units live in its entries).
	Compile bool
	// GasLimit per transaction; 0 = VM default.
	GasLimit uint64
	// CodeCacheSize bounds the code cache; 0 = 128 programs.
	CodeCacheSize int
	// EpochWindow is the key-epoch acceptance window (how many epochs behind
	// the current one an envelope may be sealed to); 0 selects
	// keyepoch.DefaultWindow.
	EpochWindow uint64
}

// AllOptimizations turns every engine optimization on (the production
// configuration).
func AllOptimizations() Options {
	return Options{CodeCache: true, MemPool: true, PreVerify: true, Fuse: true, Compile: true}
}

// Engine executes smart-contract transactions. In confidential mode it is
// the paper's Confidential-Engine: a contract-service enclave hosting the
// pre-processor, the VMs and the SDM, driven by the secrets provisioned via
// the K-Protocol. In public mode (no enclave, no secrets) it is the
// platform's ordinary Public-Engine, so the two execution paths share one
// implementation and measurements isolate exactly the cost of
// confidentiality.
type Engine struct {
	confidential bool
	enclave      *tee.Enclave
	monitor      *tee.Monitor
	// ring versions the provisioned secrets into key epochs; epoch 1 is
	// exactly the K-Protocol material, later epochs derive from the ratchet.
	ring *keyepoch.Ring
	sdm  *SDM
	codeCache    *cvm.CodeCache
	preCache     *preVerifyCache
	profile      *Profile
	opts         Options
	// hostPool recycles VM linear memories in the public engine (the paper
	// ports the memory-management optimizations to the public engine too);
	// the confidential engine uses the enclave's pool instead.
	hostPool sync.Pool
}

// CSEnclaveIdentity is the contract-service enclave's code identity.
const CSEnclaveIdentity = "confide-cs-v1"

// NewConfidentialEngine builds the TEE-backed engine. The contract-service
// enclave is created on platform; secrets normally arrive from the node's
// KM enclave via kms.NodeKM.ProvisionCS.
func NewConfidentialEngine(platform *tee.Platform, secrets *kms.Secrets, store storage.KVStore, enclaveCfg tee.Config, opts Options) (*Engine, error) {
	if enclaveCfg.CodeIdentity == "" {
		enclaveCfg.CodeIdentity = CSEnclaveIdentity
	}
	enclave, err := platform.CreateEnclave("cs-"+randomHex(), enclaveCfg)
	if err != nil {
		return nil, err
	}
	return NewConfidentialEngineOn(enclave, secrets, store, opts)
}

// NewConfidentialEngineOn builds the confidential engine over an existing
// contract-service enclave — the production flow, where the CS enclave is
// created first, receives the secrets from the KM enclave over local
// attestation, and then hosts the engine.
func NewConfidentialEngineOn(enclave *tee.Enclave, secrets *kms.Secrets, store storage.KVStore, opts Options) (*Engine, error) {
	if secrets == nil {
		return nil, errors.New("core: confidential engine requires provisioned secrets")
	}
	e := &Engine{
		confidential: true,
		enclave:      enclave,
		monitor:      tee.NewMonitor(enclave, 1<<12),
		ring:         keyepoch.NewRing(secrets.Envelope, secrets.StatesKey, opts.EpochWindow),
		profile:      NewProfile(),
		opts:         opts,
	}
	e.sdm = NewSDM(store, enclave, e.ring, e.profile)
	e.initCaches()
	return e, nil
}

// NewPublicEngine builds the plain engine (no TEE, no encryption).
func NewPublicEngine(store storage.KVStore, opts Options) *Engine {
	e := &Engine{
		confidential: false,
		profile:      NewProfile(),
		opts:         opts,
	}
	e.sdm = NewSDM(store, nil, nil, e.profile)
	e.initCaches()
	return e
}

func (e *Engine) initCaches() {
	size := e.opts.CodeCacheSize
	if size == 0 {
		size = 128
	}
	if e.opts.CodeCache {
		e.codeCache = cvm.NewCodeCache(size)
	}
	if e.opts.PreVerify {
		e.preCache = newPreVerifyCache()
	}
}

func randomHex() string {
	var b [6]byte
	_, _ = crypto.RandomKey() // ensure crypto linkage; suffix below
	for i := range b {
		b[i] = byte(time.Now().UnixNano() >> (8 * i))
	}
	return fmt.Sprintf("%x", b)
}

// checkpointMACLabel scopes the snapshot-manifest MAC key under k_states.
const checkpointMACLabel = "confide/checkpoint-manifest-mac"

// CheckpointMACKey derives the key that seals snapshot manifests, under the
// current epoch's k_states. It comes from k_states, which only provisioned
// (attested) Confidential-Engines hold, so a manifest MAC proves an enclave
// in the consortium's trust ring exported that checkpoint. A public engine
// (no secrets) returns nil and the snapshot layer runs unauthenticated.
func (e *Engine) CheckpointMACKey() []byte {
	if e.ring == nil {
		return nil
	}
	return e.CheckpointMACKeyFor(e.ring.Current())
}

// CheckpointMACKeyFor derives the manifest MAC key for a specific epoch, so
// a rejoining node can verify a manifest exported by a peer under a newer
// epoch (forward epochs derive from the ratchet without advancing the ring).
// Returns nil for a public engine or a zeroized epoch.
func (e *Engine) CheckpointMACKeyFor(epoch uint64) []byte {
	if e.ring == nil || epoch == 0 {
		return nil
	}
	key, err := e.ring.DeriveStatesKey(epoch)
	if err != nil {
		return nil
	}
	return crypto.DeriveSubKey(key, checkpointMACLabel)
}

// preVerifyMACLabel scopes the pre-verification attestation MAC key under
// k_states, separating it from the checkpoint-manifest MAC domain.
const preVerifyMACLabel = "confide/preverify-attest-mac"

// preVerifyTagLen is 8 bytes of big-endian epoch followed by an HMAC-SHA256
// digest.
const preVerifyTagLen = 8 + 32

// preVerifyMAC computes the attestation digest over (height, proposer,
// txRoot) under the epoch's derived key. Nil when the engine holds no ring
// secrets. Binding the proposer keeps a tag minted for one replica's block
// from validating another replica's block with the same height and root.
func (e *Engine) preVerifyMAC(epoch, height uint64, proposer uint32, txRoot chain.Hash) []byte {
	if e.ring == nil || epoch == 0 {
		return nil
	}
	key, err := e.ring.DeriveStatesKey(epoch)
	if err != nil {
		return nil
	}
	var msg [8 + 4 + 32]byte
	binary.BigEndian.PutUint64(msg[:8], height)
	binary.BigEndian.PutUint32(msg[8:12], proposer)
	copy(msg[12:], txRoot[:])
	mac := hmac.New(sha256.New, crypto.DeriveSubKey(key, preVerifyMACLabel))
	mac.Write(msg[:])
	return mac.Sum(nil)
}

// AttestPreVerified produces the proposer-side attestation tag for a block:
// the enclave's claim that every transaction in txs passed signature
// pre-verification (step P3) inside THIS enclave before proposal. The claim
// is enforced at the enclave boundary, not assumed: the tx root is
// recomputed from the supplied transactions and the tag is refused (nil)
// unless every public and confidential transaction has a locally verified
// pre-verification cache entry. Attestation-seeded entries do not qualify —
// trust must be grounded in a signature this enclave checked itself, never
// chained transitively through another proposer's tag. Cache lookups, root
// computation and the MAC all run in one ecall, so an untrusted host can
// neither substitute the root nor skip the cache check; forging a tag over
// unverified transactions requires compromising the enclave itself.
//
// The tag is epoch-prefixed so followers can derive the matching key across
// rotations. A public engine (no ring) returns nil and blocks go out
// untagged — followers then verify every signature themselves, exactly as
// before. Governance transactions are outside the claim (they carry no
// account signature and are checked semantically at execution).
func (e *Engine) AttestPreVerified(height uint64, proposer uint32, txs []*chain.Tx) []byte {
	if e.ring == nil || e.preCache == nil {
		return nil
	}
	attest := func() []byte {
		leaves := make([]chain.Hash, len(txs))
		for i, tx := range txs {
			leaves[i] = tx.Hash()
			switch tx.Type {
			case chain.TxTypePublic, chain.TxTypeConfidential:
				meta, ok := e.preCache.get(leaves[i])
				if !ok || !meta.verified || meta.attested {
					return nil
				}
			}
		}
		epoch := e.ring.Current()
		digest := e.preVerifyMAC(epoch, height, proposer, chain.MerkleRoot(leaves))
		if digest == nil {
			return nil
		}
		tag := make([]byte, preVerifyTagLen)
		binary.BigEndian.PutUint64(tag[:8], epoch)
		copy(tag[8:], digest)
		return tag
	}
	var tag []byte
	if e.enclave != nil {
		_ = e.enclave.Ecall(len(txs)*32, tee.CopyInOut, func() error {
			tag = attest()
			return nil
		})
	} else {
		tag = attest()
	}
	return tag
}

// VerifyPreVerifyTag checks a block's attestation tag against this enclave's
// ring. False means the follower must fall back to full per-transaction
// signature verification — an invalid tag never rejects a block, it only
// withdraws the shortcut.
func (e *Engine) VerifyPreVerifyTag(height uint64, proposer uint32, txRoot chain.Hash, tag []byte) bool {
	if e.ring == nil || len(tag) != preVerifyTagLen {
		return false
	}
	epoch := binary.BigEndian.Uint64(tag[:8])
	if epoch == 0 || !e.ring.Accepts(epoch) {
		return false
	}
	want := e.preVerifyMAC(epoch, height, proposer, txRoot)
	return want != nil && hmac.Equal(want, tag[8:])
}

// Confidential reports whether this engine runs in confidential mode (holds
// ring secrets and a CS enclave).
func (e *Engine) Confidential() bool { return e.confidential }

// CurrentEpoch reports the engine's active key epoch (0 for a public
// engine, which has no keys to version).
func (e *Engine) CurrentEpoch() uint64 {
	if e.ring == nil {
		return 0
	}
	return e.ring.Current()
}

// EpochWindow reports the acceptance window width (0 for a public engine).
func (e *Engine) EpochWindow() uint64 {
	if e.ring == nil {
		return 0
	}
	return e.ring.Window()
}

// AdvanceEpoch rotates the engine onto the next key epoch. The node calls
// it when the chain reaches a governance-ordered activation height, so every
// replica advances at the same block.
func (e *Engine) AdvanceEpoch() (uint64, error) {
	if e.ring == nil {
		return 0, errors.New("core: public engine has no key epochs")
	}
	return e.ring.Advance()
}

// AdvanceEpochTo ratchets the engine forward to the target epoch (no-op when
// already there). Recovery and snapshot install use it to adopt the chain's
// committed epoch.
func (e *Engine) AdvanceEpochTo(target uint64) error {
	if e.ring == nil {
		if target <= 1 {
			return nil
		}
		return errors.New("core: public engine has no key epochs")
	}
	return e.ring.AdvanceTo(target)
}

// StaleEpochsRetained reports whether any pre-current epoch secrets are
// still held — i.e. whether the re-seal sweep still has (potential) work.
func (e *Engine) StaleEpochsRetained() bool {
	return e.ring != nil && e.ring.Oldest() < e.ring.Current()
}

// ZeroizeDrainedEpochs erases retired epoch secrets that have fallen outside
// the acceptance window. Call only after a full re-seal sweep reported Done
// (no sealed record still carries a stale tag). Returns the number of epochs
// zeroized.
func (e *Engine) ZeroizeDrainedEpochs() int {
	if e.ring == nil {
		return 0
	}
	return e.ring.ZeroizeRetired()
}

// InvalidateStateCache drops the SDM's read cache. The node calls this
// after installing a state snapshot, whose writes land in the store
// directly and would otherwise be shadowed by stale cached plaintext.
func (e *Engine) InvalidateStateCache() { e.sdm.InvalidateCache() }

// Profile exposes the engine's instrumentation.
func (e *Engine) Profile() *Profile { return e.profile }

// Monitor exposes the enclave's exit-less status stream (nil in public
// mode).
func (e *Engine) Monitor() *tee.Monitor { return e.monitor }

// Enclave exposes the CS enclave for stats (nil in public mode).
func (e *Engine) Enclave() *tee.Enclave { return e.enclave }

// EnvelopePublicKey returns the current epoch's pk_tx for clients
// (confidential mode only).
func (e *Engine) EnvelopePublicKey() []byte {
	if e.ring == nil {
		return nil
	}
	_, pub := e.ring.PublicKey()
	return pub
}

// EnvelopeKeyInfo returns the current epoch number alongside its pk_tx, so
// clients can tag the envelopes they seal.
func (e *Engine) EnvelopeKeyInfo() (uint64, []byte) {
	if e.ring == nil {
		return 0, nil
	}
	return e.ring.PublicKey()
}

// Attest produces the engine's remote-attestation report with the pk_tx
// fingerprint locked into the report data, which is how clients defeat
// man-in-the-middle key substitution.
func (e *Engine) Attest() (tee.Report, error) {
	if e.enclave == nil {
		return tee.Report{}, errors.New("core: public engine has no enclave")
	}
	fp := crypto.PublicFingerprint(e.EnvelopePublicKey())
	return e.enclave.RemoteAttest(fp[:])
}

func (e *Engine) profileSince(op string, start time.Time) {
	e.profile.Record(op, time.Since(start))
}

// status streams an error/status line out of the enclave through the
// exit-less monitor ring (§5.3). Messages describe engine conditions only
// — never application data.
func (e *Engine) status(msg string) {
	if e.monitor != nil {
		e.monitor.Push(msg)
	}
}

// DeployContract installs code at an address. Confidential deployments are
// only accepted by the confidential engine and store the code sealed under
// k_states with the contract identity, owner and security version as
// authenticated data.
func (e *Engine) DeployContract(addr chain.Address, owner chain.Address, vm VMKind, code []byte, confidential bool, secver uint64) error {
	if confidential && !e.confidential {
		return errors.New("core: confidential contracts require the confidential engine")
	}
	// Validate eagerly so a bad deploy fails loudly, not at first call;
	// stack analysis keeps provably stack-unsafe bytecode off the chain.
	if vm == VMCVM {
		prog, err := cvm.LoadProgram(code, cvm.BuildOptions{})
		if err != nil {
			return fmt.Errorf("core: deploy: %w", err)
		}
		if err := cvm.AnalyzeProgram(prog); err != nil {
			return fmt.Errorf("core: deploy: %w", err)
		}
		// Warm the code cache at deploy time so the compile cost (and the
		// decline decision) is paid once, off the transaction path.
		if e.opts.Compile && e.codeCache != nil {
			_, _, _ = e.codeCache.LoadWithArtifact(code, cvm.BuildOptions{Fuse: e.opts.Fuse}, compileArtifact)
		}
	}
	rec := &ContractRecord{VM: vm, Confidential: confidential, SecVer: secver, Owner: owner}
	return e.sdm.storeContract(addr, rec, code)
}

// ExecResult is the outcome of executing one transaction: the plaintext
// receipt, the bytes to persist for it (sealed under k_tx when
// confidential), the buffered state writes (sealed under k_states where
// required), and the conflict-detection sets for the parallel scheduler.
type ExecResult struct {
	Receipt       *chain.Receipt
	StoredReceipt []byte
	TxHash        chain.Hash
	ReadSet       map[string]struct{}
	WriteKeys     map[string]struct{}
	// appendWrites seals and batches the write set (invoked at commit).
	appendWrites func(batch *storage.Batch) error
}

// AppendWrites seals the transaction's state writes into batch; the node
// calls it at block commit, after the scheduler has ordered results.
func (r *ExecResult) AppendWrites(batch *storage.Batch) error {
	batch.Put(ReceiptKey(r.TxHash), r.StoredReceipt)
	if r.appendWrites == nil {
		return nil
	}
	return r.appendWrites(batch)
}

// NewOrderedResult builds an ExecResult for a transaction the platform
// applies itself rather than a contract VM — governance actions like a key
// rotation. The receipt persists in the clear (governance is public by
// construction) and the optional puts land verbatim at commit. Empty
// conflict sets: platform transactions serialize through block order, not
// the OCC scheduler.
func NewOrderedResult(receipt *chain.Receipt, puts map[string][]byte) *ExecResult {
	res := &ExecResult{
		Receipt:       receipt,
		StoredReceipt: receipt.Encode(),
		TxHash:        receipt.TxHash,
		ReadSet:       map[string]struct{}{},
		WriteKeys:     map[string]struct{}{},
	}
	if len(puts) > 0 {
		res.appendWrites = func(batch *storage.Batch) error {
			for k, v := range puts {
				batch.Put([]byte(k), v)
			}
			return nil
		}
	}
	return res
}

// Execute runs one wire transaction to completion (without committing state
// — the caller owns the batch). Confidential transactions (TYPE=1) require
// the confidential engine; public ones (TYPE=0) run on either.
func (e *Engine) Execute(tx *chain.Tx) (*ExecResult, error) {
	switch tx.Type {
	case chain.TxTypePublic:
		raw, err := chain.DecodeRawTx(tx.Payload)
		if err != nil {
			return nil, err
		}
		verified := false
		if e.preCache != nil {
			if meta, ok := e.preCache.get(tx.Hash()); ok && meta.verified {
				verified = true
			}
		}
		if !verified {
			if err := e.profile.timed(OpTxVerify, raw.VerifySignature); err != nil {
				return nil, err
			}
		}
		mExecPublic.Inc()
		return e.executeRaw(tx, raw, nil)

	case chain.TxTypeConfidential:
		if !e.confidential {
			return nil, errors.New("core: confidential transaction on public engine")
		}
		// The epoch header is public bytes, so the window check runs before
		// any decryption and every replica rejects stale envelopes
		// identically.
		epoch, env, err := keyepoch.ParseEnvelope(tx.Payload)
		if err != nil {
			return nil, err
		}
		if !e.ring.Accepts(epoch) {
			keyepoch.RecordStaleRejection()
			e.status("pre-processor: envelope rejected: " + keyepoch.ErrStaleEpoch.Error())
			return nil, keyepoch.ErrStaleEpoch
		}
		var raw *chain.RawTx
		var ktx []byte
		err = e.enclave.Ecall(len(tx.Payload), tee.CopyInOut, func() error {
			var err error
			raw, ktx, err = e.openConfidentialTx(tx, epoch, env)
			return err
		})
		if err != nil {
			e.status("pre-processor: envelope rejected: " + err.Error())
			return nil, err
		}
		mExecConfidential.Inc()
		return e.executeRaw(tx, raw, ktx)

	default:
		return nil, fmt.Errorf("core: unknown transaction type %d", tx.Type)
	}
}

// openConfidentialTx recovers Tx_raw and k_tx, using the pre-verification
// cache when available (steps C2/C3 of Figure 7): a hit replaces the RSA
// private-key decryption with a symmetric decryption and skips signature
// re-verification.
func (e *Engine) openConfidentialTx(tx *chain.Tx, epoch uint64, env []byte) (*chain.RawTx, []byte, error) {
	hash := tx.Hash()
	var attested bool
	if e.preCache != nil {
		meta, ok := e.preCache.get(hash)
		attested = ok && meta.attested && meta.verified
		// The symmetric fast path needs the recovered k_tx, which only local
		// pre-verification yields; an attestation-seeded entry has no key and
		// falls through to the full open below (skipping just the signature).
		if ok && len(meta.ktx) > 0 {
			start := time.Now()
			payload, err := crypto.OpenEnvelopeWithKey(env, meta.ktx)
			e.profile.Record(OpTxDecrypt, time.Since(start))
			if err != nil {
				return nil, nil, err
			}
			raw, err := chain.DecodeRawTx(payload)
			if err != nil {
				return nil, nil, err
			}
			if !meta.verified {
				return nil, nil, crypto.ErrBadSignature
			}
			return raw, meta.ktx, nil
		}
	}
	// Full path: expensive private-key decryption plus verification, with
	// the envelope key selected by the (already window-checked) epoch tag.
	sk, err := e.ring.Envelope(epoch)
	if err != nil {
		return nil, nil, err
	}
	var ktx, payload []byte
	err = e.profile.timed(OpTxDecrypt, func() error {
		var err error
		ktx, payload, err = sk.OpenEnvelope(env)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	raw, err := chain.DecodeRawTx(payload)
	if err != nil {
		return nil, nil, err
	}
	// An attestation-seeded cache entry means the proposer's enclave already
	// checked this signature and vouched for it under the ring-derived MAC;
	// re-running ECDSA here would pay the dominant per-transaction cost a
	// second time for no additional assurance within the TEE trust model.
	if !attested {
		if err := e.profile.timed(OpTxVerify, raw.VerifySignature); err != nil {
			return nil, nil, err
		}
	}
	return raw, ktx, nil
}

// executeRaw runs the decoded transaction body and assembles the result.
func (e *Engine) executeRaw(tx *chain.Tx, raw *chain.RawTx, ktx []byte) (*ExecResult, error) {
	txc := &txContext{
		engine:       e,
		readSet:      make(map[string]struct{}),
		writes:       make(map[string]map[string][]byte),
		confidential: tx.Type == chain.TxTypeConfidential,
		txHash:       tx.Hash(),
	}
	input := EncodeInput(raw.Method, raw.Args...)
	output, execErr := e.runContract(txc, raw.Contract, input, raw.From[:], 0)

	receipt := &chain.Receipt{
		TxHash:  tx.Hash(),
		From:    raw.From,
		To:      raw.Contract,
		GasUsed: txc.gasUsed,
		Output:  output,
		Logs:    txc.logs,
	}
	if execErr != nil {
		receipt.Status = chain.ReceiptFailed
		receipt.Output = []byte(execErr.Error())
		// Failed transactions must not mutate state.
		txc.writes = make(map[string]map[string][]byte)
		e.status("execution failed: " + execErr.Error())
	}

	stored := receipt.Encode()
	if txc.confidential {
		// Formula (2): Rpt_conf = Enc(k_tx, Rpt_raw). Only the transaction
		// owner (or a delegate holding k_tx) can read it.
		start := time.Now()
		sealed, err := crypto.SealAEAD(ktx, stored, receipt.TxHash[:])
		e.profile.Record(OpReceiptSeal, time.Since(start))
		if err != nil {
			return nil, err
		}
		stored = sealed
	}

	res := &ExecResult{
		Receipt:       receipt,
		StoredReceipt: stored,
		TxHash:        receipt.TxHash,
		ReadSet:       txc.readSet,
		WriteKeys:     txc.writeSetKeys(),
	}
	writes := txc.writes
	res.appendWrites = func(batch *storage.Batch) error {
		for addrHex, w := range writes {
			var addr chain.Address
			copy(addr[:], mustHex(addrHex))
			rec, _, err := e.sdm.loadContract(addr)
			if err != nil {
				return err
			}
			conf := txc.confidential && rec.Confidential
			if err := e.sdm.sealWrites(addr, rec.SecVer, conf, w, batch); err != nil {
				return err
			}
		}
		return nil
	}
	return res, nil
}

func mustHex(s string) []byte {
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		out[i] = unhexByte(s[2*i])<<4 | unhexByte(s[2*i+1])
	}
	return out
}

func unhexByte(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10
	}
	return 0
}

// runContract loads and executes one contract frame (used for both the
// entry call and nested cross-contract calls).
func (e *Engine) runContract(txc *txContext, addr chain.Address, input []byte, caller []byte, depth int) ([]byte, error) {
	start := time.Now()
	defer func() { e.profile.Record(OpContractCall, time.Since(start)) }()

	loadStart := time.Now()
	rec, code, err := e.sdm.loadContract(addr)
	e.profile.Record(OpCodeLoad, time.Since(loadStart))
	if err != nil {
		return nil, err
	}
	// A transaction executes entirely within contracts of its own
	// confidentiality class. One direction is mandatory for secrecy (a
	// public transaction must not reach confidential code or state); the
	// other prevents a confidential flow from writing public state through
	// the confidential engine — both an information leak and a cache-
	// coherence hazard, since each class's state is owned by one engine.
	if rec.Confidential != txc.confidential {
		if rec.Confidential {
			return nil, errors.New("core: public transaction cannot call a confidential contract")
		}
		return nil, errors.New("core: confidential transaction cannot call a public contract")
	}

	frame := &frameEnv{
		tx:       txc,
		contract: addr,
		record:   rec,
		input:    input,
		caller:   append([]byte(nil), caller...),
		depth:    depth,
	}

	switch rec.VM {
	case VMCVM:
		var prog *cvm.Program
		var unit *compile.Unit
		if e.codeCache != nil {
			var art any
			if e.opts.Compile {
				prog, art, err = e.codeCache.LoadWithArtifact(code, cvm.BuildOptions{Fuse: e.opts.Fuse}, compileArtifact)
				if u, ok := art.(*compile.Unit); ok {
					unit = u
				} else if art != nil {
					// Decline tombstone: decided once per code hash, every
					// later invocation interprets without re-compiling.
					compile.RecordFallbackRun()
				}
			} else {
				prog, err = e.codeCache.Load(code, cvm.BuildOptions{Fuse: e.opts.Fuse})
			}
		} else {
			prog, err = cvm.LoadProgram(code, cvm.BuildOptions{Fuse: e.opts.Fuse})
		}
		if err != nil {
			return nil, err
		}
		cfg := cvm.Config{GasLimit: e.opts.GasLimit}
		var pooled []byte
		if e.opts.MemPool {
			if e.enclave != nil {
				if buf, perr := e.enclave.Pool().Get(8 * cvm.PageSize); perr == nil {
					pooled = buf[:cap(buf)]
				}
			} else if buf, ok := e.hostPool.Get().([]byte); ok {
				pooled = buf
			} else {
				pooled = make([]byte, 8*cvm.PageSize)
			}
			cfg.MemoryBuffer = pooled
		}
		var runErr error
		if unit != nil {
			var used uint64
			_, used, runErr = unit.Run(frame, cfg)
			txc.gasUsed += used
		} else {
			vm := cvm.NewVM(prog, frame, cfg)
			_, runErr = vm.Run()
			txc.gasUsed += vm.GasUsed()
		}
		if pooled != nil {
			if e.enclave != nil {
				e.enclave.Pool().Put(pooled)
			} else {
				e.hostPool.Put(pooled) //nolint:staticcheck // slice reuse
			}
		}
		if runErr != nil {
			return nil, runErr
		}
		return frame.output, nil

	case VMEVM:
		vm := evm.New(code, frame, evm.Config{GasLimit: e.opts.GasLimit})
		runErr := vm.Run()
		txc.gasUsed += vm.GasUsed()
		if runErr != nil {
			return nil, runErr
		}
		return frame.output, nil
	}
	return nil, fmt.Errorf("core: unknown VM kind %d", rec.VM)
}

// ReadReceipt fetches a stored receipt's bytes (sealed for confidential
// transactions).
func ReadReceipt(store storage.KVStore, txHash chain.Hash) ([]byte, bool, error) {
	return store.Get(ReceiptKey(txHash))
}
