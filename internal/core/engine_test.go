package core

import (
	"bytes"
	"strings"
	"testing"

	"confide/internal/ccl"
	"confide/internal/chain"
	"confide/internal/kms"
	"confide/internal/storage"
	"confide/internal/tee"
)

// counterSrc is the test contract: a tiny key-value service.
//
//	set <bytes>   stores the first argument under key "v"
//	get           outputs the stored value
//	fail          writes then reverts (state must roll back)
//	callget <addr> cross-contract "get" on the 20-byte address argument
const counterSrc = `
fn u16at(p) -> int { return load8(p) + (load8(p + 1) << 8); }
fn u32at(p) -> int {
	return load8(p) + (load8(p+1) << 8) + (load8(p+2) << 16) + (load8(p+3) << 24);
}

fn invoke() {
	let n = input_size();
	let buf = alloc(n + 8);
	input_read(buf, 0, n);
	let mlen = u16at(buf);
	let m = buf + 2;
	let argp = m + mlen + 2;      // skip argc (u16)
	let a1len = u32at(argp);
	let a1 = argp + 4;
	let c = load8(m);
	if c == 115 { // 's'et
		storage_set("v", 1, a1, a1len);
		log("stored", 6);
	}
	if c == 103 { // 'g'et
		let gout = alloc(256);
		let gn = storage_get("v", 1, gout, 256);
		if gn < 0 { gn = 0; }
		output(gout, gn);
	}
	if c == 102 { // 'f'ail after writing
		storage_set("v", 1, "junk", 4);
		fail();
	}
	if c == 99 { // 'c'allget: arg is the callee address
		let cin = "\x03\x00get\x00\x00";
		let cout = alloc(256);
		let cn = call(a1, cin, 7, cout, 256);
		if cn < 0 { cn = 0; }
		output(cout, cn);
	}
	if c == 119 { // 'w'ho: output caller address
		let who = alloc(20);
		caller(who);
		output(who, 20);
	}
}
`

// testStack bundles a confidential engine, its store and platform.
type testStack struct {
	engine  *Engine
	public  *Engine
	store   *storage.MemStore
	root    *tee.RootOfTrust
	secrets *kms.Secrets
}

// sharedSecrets caches one RSA keypair across tests (keygen is slow).
var sharedSecrets *kms.Secrets

func newStack(t *testing.T, opts Options) *testStack {
	t.Helper()
	root, err := tee.NewRootOfTrust()
	if err != nil {
		t.Fatal(err)
	}
	platform := tee.NewPlatform(root)
	if sharedSecrets == nil {
		sharedSecrets, err = kms.GenerateSecrets()
		if err != nil {
			t.Fatal(err)
		}
	}
	store := storage.NewMemStore()
	engine, err := NewConfidentialEngine(platform, sharedSecrets, store, tee.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testStack{
		engine:  engine,
		public:  NewPublicEngine(store, opts),
		store:   store,
		root:    root,
		secrets: sharedSecrets,
	}
}

var (
	counterAddr = chain.AddressFromBytes([]byte("counter-contract"))
	ownerAddr   = chain.AddressFromBytes([]byte("owner"))
)

func deployCounter(t *testing.T, e *Engine, addr chain.Address, vm VMKind, confidential bool) {
	t.Helper()
	var code []byte
	if vm == VMCVM {
		mod, err := ccl.CompileCVM(counterSrc)
		if err != nil {
			t.Fatal(err)
		}
		code = mod.Encode()
	} else {
		var err error
		code, err = ccl.CompileEVM(counterSrc)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := e.DeployContract(addr, ownerAddr, vm, code, confidential, 1); err != nil {
		t.Fatal(err)
	}
}

// commit applies an execution result to the stack's store.
func commit(t *testing.T, s *testStack, res *ExecResult) {
	t.Helper()
	var batch storage.Batch
	if err := res.AppendWrites(&batch); err != nil {
		t.Fatal(err)
	}
	if err := s.store.WriteBatch(&batch); err != nil {
		t.Fatal(err)
	}
}

func TestInputCodecRoundTrip(t *testing.T) {
	in := EncodeInput("transfer", []byte("alice"), []byte{0, 1, 2}, nil)
	method, args, err := DecodeInput(in)
	if err != nil {
		t.Fatal(err)
	}
	if method != "transfer" || len(args) != 3 || string(args[0]) != "alice" {
		t.Errorf("decoded %q %q", method, args)
	}
	if len(args[2]) != 0 {
		t.Error("nil arg should round trip as empty")
	}
	for _, bad := range [][]byte{nil, {9}, {5, 0, 'a'}} {
		if _, _, err := DecodeInput(bad); err == nil {
			t.Errorf("DecodeInput(%v) should fail", bad)
		}
	}
}

func TestConfidentialEndToEnd(t *testing.T) {
	for _, vm := range []VMKind{VMCVM, VMEVM} {
		name := map[VMKind]string{VMCVM: "cvm", VMEVM: "evm"}[vm]
		t.Run(name, func(t *testing.T) {
			s := newStack(t, AllOptimizations())
			deployCounter(t, s.engine, counterAddr, vm, true)
			client, err := NewClient(s.engine.EnvelopePublicKey())
			if err != nil {
				t.Fatal(err)
			}

			// set "hello-123"
			tx, ktx, err := client.NewConfidentialTx(counterAddr, "set", []byte("hello-123"))
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.engine.Execute(tx)
			if err != nil {
				t.Fatal(err)
			}
			if res.Receipt.Status != chain.ReceiptOK {
				t.Fatalf("set failed: %s", res.Receipt.Output)
			}
			commit(t, s, res)

			// The client opens its sealed receipt with k_tx.
			sealed, found, err := ReadReceipt(s.store, res.TxHash)
			if err != nil || !found {
				t.Fatalf("receipt missing: %v", err)
			}
			rpt, err := OpenReceipt(sealed, ktx, res.TxHash)
			if err != nil {
				t.Fatal(err)
			}
			if len(rpt.Logs) != 1 || rpt.Logs[0] != "stored" {
				t.Errorf("receipt logs = %q", rpt.Logs)
			}
			if rpt.From != client.Address() || rpt.To != counterAddr {
				t.Error("receipt addresses wrong")
			}

			// get returns the stored value.
			tx2, _, err := client.NewConfidentialTx(counterAddr, "get")
			if err != nil {
				t.Fatal(err)
			}
			res2, err := s.engine.Execute(tx2)
			if err != nil {
				t.Fatal(err)
			}
			if string(res2.Receipt.Output) != "hello-123" {
				t.Errorf("get output = %q", res2.Receipt.Output)
			}
		})
	}
}

func TestConfidentialStateIsCiphertextAtRest(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	secret := []byte("super-secret-balance-42")
	tx, _, _ := client.NewConfidentialTx(counterAddr, "set", secret)
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, s, res)

	// Scan every stored byte: the plaintext must not appear anywhere — not
	// in state, not in the receipt, not in the code record.
	leaked := false
	s.store.Iterate(nil, func(k, v []byte) bool {
		if bytes.Contains(v, secret) {
			t.Errorf("plaintext found under key %q", k)
			leaked = true
		}
		return true
	})
	if leaked {
		t.Fatal("confidential data leaked to storage")
	}
	// And the raw transaction payload itself is an opaque envelope.
	if bytes.Contains(tx.Payload, secret) {
		t.Error("plaintext visible in the wire transaction")
	}
}

func TestPublicContractStaysPlain(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.public, counterAddr, VMCVM, false)
	client, _ := NewClient(nil)
	tx, err := client.NewPublicTx(counterAddr, "set", []byte("public-data"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.public.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, s, res)
	found := false
	s.store.Iterate(nil, func(k, v []byte) bool {
		if bytes.Contains(v, []byte("public-data")) {
			found = true
		}
		return true
	})
	if !found {
		t.Error("public state should be readable in the store")
	}
}

func TestFailedTxRollsBackState(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())

	tx, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte("committed"))
	res, _ := s.engine.Execute(tx)
	commit(t, s, res)

	failTx, _, _ := client.NewConfidentialTx(counterAddr, "fail")
	failRes, err := s.engine.Execute(failTx)
	if err != nil {
		t.Fatal(err)
	}
	if failRes.Receipt.Status != chain.ReceiptFailed {
		t.Fatal("fail method should produce a failed receipt")
	}
	commit(t, s, failRes)
	if len(failRes.WriteKeys) != 0 {
		t.Error("failed tx must not expose writes")
	}

	getTx, _, _ := client.NewConfidentialTx(counterAddr, "get")
	getRes, _ := s.engine.Execute(getTx)
	if string(getRes.Receipt.Output) != "committed" {
		t.Errorf("state after failed tx = %q, want %q", getRes.Receipt.Output, "committed")
	}
}

func TestCrossContractCall(t *testing.T) {
	s := newStack(t, AllOptimizations())
	calleeAddr := chain.AddressFromBytes([]byte("callee"))
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	deployCounter(t, s.engine, calleeAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())

	// Store in the callee, then read it via a cross-contract call from the
	// gateway contract.
	tx1, _, _ := client.NewConfidentialTx(calleeAddr, "set", []byte("nested-value"))
	res1, _ := s.engine.Execute(tx1)
	commit(t, s, res1)

	tx2, _, _ := client.NewConfidentialTx(counterAddr, "callget", calleeAddr[:])
	res2, err := s.engine.Execute(tx2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Receipt.Status != chain.ReceiptOK {
		t.Fatalf("callget failed: %s", res2.Receipt.Output)
	}
	if string(res2.Receipt.Output) != "nested-value" {
		t.Errorf("cross-call output = %q", res2.Receipt.Output)
	}
}

func TestCallerVisibleToContract(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(counterAddr, "who")
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	addr := client.Address()
	if !bytes.Equal(res.Receipt.Output, addr[:]) {
		t.Errorf("caller = %x, want %x", res.Receipt.Output, addr[:])
	}
}

func TestPublicEngineRejectsConfidentialTx(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(counterAddr, "get")
	if _, err := s.public.Execute(tx); err == nil {
		t.Error("public engine must reject TYPE=1 transactions")
	}
}

func TestPublicTxCannotReachConfidentialContract(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(nil)
	tx, _ := client.NewPublicTx(counterAddr, "get")
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Status != chain.ReceiptFailed {
		t.Error("public call into a confidential contract must fail")
	}
}

func TestTamperedEnvelopeRejected(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(counterAddr, "get")
	tx.Payload[len(tx.Payload)-1] ^= 1
	if _, err := s.engine.Execute(tx); err == nil {
		t.Error("tampered envelope must not execute")
	}
}

func TestBadSignatureInsideEnvelopeRejected(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	// Forge: build a raw tx, corrupt the signature, seal it ourselves.
	raw, err := client.signedRaw(counterAddr, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw.Signature[4] ^= 0xff
	ktx := make([]byte, 32)
	env, err := sealForTest(s.engine.EnvelopePublicKey(), ktx, raw.Encode())
	if err != nil {
		t.Fatal(err)
	}
	tx := &chain.Tx{Type: chain.TxTypeConfidential, Payload: env}
	if _, err := s.engine.Execute(tx); err == nil {
		t.Error("forged signature must be rejected inside the enclave")
	}
}

func TestStateRollbackAttackDetected(t *testing.T) {
	// A malicious host swaps a state ciphertext with one from a different
	// contract context (same k_states). AAD binding must catch it.
	s := newStack(t, AllOptimizations())
	otherAddr := chain.AddressFromBytes([]byte("other")) // different identity
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	deployCounter(t, s.engine, otherAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())

	t1, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte("A-value"))
	r1, _ := s.engine.Execute(t1)
	commit(t, s, r1)
	t2, _, _ := client.NewConfidentialTx(otherAddr, "set", []byte("B-value"))
	r2, _ := s.engine.Execute(t2)
	commit(t, s, r2)

	// Host-level swap: copy other's ciphertext under counter's key.
	stolen, found, _ := s.store.Get(stateKey(otherAddr, []byte("v")))
	if !found {
		t.Fatal("setup failed")
	}
	s.store.Put(stateKey(counterAddr, []byte("v")), stolen)
	s.engine.sdm.InvalidateCache()

	getTx, _, _ := client.NewConfidentialTx(counterAddr, "get")
	res, err := s.engine.Execute(getTx)
	if err == nil && res.Receipt.Status == chain.ReceiptOK {
		t.Error("cross-context ciphertext swap went undetected")
	}
}

func TestDeployValidation(t *testing.T) {
	s := newStack(t, AllOptimizations())
	if err := s.engine.DeployContract(counterAddr, ownerAddr, VMCVM, []byte("garbage"), true, 1); err == nil {
		t.Error("garbage module should not deploy")
	}
	if err := s.public.DeployContract(counterAddr, ownerAddr, VMCVM, []byte("garbage"), true, 1); err == nil {
		t.Error("public engine cannot host confidential contracts")
	}
	clientTx := &chain.Tx{Type: 7, Payload: nil}
	if _, err := s.engine.Execute(clientTx); err == nil {
		t.Error("unknown tx type should fail")
	}
}

func TestMissingContract(t *testing.T) {
	s := newStack(t, AllOptimizations())
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(chain.AddressFromBytes([]byte("ghost")), "get")
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Status != chain.ReceiptFailed {
		t.Error("call to missing contract should fail the receipt")
	}
	if !strings.Contains(string(res.Receipt.Output), "no contract") {
		t.Errorf("receipt output = %q", res.Receipt.Output)
	}
}

func TestAttestationBindspkTx(t *testing.T) {
	s := newStack(t, AllOptimizations())
	report, err := s.engine.Attest()
	if err != nil {
		t.Fatal(err)
	}
	client, _ := NewClient(nil)
	measurement := s.engine.Enclave().Measurement()
	if err := client.VerifyEngine(report, s.root.Verifier(), measurement, s.engine.EnvelopePublicKey()); err != nil {
		t.Fatalf("honest engine rejected: %v", err)
	}
	// MITM offers its own pk_tx with the honest report.
	mitm, _ := kms.GenerateSecrets()
	client2, _ := NewClient(nil)
	if err := client2.VerifyEngine(report, s.root.Verifier(), measurement, mitm.Envelope.Public()); err == nil {
		t.Error("substituted pk_tx accepted — MITM possible")
	}
}

func TestPreVerificationPipeline(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())

	var txs []*chain.Tx
	for i := 0; i < 5; i++ {
		tx, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte{byte(i)})
		txs = append(txs, tx)
	}
	// One corrupted transaction in the batch is filtered out.
	bad, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte("bad"))
	bad.Payload[10] ^= 0xff
	txs = append(txs, bad)

	valid := s.engine.PreVerifyBatch(txs)
	if len(valid) != 5 {
		t.Fatalf("valid = %d, want 5", len(valid))
	}
	if s.engine.PreVerifiedCount() != 5 {
		t.Fatalf("cached = %d, want 5", s.engine.PreVerifiedCount())
	}
	// Execution uses the cache entries but keeps them (a transaction may
	// re-execute within a block); the node drops them at commit.
	var hashes []chain.Hash
	for _, tx := range valid {
		if _, err := s.engine.Execute(tx); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, tx.Hash())
	}
	if s.engine.PreVerifiedCount() != 5 {
		t.Errorf("cached = %d, want 5 (entries survive execution)", s.engine.PreVerifiedCount())
	}
	s.engine.DropPreVerified(hashes)
	if s.engine.PreVerifiedCount() != 0 {
		t.Error("DropPreVerified should clear consumed entries")
	}
	// A cache miss still executes correctly (the C2-miss path).
	tx, _, _ := client.NewConfidentialTx(counterAddr, "get")
	if _, err := s.engine.Execute(tx); err != nil {
		t.Fatal(err)
	}
}

func TestPreVerifySavesDecryptionWork(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(counterAddr, "get")

	// Execute with pre-verification: decryption happens once (in
	// pre-verify, RSA) and the execution path takes the symmetric branch.
	s.engine.Profile().Reset()
	s.engine.PreVerifyBatch([]*chain.Tx{tx})
	preSnap := s.engine.Profile().Snapshot()
	preDecrypt := preSnap[OpTxDecrypt].Duration

	s.engine.Profile().Reset()
	if _, err := s.engine.Execute(tx); err != nil {
		t.Fatal(err)
	}
	execSnap := s.engine.Profile().Snapshot()
	execDecrypt := execSnap[OpTxDecrypt].Duration
	if execDecrypt*2 >= preDecrypt {
		t.Errorf("cache-hit decrypt (%v) should be far cheaper than RSA path (%v)", execDecrypt, preDecrypt)
	}
	if execSnap[OpTxVerify].Count != 0 {
		t.Error("signature must not be re-verified on a cache hit")
	}
}

func TestProfileTable(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte("x"))
	if _, err := s.engine.Execute(tx); err != nil {
		t.Fatal(err)
	}
	table := s.engine.Profile().Table()
	for _, want := range []string{"Contract Call", "SetStorage", "Ratio"} {
		if !strings.Contains(table, want) {
			t.Errorf("profile table missing %q:\n%s", want, table)
		}
	}
}

func TestEnclaveCostsAccrue(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte("x"))
	if _, err := s.engine.Execute(tx); err != nil {
		t.Fatal(err)
	}
	st := s.engine.Enclave().Stats()
	if st.Ecalls == 0 {
		t.Error("confidential execution should enter the enclave")
	}
	if st.Ocalls == 0 {
		t.Error("storage access should leave the enclave")
	}
}
