package core

import (
	"bytes"
	"math/big"
	"testing"

	"confide/internal/ccl"
	"confide/internal/chain"
	"confide/internal/confassets"
	"confide/internal/crypto"
)

// caTestSrc is a minimal committed-balance contract for engine-level tests:
//
//	mint <value8>  commits the 8-byte BE value, stores the record at "bal"
//	comm           outputs the stored record's 33-byte commitment
//	vchk <c33+proof> asks the host to verify a client range proof
//	grant <addr20> grants disclosure/receipt access to an address
//	authorize <addr20> <digest32> approves when a grant exists
const caTestSrc = `
fn u16at(p) -> int { return load8(p) + (load8(p + 1) << 8); }
fn u32at(p) -> int {
	return load8(p) + (load8(p+1) << 8) + (load8(p+2) << 16) + (load8(p+3) << 24);
}

fn invoke() {
	let n = input_size();
	let buf = alloc(n + 8);
	input_read(buf, 0, n);
	let mlen = u16at(buf);
	let m = buf + 2;
	let argp = m + mlen + 2;
	let a1len = u32at(argp);
	let a1 = argp + 4;
	let c = load8(m);
	if c == 109 { // 'm'int
		let hinm = alloc(17);
		store8(hinm, 1);
		memcpy(hinm + 1, a1, 8);
		memcpy(hinm + 9, "balance\x00", 8);
		let recm = alloc(80);
		let rnm = confassets(hinm, 17, recm, 80);
		if rnm != 74 { fail(); }
		storage_set("bal", 3, recm, 74);
	}
	if c == 99 { // 'c'omm
		let recc = alloc(80);
		let rnc = storage_get("bal", 3, recc, 80);
		if rnc != 74 { fail(); }
		let hinc = alloc(76);
		store8(hinc, 4);
		memcpy(hinc + 1, recc, 74);
		let cm = alloc(33);
		let cn = confassets(hinc, 75, cm, 33);
		if cn != 33 { fail(); }
		output(cm, 33);
	}
	if c == 118 { // 'v'chk: arg = commitment || range proof
		let hinv = alloc(a1len + 1);
		store8(hinv, 3);
		memcpy(hinv + 1, a1, a1len);
		let resv = alloc(8);
		let vn = confassets(hinv, a1len + 1, resv, 8);
		if vn != 1 { fail(); }
		output(resv, 1);
	}
	if c == 103 { // 'g'rant <requester-addr(20)>
		let one = alloc(4);
		store8(one, 1);
		storage_set(a1, 20, one, 1);
	}
	if c == 97 { // 'a'uthorize <requester(20)> <digest(32)>
		let tmp = alloc(4);
		let got = storage_get(a1, 20, tmp, 4);
		let res = alloc(4);
		if got == 1 {
			store8(res, 1);
		} else {
			store8(res, 0);
		}
		output(res, 1);
	}
}
`

func deployCA(t *testing.T, e *Engine, addr chain.Address) {
	t.Helper()
	mod, err := ccl.CompileCVM(caTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployContract(addr, ownerAddr, VMCVM, mod.Encode(), true, 1); err != nil {
		t.Fatal(err)
	}
}

// TestConfAssetsReplicaDeterminism is the determinism contract: two
// independent engines provisioned with the same secrets must derive
// byte-identical commitments for the same transaction — the property the
// consensus apply path needs for committed state to agree across replicas.
func TestConfAssetsReplicaDeterminism(t *testing.T) {
	addr := chain.AddressFromBytes([]byte("ca-determinism"))
	a := newStack(t, AllOptimizations())
	b := newStack(t, Options{}) // different optimization profile on purpose
	deployCA(t, a.engine, addr)
	deployCA(t, b.engine, addr)

	client, err := NewClient(a.engine.EnvelopePublicKey())
	if err != nil {
		t.Fatal(err)
	}
	value := []byte{0, 0, 0, 0, 0, 0, 0x30, 0x39} // 12345 BE
	mint, _, err := client.NewConfidentialTx(addr, "mint", value)
	if err != nil {
		t.Fatal(err)
	}
	read, _, err := client.NewConfidentialTx(addr, "comm")
	if err != nil {
		t.Fatal(err)
	}

	var outs [][]byte
	for _, s := range []*testStack{a, b} {
		res, err := s.engine.Execute(mint)
		if err != nil {
			t.Fatal(err)
		}
		if res.Receipt.Status != chain.ReceiptOK {
			t.Fatalf("mint failed: %s", res.Receipt.Output)
		}
		commit(t, s, res)
		res, err = s.engine.Execute(read)
		if err != nil {
			t.Fatal(err)
		}
		if res.Receipt.Status != chain.ReceiptOK {
			t.Fatalf("comm failed: %s", res.Receipt.Output)
		}
		if len(res.Receipt.Output) != confassets.PointSize {
			t.Fatalf("commitment output %d bytes", len(res.Receipt.Output))
		}
		outs = append(outs, res.Receipt.Output)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("replicas derived different commitments:\n  a=%x\n  b=%x", outs[0], outs[1])
	}

	// The full derivation chain is re-computable from the provisioned
	// secrets: epoch-1 k_states → blinding key → blinding(contract, tx,
	// label, counter 0) → commitment.
	blindKey := crypto.DeriveSubKey(a.secrets.StatesKey, confAssetsBlindLabel)
	r := confassets.DeriveBlinding(blindKey, addr[:], txHashBytes(mint), []byte("balance\x00"), 0)
	want := confassets.Commit(12345, r)
	if !bytes.Equal(outs[0], want.Bytes()) {
		t.Fatalf("commitment does not match the documented derivation chain")
	}
}

// TestConfAssetsHostVerify drives the op3 proof-check host call: a valid
// client-side range proof passes, a bit-flipped one is rejected at the
// apply path (the transaction fails).
func TestConfAssetsHostVerify(t *testing.T) {
	addr := chain.AddressFromBytes([]byte("ca-verify"))
	s := newStack(t, AllOptimizations())
	deployCA(t, s.engine, addr)

	client, err := NewClient(s.engine.EnvelopePublicKey())
	if err != nil {
		t.Fatal(err)
	}
	r := confassets.DeriveBlinding([]byte("client-secret"), []byte("c"), []byte("t"), []byte("l"), 0)
	proof := confassets.ProveRange64(777, r, []byte("client-nonce")).Marshal()
	arg := append(confassets.Commit(777, r).Bytes(), proof...)

	tx, _, err := client.NewConfidentialTx(addr, "vchk", arg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Status != chain.ReceiptOK || !bytes.Equal(res.Receipt.Output, []byte{1}) {
		t.Fatalf("valid proof rejected: %s", res.Receipt.Output)
	}

	// Tamper with one proof byte: the host reports rejection, the contract
	// fails, and the transaction lands as a failed receipt with no writes.
	bad := append([]byte(nil), arg...)
	bad[confassets.PointSize+100] ^= 0x01
	tx2, _, err := client.NewConfidentialTx(addr, "vchk", bad)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.engine.Execute(tx2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Status != chain.ReceiptFailed {
		t.Fatal("tampered proof executed successfully")
	}
}

// runCA executes one confidential transaction against the test contract and
// commits it.
func runCA(t *testing.T, s *testStack, client *Client, addr chain.Address, method string, args ...[]byte) {
	t.Helper()
	tx, _, err := client.NewConfidentialTx(addr, method, args...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Status != chain.ReceiptOK {
		t.Fatalf("%s failed: %s", method, res.Receipt.Output)
	}
	commit(t, s, res)
}

// TestDisclosureReceiptEngine exercises Engine.DisclosureReceipt for every
// kind, verifying each receipt offline against the attested pk_tx. Requests
// are signed by a client the contract granted; the authentication and
// authorization gates are exercised negatively below.
func TestDisclosureReceiptEngine(t *testing.T) {
	addr := chain.AddressFromBytes([]byte("ca-disclose"))
	s := newStack(t, AllOptimizations())
	deployCA(t, s.engine, addr)

	client, err := NewClient(s.engine.EnvelopePublicKey())
	if err != nil {
		t.Fatal(err)
	}
	clientAddr := client.Address()
	value := []byte{0, 0, 0, 0, 0, 0, 0x13, 0x88} // 5000 BE
	runCA(t, s, client, addr, "mint", value)
	runCA(t, s, client, addr, "grant", clientAddr[:])

	sign := func(req DisclosureRequest) DisclosureRequest {
		t.Helper()
		if err := client.SignDisclosure(&req); err != nil {
			t.Fatal(err)
		}
		return req
	}

	pkTx := s.engine.EnvelopePublicKey()
	reqs := []DisclosureRequest{
		{Contract: addr, Key: []byte("bal"), Kind: confassets.KindOpen, Height: 3, SigHeight: 3, Verifier: clientAddr[:]},
		{Contract: addr, Key: []byte("bal"), Kind: confassets.KindRange, Height: 3, SigHeight: 3},
		{Contract: addr, Key: []byte("bal"), Kind: confassets.KindThreshold, Threshold: 1000, Height: 3, SigHeight: 3},
		{Contract: addr, Key: []byte("bal"), Kind: confassets.KindInterval, Lo: 4000, Hi: 6000, Height: 3, SigHeight: 3, Verifier: []byte("auditor")},
	}
	for _, req := range reqs {
		rcpt, err := s.engine.DisclosureReceipt(sign(req))
		if err != nil {
			t.Fatalf("%v: %v", req.Kind, err)
		}
		if err := rcpt.Verify(pkTx, crypto.VerifyP256); err != nil {
			t.Fatalf("%v: offline verification failed: %v", req.Kind, err)
		}
		// Round-trip through the wire form, as the gateway serves it.
		dec, err := confassets.DecodeReceipt(rcpt.Encode())
		if err != nil {
			t.Fatalf("%v: decode: %v", req.Kind, err)
		}
		if err := dec.Verify(pkTx, crypto.VerifyP256); err != nil {
			t.Fatalf("%v: decoded receipt failed: %v", req.Kind, err)
		}
		if req.Kind == confassets.KindOpen && dec.Value != 5000 {
			t.Fatalf("open receipt value %d", dec.Value)
		}
	}

	// Unsatisfiable predicates must refuse, not sign a false statement.
	if _, err := s.engine.DisclosureReceipt(sign(DisclosureRequest{
		Contract: addr, Key: []byte("bal"), Kind: confassets.KindThreshold, Threshold: 10_000,
	})); err != ErrDisclosureUnsatisfied {
		t.Fatalf("threshold 10000 over value 5000: got %v", err)
	}
	if _, err := s.engine.DisclosureReceipt(sign(DisclosureRequest{
		Contract: addr, Key: []byte("bal"), Kind: confassets.KindInterval, Lo: 0, Hi: 100,
	})); err != ErrDisclosureUnsatisfied {
		t.Fatalf("interval [0,100] over value 5000: got %v", err)
	}
	// Missing cell.
	if _, err := s.engine.DisclosureReceipt(sign(DisclosureRequest{
		Contract: addr, Key: []byte("nope"), Kind: confassets.KindRange,
	})); err != ErrNoDisclosureCell {
		t.Fatalf("missing cell: got %v", err)
	}
	// A receipt verified against the wrong pk_tx must fail.
	rcpt, err := s.engine.DisclosureReceipt(sign(reqs[1]))
	if err != nil {
		t.Fatal(err)
	}
	other, _ := crypto.GenerateEnvelopeKey()
	if rcpt.Verify(other.Public(), crypto.VerifyP256) == nil {
		t.Fatal("receipt verified against a foreign pk_tx")
	}

	// --- Authentication and authorization gates ---

	// Unsigned requests never reach the cell.
	if _, err := s.engine.DisclosureReceipt(DisclosureRequest{
		Contract: addr, Key: []byte("bal"), Kind: confassets.KindRange, Height: 3,
	}); err == nil {
		t.Fatal("unsigned disclosure request accepted")
	}
	// Tampering with a signed statement invalidates the signature.
	tampered := sign(DisclosureRequest{
		Contract: addr, Key: []byte("bal"), Kind: confassets.KindThreshold, Threshold: 1000, Height: 3, SigHeight: 3,
	})
	tampered.Threshold = 1
	if _, err := s.engine.DisclosureReceipt(tampered); err == nil {
		t.Fatal("tampered disclosure request accepted")
	}
	// A well-signed request from an ungranted identity is denied by the
	// contract's rule.
	stranger, err := NewClient(s.engine.EnvelopePublicKey())
	if err != nil {
		t.Fatal(err)
	}
	strangerReq := DisclosureRequest{
		Contract: addr, Key: []byte("bal"), Kind: confassets.KindRange, Height: 3, SigHeight: 3,
	}
	if err := stranger.SignDisclosure(&strangerReq); err != nil {
		t.Fatal(err)
	}
	if _, err := s.engine.DisclosureReceipt(strangerReq); err != ErrDisclosureDenied {
		t.Fatalf("ungranted requester: got %v", err)
	}
	// A captured signature goes stale outside the freshness window.
	stale := sign(DisclosureRequest{
		Contract: addr, Key: []byte("bal"), Kind: confassets.KindRange, SigHeight: 3,
	})
	stale.Height = 3 + disclosureSigWindow + 1
	if _, err := s.engine.DisclosureReceipt(stale); err == nil {
		t.Fatal("stale disclosure request accepted")
	}
	// Full openings are verifier-bound to the authenticated requester.
	if _, err := s.engine.DisclosureReceipt(sign(DisclosureRequest{
		Contract: addr, Key: []byte("bal"), Kind: confassets.KindOpen, Height: 3, SigHeight: 3,
		Verifier: []byte("somebody-else\x00\x00\x00\x00\x00\x00\x00"),
	})); err == nil {
		t.Fatal("open receipt issued to a verifier other than the requester")
	}
}

// TestRangeProofNonceKeyReuse is the regression test for the per-bit
// blinding binding: even if one nonce key is (wrongly) reused across two
// different commitments, no bit position may relate the two proofs' bit
// commitments by 0 or ±2^i·G — the differences that would otherwise leak
// how the two hidden values differ bit by bit.
func TestRangeProofNonceKeyReuse(t *testing.T) {
	nk := []byte("shared-nonce-key")
	r1 := confassets.DeriveBlinding([]byte("k"), []byte("c"), []byte("t"), []byte("1"), 0)
	r2 := confassets.DeriveBlinding([]byte("k"), []byte("c"), []byte("t"), []byte("2"), 0)
	p1 := confassets.ProveRange64(0xA5A5, r1, nk).Marshal()
	p2 := confassets.ProveRange64(0x5A5A, r2, nk).Marshal()
	bitStride := len(p1[1:]) / confassets.RangeBits
	zero := confassets.Commit(0, new(big.Int))
	for i := 0; i < confassets.RangeBits; i++ {
		c1, err := confassets.DecodeCommitment(p1[1+i*bitStride : 1+i*bitStride+confassets.PointSize])
		if err != nil {
			t.Fatal(err)
		}
		c2, err := confassets.DecodeCommitment(p2[1+i*bitStride : 1+i*bitStride+confassets.PointSize])
		if err != nil {
			t.Fatal(err)
		}
		d := c1.Sub(c2)
		pow := uint64(1) << uint(i)
		if d.Equal(zero) || d.SubValue(pow).Equal(zero) || d.ValueMinus(pow).Equal(zero) {
			t.Fatalf("bit %d: related bit commitments leak the value difference", i)
		}
	}
}

func txHashBytes(tx *chain.Tx) []byte {
	h := tx.Hash()
	return h[:]
}
