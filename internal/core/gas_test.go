package core

import (
	"strings"
	"testing"

	"confide/internal/ccl"
	"confide/internal/chain"
)

// Gas exhaustion must surface as a failed receipt with no state mutation —
// the platform-safety property that motivates metered execution (§2.1:
// contract pitfalls must not break the platform).

const spinSrc = `
fn invoke() {
	storage_set("touched", 7, "yes", 3);
	let i = 0;
	while i >= 0 { i = i + 1; } // never terminates on its own
}
`

func TestOutOfGasFailsReceiptAndRollsBack(t *testing.T) {
	s := newStack(t, func() Options {
		o := AllOptimizations()
		o.GasLimit = 200_000
		return o
	}())
	addr := chain.AddressFromBytes([]byte("spinner"))
	mod, err := ccl.CompileCVM(spinSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.engine.DeployContract(addr, ownerAddr, VMCVM, mod.Encode(), true, 1); err != nil {
		t.Fatal(err)
	}
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(addr, "spin")
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Status != chain.ReceiptFailed {
		t.Fatal("runaway contract must fail its receipt")
	}
	if !strings.Contains(string(res.Receipt.Output), "out of gas") {
		t.Errorf("receipt output = %q, want out-of-gas", res.Receipt.Output)
	}
	if res.Receipt.GasUsed != 200_000 {
		t.Errorf("gas used = %d, want the exact limit", res.Receipt.GasUsed)
	}
	if len(res.WriteKeys) != 0 {
		t.Error("exhausted transaction must not expose writes")
	}
}

func TestGasReportedOnSuccess(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte("x"))
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.GasUsed == 0 {
		t.Error("successful execution should report gas")
	}
}
