package core

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"confide/internal/chain"
	"confide/internal/crypto"
	"confide/internal/cvm"
	"confide/internal/keyepoch"
	"confide/internal/storage"
	"confide/internal/tee"
)

// Storage key namespaces.
const (
	nsState   = "st/" // st/<addr-hex>/<raw key>  contract state
	nsCode    = "cd/" // cd/<addr-hex>            contract code record
	nsReceipt = "rc/" // rc/<txhash-hex>          receipts
)

func stateKey(addr chain.Address, key []byte) []byte {
	out := make([]byte, 0, len(nsState)+40+1+len(key))
	out = append(out, nsState...)
	out = append(out, hex.EncodeToString(addr[:])...)
	out = append(out, '/')
	return append(out, key...)
}

func codeKey(addr chain.Address) []byte {
	return []byte(nsCode + hex.EncodeToString(addr[:]))
}

// ReceiptKey is where a transaction's receipt lives in the KV store.
func ReceiptKey(txHash chain.Hash) []byte {
	return []byte(nsReceipt + hex.EncodeToString(txHash[:]))
}

// SDM is the Secure Data Module: every interaction between the
// Confidential-Engine and the blockchain's KV store flows through it. It
// implements the D-Protocol (authenticated encryption of confidential
// state under k_states, with contract identity and security version as
// associated data) and keeps a memory cache for I/O efficiency. Crossing
// to the store from inside the enclave costs an ocall.
type SDM struct {
	store   storage.KVStore
	enclave *tee.Enclave   // nil in the public engine
	ring    *keyepoch.Ring // epoch-versioned k_states; nil in the public engine
	profile *Profile

	mu    sync.Mutex
	cache map[string][]byte // decrypted-state read cache
}

// NewSDM builds the secure data module. enclave and ring are nil for the
// public engine (no boundary costs, no encryption).
func NewSDM(store storage.KVStore, enclave *tee.Enclave, ring *keyepoch.Ring, profile *Profile) *SDM {
	return &SDM{
		store:   store,
		enclave: enclave,
		ring:    ring,
		profile: profile,
		cache:   make(map[string][]byte),
	}
}

// stateAAD binds a state ciphertext to its contract identity. The security
// version is deliberately NOT part of state AAD — it authenticates contract
// *code* (codeAAD), so upgrading a contract does not orphan its state.
func stateAAD(addr chain.Address) []byte {
	return []byte(fmt.Sprintf("confide/state/%x", addr[:]))
}

// openSealed unwraps an epoch-tagged sealed record: the tag routes the
// ciphertext to its epoch's k_states sub-key. A tampered tag reroutes to a
// different key and fails the AEAD check; a zeroized epoch's records are
// unreadable by design (they must be re-sealed before zeroization).
func (s *SDM) openSealed(stored []byte, aad []byte) ([]byte, error) {
	epoch, sealed, err := keyepoch.ParseRecord(stored)
	if err != nil {
		return nil, err
	}
	key, err := s.ring.StatesKey(epoch)
	if err != nil {
		return nil, err
	}
	return crypto.OpenAEAD(key, sealed, aad)
}

// sealRecord seals plaintext under the current epoch's k_states sub-key and
// prefixes the epoch tag.
func (s *SDM) sealRecord(value []byte, aad []byte) ([]byte, error) {
	epoch, key := s.ring.SealKey()
	sealed, err := crypto.SealAEAD(key, value, aad)
	if err != nil {
		return nil, err
	}
	return keyepoch.WrapRecord(epoch, sealed), nil
}

// load fetches and (for confidential contracts) decrypts one state value,
// charging the enclave boundary.
func (s *SDM) load(addr chain.Address, secver uint64, confidential bool, key []byte) ([]byte, bool, error) {
	sk := stateKey(addr, key)
	s.mu.Lock()
	if v, ok := s.cache[string(sk)]; ok {
		s.mu.Unlock()
		if v == nil {
			return nil, false, nil
		}
		return append([]byte(nil), v...), true, nil
	}
	s.mu.Unlock()

	var raw []byte
	var found bool
	fetch := func() error {
		var err error
		raw, found, err = s.store.Get(sk)
		return err
	}
	var err error
	if s.enclave != nil {
		err = s.enclave.Ocall(len(sk)+len(raw), tee.CopyInOut, fetch)
	} else {
		err = fetch()
	}
	if err != nil {
		return nil, false, err
	}
	if !found {
		s.mu.Lock()
		s.cache[string(sk)] = nil
		s.mu.Unlock()
		return nil, false, nil
	}
	value := raw
	if confidential && s.ring != nil {
		start := time.Now()
		value, err = s.openSealed(raw, stateAAD(addr))
		s.profile.Record(OpStateDecrypt, time.Since(start))
		if err != nil {
			return nil, false, fmt.Errorf("core: state integrity violation for %x: %w", key, err)
		}
	}
	s.mu.Lock()
	s.cache[string(sk)] = append([]byte(nil), value...)
	s.mu.Unlock()
	return value, true, nil
}

// sealWrites encrypts a transaction's write set (for confidential
// contracts) and appends it to batch. The plaintext view lands in the read
// cache so later transactions in the same block see fresh state.
func (s *SDM) sealWrites(addr chain.Address, secver uint64, confidential bool, writes map[string][]byte, batch *storage.Batch) error {
	for key, value := range writes {
		sk := stateKey(addr, []byte(key))
		stored := value
		if confidential && s.ring != nil {
			start := time.Now()
			sealed, err := s.sealRecord(value, stateAAD(addr))
			s.profile.Record(OpStateEncrypt, time.Since(start))
			if err != nil {
				return err
			}
			stored = sealed
		}
		if s.enclave != nil {
			// The sealed value leaves the enclave in one ocall.
			if err := s.enclave.Ocall(len(sk)+len(stored), tee.UserCheck, func() error { return nil }); err != nil {
				return err
			}
		}
		batch.Put(sk, stored)
		s.mu.Lock()
		s.cache[string(sk)] = append([]byte(nil), value...)
		s.mu.Unlock()
	}
	return nil
}

// InvalidateCache drops the read cache (tests, reorgs).
func (s *SDM) InvalidateCache() {
	s.mu.Lock()
	s.cache = make(map[string][]byte)
	s.mu.Unlock()
}

// forget drops specific cache entries. The re-seal sweep uses it for
// contract-code records, whose cache holds the raw stored bytes (unlike
// state entries, which cache plaintext) and would otherwise shadow the
// re-sealed ciphertext.
func (s *SDM) forget(keys ...[]byte) {
	s.mu.Lock()
	for _, k := range keys {
		delete(s.cache, string(k))
	}
	s.mu.Unlock()
}

// VMKind selects a contract's execution engine.
type VMKind uint8

// VM kinds.
const (
	VMCVM VMKind = 0
	VMEVM VMKind = 1
)

// ContractRecord is the stored form of a deployed contract.
type ContractRecord struct {
	VM           VMKind
	Confidential bool
	SecVer       uint64
	Code         []byte // encrypted when Confidential (D-Protocol)
	Owner        chain.Address
}

func codeAAD(addr chain.Address, owner chain.Address, secver uint64) []byte {
	return []byte(fmt.Sprintf("confide/code/%x/owner/%x/v%d", addr[:], owner[:], secver))
}

// encodeRecord serializes a contract record (code already sealed when
// confidential).
func encodeRecord(r *ContractRecord) []byte {
	conf := uint64(0)
	if r.Confidential {
		conf = 1
	}
	return chain.Encode(chain.List(
		chain.Uint(uint64(r.VM)),
		chain.Uint(conf),
		chain.Uint(r.SecVer),
		chain.Bytes(r.Owner[:]),
		chain.Bytes(r.Code),
	))
}

func decodeRecord(data []byte) (*ContractRecord, error) {
	it, err := chain.Decode(data)
	if err != nil || !it.IsList || len(it.List) != 5 {
		return nil, errors.New("core: malformed contract record")
	}
	var r ContractRecord
	vm, err := it.List[0].AsUint()
	if err != nil || vm > 1 {
		return nil, errors.New("core: bad vm kind")
	}
	r.VM = VMKind(vm)
	conf, err := it.List[1].AsUint()
	if err != nil {
		return nil, err
	}
	r.Confidential = conf == 1
	if r.SecVer, err = it.List[2].AsUint(); err != nil {
		return nil, err
	}
	if len(it.List[3].Str) != 20 {
		return nil, errors.New("core: bad owner address")
	}
	copy(r.Owner[:], it.List[3].Str)
	r.Code = it.List[4].Str
	return &r, nil
}

// loadContract fetches, authenticates and decodes a contract record,
// returning the plaintext code.
func (s *SDM) loadContract(addr chain.Address) (*ContractRecord, []byte, error) {
	ck := codeKey(addr)
	s.mu.Lock()
	cached, ok := s.cache[string(ck)]
	s.mu.Unlock()
	var data []byte
	if ok {
		data = cached
	} else {
		var found bool
		fetch := func() error {
			var err error
			data, found, err = s.store.Get(ck)
			return err
		}
		var err error
		if s.enclave != nil {
			err = s.enclave.Ocall(len(ck), tee.CopyInOut, fetch)
		} else {
			err = fetch()
		}
		if err != nil {
			return nil, nil, err
		}
		if !found {
			return nil, nil, fmt.Errorf("core: no contract at %s", addr)
		}
		s.mu.Lock()
		s.cache[string(ck)] = append([]byte(nil), data...)
		s.mu.Unlock()
	}
	rec, err := decodeRecord(data)
	if err != nil {
		return nil, nil, err
	}
	code := rec.Code
	if rec.Confidential {
		if s.ring == nil {
			return nil, nil, errors.New("core: confidential contract requires the confidential engine")
		}
		start := time.Now()
		code, err = s.openSealed(rec.Code, codeAAD(addr, rec.Owner, rec.SecVer))
		s.profile.Record(OpStateDecrypt, time.Since(start))
		if err != nil {
			return nil, nil, fmt.Errorf("core: contract code integrity violation: %w", err)
		}
	}
	return rec, code, nil
}

// storeContract seals (when confidential) and persists a contract record.
func (s *SDM) storeContract(addr chain.Address, rec *ContractRecord, plainCode []byte) error {
	stored := plainCode
	if rec.Confidential {
		if s.ring == nil {
			return errors.New("core: confidential deployment requires the confidential engine")
		}
		sealed, err := s.sealRecord(plainCode, codeAAD(addr, rec.Owner, rec.SecVer))
		if err != nil {
			return err
		}
		stored = sealed
	}
	out := *rec
	out.Code = stored
	if err := s.store.Put(codeKey(addr), encodeRecord(&out)); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.cache, string(codeKey(addr)))
	s.mu.Unlock()
	return nil
}

// txContext is the per-transaction shared execution state: buffered writes,
// read tracking (for the parallel scheduler's conflict detection), logs and
// gas accounting — shared by every contract frame in the call tree.
type txContext struct {
	engine       *Engine
	readSet      map[string]struct{}
	writes       map[string]map[string][]byte // addr-hex → key → value
	logs         []string
	gasUsed      uint64
	confidential bool
	// txHash and caCounter feed the confidential-assets blinding
	// derivation: every commitment minted in this transaction gets a
	// unique, replica-deterministic blinding factor.
	txHash    chain.Hash
	caCounter uint64
}

// frameEnv is one contract frame's view; it implements cvm.Env (and thus
// also the EVM's Env).
type frameEnv struct {
	tx       *txContext
	contract chain.Address
	record   *ContractRecord
	input    []byte
	output   []byte
	caller   []byte
	depth    int
}

var _ cvm.Env = (*frameEnv)(nil)

func (f *frameEnv) addrHex() string { return hex.EncodeToString(f.contract[:]) }

// GetStorage implements cvm.Env: write-set first, then SDM (cache + store).
func (f *frameEnv) GetStorage(key []byte) ([]byte, bool, error) {
	defer f.tx.engine.profileSince(OpGetStorage, time.Now())
	if w := f.tx.writes[f.addrHex()]; w != nil {
		if v, ok := w[string(key)]; ok {
			if v == nil {
				return nil, false, nil
			}
			return append([]byte(nil), v...), true, nil
		}
	}
	f.tx.readSet[string(stateKey(f.contract, key))] = struct{}{}
	return f.tx.engine.sdm.load(f.contract, f.record.SecVer, f.tx.confidential && f.record.Confidential, key)
}

// SetStorage implements cvm.Env: buffered until commit.
func (f *frameEnv) SetStorage(key, value []byte) error {
	defer f.tx.engine.profileSince(OpSetStorage, time.Now())
	w := f.tx.writes[f.addrHex()]
	if w == nil {
		w = make(map[string][]byte)
		f.tx.writes[f.addrHex()] = w
	}
	w[string(key)] = append([]byte(nil), value...)
	return nil
}

// Input implements cvm.Env.
func (f *frameEnv) Input() []byte { return f.input }

// SetOutput implements cvm.Env.
func (f *frameEnv) SetOutput(out []byte) { f.output = out }

// Log implements cvm.Env.
func (f *frameEnv) Log(msg string) { f.tx.logs = append(f.tx.logs, msg) }

// Caller implements cvm.Env.
func (f *frameEnv) Caller() []byte { return f.caller }

// CallContract implements cvm.Env: synchronous nested execution of another
// contract in the same transaction context.
func (f *frameEnv) CallContract(addr []byte, input []byte) ([]byte, error) {
	if f.depth >= 32 {
		return nil, errors.New("core: cross-contract call depth exceeded")
	}
	var target chain.Address
	copy(target[:], addr)
	return f.tx.engine.runContract(f.tx, target, input, f.contract[:], f.depth+1)
}

// writeSetKeys flattens a transaction's touched state keys (for the
// parallel scheduler).
func (tx *txContext) writeSetKeys() map[string]struct{} {
	out := make(map[string]struct{})
	for addrHex, w := range tx.writes {
		var addr chain.Address
		b, _ := hex.DecodeString(addrHex)
		copy(addr[:], b)
		for k := range w {
			out[string(stateKey(addr, []byte(k)))] = struct{}{}
		}
	}
	return out
}

// receiptDigestKey derives the cache key hash for receipts.
func receiptDigestKey(txHash chain.Hash) [32]byte { return sha256.Sum256(txHash[:]) }
