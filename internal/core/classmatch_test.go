package core

import (
	"strings"
	"testing"

	"confide/internal/ccl"
	"confide/internal/chain"
)

// Confidentiality-class isolation: a transaction executes only within
// contracts of its own class, in both directions.

const callerSrc = `
fn u16at(p) -> int { return load8(p) + (load8(p + 1) << 8); }
fn u32at(p) -> int {
	return load8(p) + (load8(p+1) << 8) + (load8(p+2) << 16) + (load8(p+3) << 24);
}
fn invoke() {
	let n = input_size();
	let buf = alloc(n + 8);
	input_read(buf, 0, n);
	let mlen = u16at(buf);
	let a0 = buf + 2 + mlen + 2;
	// arg 0 is the callee address; forward a "get".
	let in = "\x03\x00get\x00\x00";
	let out = alloc(64);
	let r = call(a0 + 4, in, 7, out, 64);
	let res = alloc(8);
	store8(res, r == 0 - 1);
	output(res, 1);
}
`

func TestConfidentialityClassIsolation(t *testing.T) {
	s := newStack(t, AllOptimizations())
	confAddr := chain.AddressFromBytes([]byte("conf-caller"))
	pubAddr := chain.AddressFromBytes([]byte("pub-callee"))
	mod, err := ccl.CompileCVM(callerSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.engine.DeployContract(confAddr, ownerAddr, VMCVM, mod.Encode(), true, 1); err != nil {
		t.Fatal(err)
	}
	// The public callee lives in the shared store via the public engine.
	pubMod, err := ccl.CompileCVM(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.public.DeployContract(pubAddr, ownerAddr, VMCVM, pubMod.Encode(), false, 1); err != nil {
		t.Fatal(err)
	}

	client, _ := NewClient(s.engine.EnvelopePublicKey())

	// Direct confidential call to the public contract fails.
	direct, _, _ := client.NewConfidentialTx(pubAddr, "get")
	res, err := s.engine.Execute(direct)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Status != chain.ReceiptFailed ||
		!strings.Contains(string(res.Receipt.Output), "public contract") {
		t.Fatalf("direct cross-class call: %d %q", res.Receipt.Status, res.Receipt.Output)
	}

	// Nested cross-class call fails inside the VM: call() returns -1 and
	// the contract observes it.
	nested, _, _ := client.NewConfidentialTx(confAddr, "relay", pubAddr[:])
	res2, err := s.engine.Execute(nested)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Receipt.Status != chain.ReceiptOK || res2.Receipt.Output[0] != 1 {
		t.Fatalf("nested cross-class call should surface as -1: %d %v", res2.Receipt.Status, res2.Receipt.Output)
	}
}
