package core

import (
	"fmt"
	"strings"
	"testing"

	"confide/internal/ccl"
	"confide/internal/chain"
	"confide/internal/storage"
)

// Contract upgrade (§3.3: "Updating the rules should be done through
// upgrading the contract"). An upgrade re-deploys code at the same address
// with a bumped security version; the code AAD binds the new version, and
// existing state (bound to the contract identity only) remains readable.

// versionedSrc returns a contract that reports its version and can
// read/write one value.
func versionedSrc(version byte) string {
	return `
fn u16at(p) -> int { return load8(p) + (load8(p + 1) << 8); }
fn u32at(p) -> int {
	return load8(p) + (load8(p+1) << 8) + (load8(p+2) << 16) + (load8(p+3) << 24);
}
fn invoke() {
	let n = input_size();
	let buf = alloc(n + 8);
	input_read(buf, 0, n);
	let c = load8(buf + 2);
	if c == 118 { // 'v'ersion
		let out = alloc(4);
		store8(out, ` + fmt.Sprintf("%d", version) + `);
		output(out, 1);
	}
	if c == 115 { // 's'et
		let a0 = buf + 2 + u16at(buf) + 2;
		storage_set("v", 1, a0 + 4, u32at(a0));
	}
	if c == 103 { // 'g'et
		let out2 = alloc(64);
		let vn = storage_get("v", 1, out2, 64);
		if vn < 0 { vn = 0; }
		output(out2, vn);
	}
}
`
}

func compileVersioned(t *testing.T, version byte) []byte {
	t.Helper()
	mod, err := ccl.CompileCVM(versionedSrc(version))
	if err != nil {
		t.Fatal(err)
	}
	return mod.Encode()
}

func TestContractUpgradePreservesState(t *testing.T) {
	s := newStack(t, AllOptimizations())
	addr := chain.AddressFromBytes([]byte("upgradeable"))
	if err := s.engine.DeployContract(addr, ownerAddr, VMCVM, compileVersioned(t, 1), true, 1); err != nil {
		t.Fatal(err)
	}
	client, _ := NewClient(s.engine.EnvelopePublicKey())

	exec := func(method string, args ...[]byte) *chain.Receipt {
		t.Helper()
		tx, _, err := client.NewConfidentialTx(addr, method, args...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.engine.Execute(tx)
		if err != nil {
			t.Fatal(err)
		}
		var batch storage.Batch
		if err := res.AppendWrites(&batch); err != nil {
			t.Fatal(err)
		}
		if err := s.store.WriteBatch(&batch); err != nil {
			t.Fatal(err)
		}
		return res.Receipt
	}

	exec("set", []byte("pre-upgrade-value"))
	if rpt := exec("version"); rpt.Output[0] != 1 {
		t.Fatalf("v1 reports version %d", rpt.Output[0])
	}

	// Upgrade: new code, security version 2, same address and owner.
	if err := s.engine.DeployContract(addr, ownerAddr, VMCVM, compileVersioned(t, 2), true, 2); err != nil {
		t.Fatal(err)
	}
	s.engine.sdm.InvalidateCache()

	if rpt := exec("version"); rpt.Output[0] != 2 {
		t.Fatalf("after upgrade, version = %d, want 2", rpt.Output[0])
	}
	// State written under v1 is still readable under v2.
	if rpt := exec("get"); string(rpt.Output) != "pre-upgrade-value" {
		t.Fatalf("state lost across upgrade: %q", rpt.Output)
	}
}

func TestCodeRollbackChangesIdentity(t *testing.T) {
	// A malicious host rolls the code record back to the retired v1. The
	// record is self-consistent (it was validly sealed once), so local
	// decryption succeeds — this is exactly the §3.3 caveat that a single
	// node's answer is untrustworthy and consensus reads exist. The test
	// documents the boundary: the rollback is locally undetectable but
	// observable (version output differs), so a consensus read exposes it.
	s := newStack(t, AllOptimizations())
	addr := chain.AddressFromBytes([]byte("rollback"))
	if err := s.engine.DeployContract(addr, ownerAddr, VMCVM, compileVersioned(t, 1), true, 1); err != nil {
		t.Fatal(err)
	}
	oldRecord, found, err := s.store.Get(codeKey(addr))
	if err != nil || !found {
		t.Fatal("code record missing")
	}
	if err := s.engine.DeployContract(addr, ownerAddr, VMCVM, compileVersioned(t, 2), true, 2); err != nil {
		t.Fatal(err)
	}
	// Host-level rollback.
	if err := s.store.Put(codeKey(addr), oldRecord); err != nil {
		t.Fatal(err)
	}
	s.engine.sdm.InvalidateCache()

	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(addr, "version")
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Status != chain.ReceiptOK || res.Receipt.Output[0] != 1 {
		t.Fatalf("rollback behavior changed: %v %v", res.Receipt.Status, res.Receipt.Output)
	}
	// The divergence (v1 vs the canonical v2) is what cross-node
	// verification catches; see node.VerifyConsensusRead.
}

func TestCodeRecordCrossContractSpliceRejected(t *testing.T) {
	// Splicing contract A's (validly sealed) code under contract B's key
	// must fail: the code AAD binds the contract identity.
	s := newStack(t, AllOptimizations())
	a := chain.AddressFromBytes([]byte("contract-a"))
	b := chain.AddressFromBytes([]byte("contract-b"))
	if err := s.engine.DeployContract(a, ownerAddr, VMCVM, compileVersioned(t, 1), true, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.engine.DeployContract(b, ownerAddr, VMCVM, compileVersioned(t, 2), true, 1); err != nil {
		t.Fatal(err)
	}
	recA, _, _ := s.store.Get(codeKey(a))
	if err := s.store.Put(codeKey(b), recA); err != nil {
		t.Fatal(err)
	}
	s.engine.sdm.InvalidateCache()

	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(b, "version")
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Status != chain.ReceiptFailed ||
		!strings.Contains(string(res.Receipt.Output), "integrity") {
		t.Fatalf("spliced code executed: %v %q", res.Receipt.Status, res.Receipt.Output)
	}
}
