package core

import (
	"runtime"
	"sync"
	"time"

	"confide/internal/chain"
	"confide/internal/keyepoch"
	"confide/internal/tee"
)

// preMeta is the metadata cached per transaction by pre-verification (step
// P4 of Figure 7): the recovered one-time key and the signature result.
// Execution consumes the entry (C2), replacing the expensive RSA
// private-key decryption with a symmetric one (C3) and skipping signature
// re-verification.
type preMeta struct {
	ktx      []byte
	verified bool
	// attested marks entries seeded from a proposer's block-level
	// attestation tag rather than local verification. Such entries carry no
	// k_tx (the attestation covers only the signature check), so the
	// symmetric-decryption fast path must not fire on them.
	attested bool
}

// preVerifyCache holds metadata keyed by transaction hash, inside CS
// enclave memory.
type preVerifyCache struct {
	mu      sync.Mutex
	entries map[chain.Hash]preMeta
}

func newPreVerifyCache() *preVerifyCache {
	return &preVerifyCache{entries: make(map[chain.Hash]preMeta)}
}

// preVerifyCacheMax bounds enclave memory spent on metadata; beyond it,
// arbitrary entries are evicted (a miss only costs the full decode path).
const preVerifyCacheMax = 1 << 16

func (c *preVerifyCache) put(h chain.Hash, m preMeta) {
	c.mu.Lock()
	if len(c.entries) >= preVerifyCacheMax {
		for victim := range c.entries {
			delete(c.entries, victim)
			break
		}
	}
	c.entries[h] = m
	c.mu.Unlock()
}

// get returns the entry, keeping it cached: a transaction may execute more
// than once within a block (optimistic-concurrency re-execution), and the
// key must stay available until the block commits.
func (c *preVerifyCache) get(h chain.Hash) (preMeta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.entries[h]
	return m, ok
}

func (c *preVerifyCache) drop(h chain.Hash) {
	c.mu.Lock()
	delete(c.entries, h)
	c.mu.Unlock()
}

// Len reports cached entries (tests/metrics).
func (c *preVerifyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// PreVerifyBatch implements the pre-verification phase (P1–P5): a batch of
// transactions is pushed into the CS enclave in one ecall, each envelope is
// opened and its signature checked in parallel, metadata is cached, and the
// valid transactions are returned for the verified pool. On a confidential
// engine, public transactions are verified inside the enclave too — only
// in-enclave checks can later be covered by the block attestation tag
// (AttestPreVerified). On a public engine the same path runs in the
// untrusted host. Invalid transactions are dropped.
func (e *Engine) PreVerifyBatch(txs []*chain.Tx) []*chain.Tx {
	if len(txs) == 0 {
		return nil
	}
	type outcome struct {
		tx *chain.Tx
		ok bool
	}
	results := make([]outcome, len(txs))

	batchBytes := 0
	for _, tx := range txs {
		batchBytes += len(tx.Payload)
	}

	verifyOne := func(i int) {
		tx := txs[i]
		switch tx.Type {
		case chain.TxTypePublic:
			raw, err := chain.DecodeRawTx(tx.Payload)
			if err != nil {
				return
			}
			if err := raw.VerifySignature(); err != nil {
				return
			}
			if e.preCache != nil {
				e.preCache.put(tx.Hash(), preMeta{verified: true})
			}
			results[i] = outcome{tx: tx, ok: true}

		case chain.TxTypeConfidential:
			// The epoch tag is public bytes: stale envelopes are rejected
			// here, before spending a private-key operation on them.
			epoch, env, err := keyepoch.ParseEnvelope(tx.Payload)
			if err != nil {
				return
			}
			if !e.ring.Accepts(epoch) {
				keyepoch.RecordStaleRejection()
				return
			}
			sk, err := e.ring.Envelope(epoch)
			if err != nil {
				return
			}
			start := time.Now()
			ktx, payload, err := sk.OpenEnvelope(env)
			e.profile.Record(OpTxDecrypt, time.Since(start))
			if err != nil {
				return
			}
			raw, err := chain.DecodeRawTx(payload)
			if err != nil {
				return
			}
			start = time.Now()
			sigErr := raw.VerifySignature()
			e.profile.Record(OpTxVerify, time.Since(start))
			if sigErr != nil {
				return
			}
			if e.preCache != nil {
				e.preCache.put(tx.Hash(), preMeta{ktx: ktx, verified: true})
			}
			results[i] = outcome{tx: tx, ok: true}
		}
	}

	run := func() error {
		// The two expensive operations (private-key decryption, signature
		// verification) parallelize across transactions.
		workers := runtime.GOMAXPROCS(0)
		if workers > len(txs) {
			workers = len(txs)
		}
		var wg sync.WaitGroup
		next := make(chan int, len(txs))
		for i := range txs {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					verifyOne(i)
				}
			}()
		}
		wg.Wait()
		return nil
	}

	// P1: the whole batch enters the enclave in one ecall (confidential
	// engine only; the public engine verifies in the untrusted host).
	if e.enclave != nil {
		_ = e.enclave.Ecall(batchBytes, tee.CopyInOut, run)
	} else {
		_ = run()
	}

	valid := make([]*chain.Tx, 0, len(txs))
	for _, r := range results {
		if r.ok {
			valid = append(valid, r.tx)
		}
	}
	mPreverified.Add(uint64(len(valid)))
	mPreverifyRejects.Add(uint64(len(txs) - len(valid)))
	return valid
}

// TrustPreVerified seeds the cache with attestation-backed entries: the
// proposer's enclave vouched (via the block's MAC tag, which it only mints
// over transactions its own pre-verification cache verified) that these
// transactions passed signature pre-verification, so this replica may skip
// re-running ECDSA on them. Entries from local pre-verification are kept —
// they additionally hold the recovered k_tx, which an attestation cannot
// supply. Attested entries never ground a new attestation in turn
// (AttestPreVerified rejects them), so trust does not chain across
// proposers.
func (e *Engine) TrustPreVerified(txs []*chain.Tx) {
	if e.preCache == nil {
		return
	}
	for _, tx := range txs {
		h := tx.Hash()
		if _, ok := e.preCache.get(h); ok {
			continue
		}
		e.preCache.put(h, preMeta{verified: true, attested: true})
	}
	mPreverifyAttested.Add(uint64(len(txs)))
}

// PreVerifiedCount reports the number of cached pre-verification entries.
func (e *Engine) PreVerifiedCount() int {
	if e.preCache == nil {
		return 0
	}
	return e.preCache.Len()
}

// DropPreVerified releases cached metadata for committed transactions; the
// node calls it after block commit so one-time keys do not linger in the
// enclave.
func (e *Engine) DropPreVerified(hashes []chain.Hash) {
	if e.preCache == nil {
		return
	}
	for _, h := range hashes {
		e.preCache.drop(h)
	}
}
