package core

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"confide/internal/chain"
	"confide/internal/crypto"
	"confide/internal/keyepoch"
	"confide/internal/tee"
)

// Client is the user-side half of the T-Protocol: it builds confidential
// transactions as crypto digital envelopes under the engine's pk_tx, derives
// the one-time key k_tx for each, and opens sealed receipts.
type Client struct {
	signer  *crypto.Signer
	rootKey []byte
	pkTx    []byte
	epoch   uint64 // key epoch of pkTx; stamps every envelope header
	nonce   uint64
}

// NewClient creates a client identity. pkTx may be nil for clients that
// only send public transactions. The key is assumed to belong to epoch 1
// (the provisioning epoch); after a rotation, clients refresh with
// SetEnvelopeKey.
func NewClient(pkTx []byte) (*Client, error) {
	signer, err := crypto.GenerateSigner()
	if err != nil {
		return nil, err
	}
	rootKey, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	return &Client{signer: signer, rootKey: rootKey, pkTx: pkTx, epoch: 1}, nil
}

// SetEnvelopeKey adopts a new epoch's pk_tx (fetched from the engine after
// a rotation, typically re-verified via VerifyEngine against a fresh
// attestation). Subsequent envelopes are sealed to it and tagged with the
// epoch.
func (c *Client) SetEnvelopeKey(epoch uint64, pkTx []byte) {
	c.epoch = epoch
	c.pkTx = pkTx
}

// EnvelopeEpoch reports the epoch the client currently seals to.
func (c *Client) EnvelopeEpoch() uint64 { return c.epoch }

// EnvelopePublicKey returns the attested pk_tx the client currently holds
// (nil for public-only clients). Disclosure receipts are verified against
// this key.
func (c *Client) EnvelopePublicKey() []byte { return c.pkTx }

// Address returns the client's on-chain address.
func (c *Client) Address() chain.Address {
	return chain.Address(c.signer.Address())
}

// ErrUntrustedEngine is returned when an engine's attestation does not
// vouch for the offered pk_tx.
var ErrUntrustedEngine = errors.New("core: engine attestation does not match pk_tx")

// VerifyEngine checks an engine's remote-attestation report against the
// manufacturer verifier and expected enclave measurement, and confirms that
// the offered pk_tx's fingerprint is locked inside the report — the
// T-Protocol's man-in-the-middle defence. On success the client trusts and
// records pk_tx.
func (c *Client) VerifyEngine(report tee.Report, verifier *ecdsa.PublicKey, expectedMeasurement [32]byte, pkTx []byte) error {
	if err := tee.VerifyReport(verifier, report, expectedMeasurement); err != nil {
		return err
	}
	fp := crypto.PublicFingerprint(pkTx)
	if string(report.ReportData[:32]) != string(fp[:]) {
		return ErrUntrustedEngine
	}
	c.pkTx = pkTx
	return nil
}

// signedRaw assembles and signs a raw transaction body.
func (c *Client) signedRaw(contract chain.Address, method string, args [][]byte) (*chain.RawTx, error) {
	c.nonce++
	raw := &chain.RawTx{
		From:      c.Address(),
		Contract:  contract,
		Method:    method,
		Args:      args,
		Nonce:     c.nonce,
		SenderPub: c.signer.Public(),
	}
	sig, err := c.signer.Sign(raw.SigningBytes())
	if err != nil {
		return nil, err
	}
	raw.Signature = sig
	return raw, nil
}

// SignDisclosure authenticates a disclosure request: it stamps the client's
// verification key into the request and signs the canonical statement
// bytes. The enclave verifies the signature, derives the requester's
// on-chain address from the key, and consults the target contract's
// authorize rule before building any proof. Callers set SigHeight to a
// recent chain height first; Verifier and the statement parameters are
// covered by the signature, so they cannot be altered in flight.
func (c *Client) SignDisclosure(req *DisclosureRequest) error {
	req.RequesterPub = c.signer.Public()
	sig, err := c.signer.Sign(req.SigningBytes())
	if err != nil {
		return err
	}
	req.Sig = sig
	return nil
}

// NewPublicTx builds a plaintext (TYPE=0) transaction.
func (c *Client) NewPublicTx(contract chain.Address, method string, args ...[]byte) (*chain.Tx, error) {
	raw, err := c.signedRaw(contract, method, args)
	if err != nil {
		return nil, err
	}
	return &chain.Tx{Type: chain.TxTypePublic, Payload: raw.Encode()}, nil
}

// NewConfidentialTx builds a TYPE=1 transaction per formula (1):
//
//	Tx_conf = Enc(pk_tx, k_tx) | Enc(k_tx, Tx_raw)
//
// It returns the wire transaction and k_tx, which the client keeps (or
// re-derives from its root key) to open the receipt, and may hand to a
// delegate to authorize offline access.
func (c *Client) NewConfidentialTx(contract chain.Address, method string, args ...[]byte) (*chain.Tx, []byte, error) {
	if c.pkTx == nil {
		return nil, nil, errors.New("core: client has no verified pk_tx")
	}
	start := time.Now()
	defer mSealSeconds.ObserveSince(start)
	raw, err := c.signedRaw(contract, method, args)
	if err != nil {
		return nil, nil, err
	}
	body := raw.Encode()
	// k_tx is derived from the user root key and the transaction (body)
	// hash: one key per transaction, re-derivable by the owner.
	bodyHash := sha256.Sum256(body)
	ktx := crypto.DeriveTxKey(c.rootKey, bodyHash)
	env, err := crypto.SealEnvelope(c.pkTx, ktx, body)
	if err != nil {
		return nil, nil, err
	}
	payload := keyepoch.WrapEnvelope(c.epoch, env)
	return &chain.Tx{Type: chain.TxTypeConfidential, Payload: payload}, ktx, nil
}

// OpenReceipt decrypts a sealed receipt with the transaction's one-time
// key.
func OpenReceipt(sealed []byte, ktx []byte, txHash chain.Hash) (*chain.Receipt, error) {
	plain, err := crypto.OpenAEAD(ktx, sealed, txHash[:])
	if err != nil {
		return nil, fmt.Errorf("core: open receipt: %w", err)
	}
	return chain.DecodeReceipt(plain)
}
