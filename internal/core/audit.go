package core

import (
	"fmt"

	"confide/internal/chain"
)

// AuditStatus reports one sealed-state audit's coverage.
type AuditStatus struct {
	// Contracts counts contract-code records inspected (public included).
	Contracts int
	// Opened counts sealed records (confidential code + state) decrypted
	// and authenticated end-to-end.
	Opened int
}

// AuditSealedState re-verifies every sealed record in the store: each
// confidential contract's code and every state record under it is opened
// through the SDM (AEAD authentication against its address-bound AAD and
// epoch key). Any record that fails to open — a bit of silent disk
// corruption that slipped past the storage checksums, a record sealed under
// an epoch this enclave no longer holds, a mismatched AAD after a botched
// recovery — fails the audit.
//
// This is the post-crash certification primitive: after a node restarts
// from a crash (or rebuilds from a snapshot), a clean audit proves the
// D-Protocol's sealed state survived intact. The walk uses the same
// iteration the reseal sweep does, so it audits exactly the records the
// engine would ever open.
func (e *Engine) AuditSealedState() (AuditStatus, error) {
	var st AuditStatus
	confidential := make(map[string]bool)
	var auditErr error
	err := e.sdm.store.Iterate([]byte(nsCode), func(key, value []byte) bool {
		addrHex := string(key[len(nsCode):])
		rec, derr := decodeRecord(value)
		if derr != nil {
			auditErr = fmt.Errorf("core: audit: contract %s: %w", addrHex, derr)
			return false
		}
		st.Contracts++
		confidential[addrHex] = rec.Confidential
		if !rec.Confidential {
			return true
		}
		var addr chain.Address
		copy(addr[:], mustHex(addrHex))
		if _, oerr := e.sdm.openSealed(rec.Code, codeAAD(addr, rec.Owner, rec.SecVer)); oerr != nil {
			auditErr = fmt.Errorf("core: audit: code %s: %w", addrHex, oerr)
			return false
		}
		st.Opened++
		return true
	})
	if err == nil && auditErr == nil {
		err = e.sdm.store.Iterate([]byte(nsState), func(key, value []byte) bool {
			if len(key) < len(nsState)+41 {
				return true
			}
			addrHex := string(key[len(nsState) : len(nsState)+40])
			if !confidential[addrHex] {
				return true
			}
			var addr chain.Address
			copy(addr[:], mustHex(addrHex))
			if _, oerr := e.sdm.openSealed(value, stateAAD(addr)); oerr != nil {
				auditErr = fmt.Errorf("core: audit: state %s/%q: %w", addrHex, key[len(nsState)+41:], oerr)
				return false
			}
			st.Opened++
			return true
		})
	}
	if err == nil {
		err = auditErr
	}
	return st, err
}
