package core

import (
	"errors"
	"fmt"

	"confide/internal/chain"
	"confide/internal/crypto"
	"confide/internal/keyepoch"
	"confide/internal/tee"
)

// Receipt access authorization (§3.2.3). Because k_tx is a one-time key,
// a transaction owner can always delegate by handing k_tx over offline.
// CONFIDE additionally provides "a more elegant way": a pre-defined chain
// code receives access requests for receipts (or raw transactions), parses
// them and forwards them to the related user smart contract, where the
// owner has defined the access rules. This file is that chain code's host:
// the enclave recovers k_tx from the original envelope with its long-lived
// sk_tx, asks the target contract's rule, and — only on approval —
// re-seals the data to the requester's own public key. Key material never
// leaves the enclave.

// AuthorizeMethod is the well-known method name the pre-defined chain code
// invokes on the user contract. It receives (requesterAddress, txHash) and
// must output a single 0x01 byte to approve.
const AuthorizeMethod = "authorize"

// Errors.
var (
	ErrAccessDenied    = errors.New("core: contract denied receipt access")
	ErrNoReceipt       = errors.New("core: no stored receipt for transaction")
	ErrNotConfidential = errors.New("core: access requests apply to confidential transactions")
)

// AccessRequest asks for a transaction's sealed receipt (and optionally its
// raw transaction body) to be re-sealed for the requester.
type AccessRequest struct {
	// OrigTx is the wire transaction whose receipt is requested (fetched
	// from any block; its envelope is only openable inside the enclave).
	OrigTx *chain.Tx
	// Requester is the asking party's on-chain address, passed to the
	// user contract's rule.
	Requester chain.Address
	// RequesterPub is the requester's envelope public key; approved data
	// is re-sealed to it.
	RequesterPub []byte
	// IncludeRawTx additionally releases the raw transaction body (the
	// paper's authorization covers "not only ... transaction receipt, but
	// also ... raw transaction information").
	IncludeRawTx bool
}

// AccessGrant is the approved response.
type AccessGrant struct {
	// SealedReceipt is the receipt encoding, sealed to RequesterPub.
	SealedReceipt []byte
	// SealedRawTx is the raw transaction encoding sealed to RequesterPub
	// (only when requested).
	SealedRawTx []byte
}

// HandleAccessRequest runs the pre-defined chain code for one request. The
// whole flow executes inside the CS enclave: envelope opening, the rule
// consultation (a read-only contract execution with the requester as
// caller), receipt decryption and re-sealing.
func (e *Engine) HandleAccessRequest(req AccessRequest) (*AccessGrant, error) {
	if !e.confidential {
		return nil, errors.New("core: access requests require the confidential engine")
	}
	if req.OrigTx == nil || req.OrigTx.Type != chain.TxTypeConfidential {
		return nil, ErrNotConfidential
	}
	var grant *AccessGrant
	err := e.enclave.Ecall(len(req.OrigTx.Payload)+len(req.RequesterPub), tee.CopyInOut, func() error {
		g, err := e.handleAccessInEnclave(req)
		grant = g
		return err
	})
	return grant, err
}

func (e *Engine) handleAccessInEnclave(req AccessRequest) (*AccessGrant, error) {
	// Recover k_tx and the raw transaction with the epoch's sk_tx. Access
	// requests reach back to historical transactions, so any *retained*
	// epoch serves them — no acceptance-window check. Once an epoch is
	// zeroized its envelopes are unopenable even here: that loss of reach-
	// back is exactly the forward secrecy rotation buys (the owner's k_tx
	// delegation path still works, since k_tx derives from the user root).
	epoch, env, err := keyepoch.ParseEnvelope(req.OrigTx.Payload)
	if err != nil {
		return nil, fmt.Errorf("core: open original envelope: %w", err)
	}
	sk, err := e.ring.Envelope(epoch)
	if err != nil {
		return nil, fmt.Errorf("core: open original envelope: %w", err)
	}
	ktx, payload, err := sk.OpenEnvelope(env)
	if err != nil {
		return nil, fmt.Errorf("core: open original envelope: %w", err)
	}
	raw, err := chain.DecodeRawTx(payload)
	if err != nil {
		return nil, err
	}
	txHash := req.OrigTx.Hash()

	// Consult the user contract's access rule: a read-only execution of
	// `authorize(requester, txHash)` with the requester as the caller, so
	// the rule can distinguish who is asking. Its writes are discarded.
	txc := &txContext{
		engine:       e,
		readSet:      make(map[string]struct{}),
		writes:       make(map[string]map[string][]byte),
		confidential: true,
	}
	input := EncodeInput(AuthorizeMethod, req.Requester[:], txHash[:])
	out, err := e.runContract(txc, raw.Contract, input, req.Requester[:], 0)
	if err != nil {
		return nil, fmt.Errorf("core: access rule: %w", err)
	}
	if len(out) != 1 || out[0] != 0x01 {
		return nil, ErrAccessDenied
	}

	// Decrypt the stored receipt with the recovered k_tx.
	sealed, found, err := e.sdm.store.Get(ReceiptKey(txHash))
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, ErrNoReceipt
	}
	receiptBytes, err := crypto.OpenAEAD(ktx, sealed, txHash[:])
	if err != nil {
		return nil, fmt.Errorf("core: open receipt: %w", err)
	}

	// Re-seal to the requester's own key; k_tx itself is never released.
	grant := &AccessGrant{}
	wrapKey, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	grant.SealedReceipt, err = crypto.SealEnvelope(req.RequesterPub, wrapKey, receiptBytes)
	if err != nil {
		return nil, err
	}
	if req.IncludeRawTx {
		wrapKey2, err := crypto.RandomKey()
		if err != nil {
			return nil, err
		}
		grant.SealedRawTx, err = crypto.SealEnvelope(req.RequesterPub, wrapKey2, payload)
		if err != nil {
			return nil, err
		}
	}
	return grant, nil
}

// OpenGrantedReceipt is the requester-side helper: it opens a granted
// receipt with the requester's envelope key.
func OpenGrantedReceipt(key *crypto.EnvelopeKey, sealed []byte) (*chain.Receipt, error) {
	_, plain, err := key.OpenEnvelope(sealed)
	if err != nil {
		return nil, err
	}
	return chain.DecodeReceipt(plain)
}

// OpenGrantedRawTx opens a granted raw transaction body.
func OpenGrantedRawTx(key *crypto.EnvelopeKey, sealed []byte) (*chain.RawTx, error) {
	_, plain, err := key.OpenEnvelope(sealed)
	if err != nil {
		return nil, err
	}
	return chain.DecodeRawTx(plain)
}
