package core

import (
	"confide/internal/cvm"
	"confide/internal/cvm/compile"
)

// compileDeclined is the cache tombstone for programs the compiler refused:
// it pins the decision to the code-cache entry so the decline is decided
// once per contract hash, and carries the reason for observability.
type compileDeclined struct {
	reason string
}

// compileArtifact is the CodeCache build hook: lower the decoded program to
// a compiled Unit, or record why it stays interpreter-only.
func compileArtifact(p *cvm.Program) any {
	u, err := compile.Compile(p)
	if err != nil {
		return compileDeclined{reason: compile.Reason(err)}
	}
	return u
}
