package core

import (
	"errors"
	"testing"

	"confide/internal/ccl"
	"confide/internal/chain"
	"confide/internal/crypto"
	"confide/internal/storage"
)

// grantSrc extends the counter contract with an access rule: the owner
// grants receipt access per requester address by storing a byte under the
// requester's address bytes; `authorize` approves when the grant exists.
const grantSrc = `
fn u16at(p) -> int { return load8(p) + (load8(p + 1) << 8); }
fn u32at(p) -> int {
	return load8(p) + (load8(p+1) << 8) + (load8(p+2) << 16) + (load8(p+3) << 24);
}
fn arg(buf, idx) -> int {
	let mlen = u16at(buf);
	let p = buf + 2 + mlen + 2;
	let i = 0;
	while i < idx {
		p = p + 4 + u32at(p);
		i = i + 1;
	}
	return p;
}
fn invoke() {
	let n = input_size();
	let buf = alloc(n + 8);
	input_read(buf, 0, n);
	let c = load8(buf + 2);
	let a0 = arg(buf, 0);
	if c == 115 { // 's'et <value>
		storage_set("v", 1, a0 + 4, u32at(a0));
		log("stored", 6);
	}
	if c == 103 { // 'g'rant <requester-addr(20)>
		let one = alloc(4);
		store8(one, 1);
		storage_set(a0 + 4, 20, one, 1);
	}
	if c == 97 { // 'a'uthorize <requester(20)> <txhash(32)>
		let out = alloc(4);
		let ok = storage_get(a0 + 4, 20, out, 4);
		let res = alloc(4);
		if ok == 1 {
			store8(res, 1);
			output(res, 1);
		} else {
			store8(res, 0);
			output(res, 1);
		}
	}
}
`

var grantAddr = chain.AddressFromBytes([]byte("grant-contract"))

// accessFixture deploys the grant contract and commits one confidential
// transaction, returning everything an access request needs.
func accessFixture(t *testing.T) (*testStack, *Client, *chain.Tx) {
	t.Helper()
	s := newStack(t, AllOptimizations())
	mod, err := ccl.CompileCVM(grantSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.engine.DeployContract(grantAddr, ownerAddr, VMCVM, mod.Encode(), true, 1); err != nil {
		t.Fatal(err)
	}
	owner, err := NewClient(s.engine.EnvelopePublicKey())
	if err != nil {
		t.Fatal(err)
	}
	tx, _, err := owner.NewConfidentialTx(grantAddr, "set", []byte("loan-amount=250000"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	var batch storage.Batch
	if err := res.AppendWrites(&batch); err != nil {
		t.Fatal(err)
	}
	if err := s.store.WriteBatch(&batch); err != nil {
		t.Fatal(err)
	}
	return s, owner, tx
}

// grantTo records an on-chain grant for the requester.
func grantTo(t *testing.T, s *testStack, owner *Client, requester chain.Address) {
	t.Helper()
	g, _, err := owner.NewConfidentialTx(grantAddr, "grant", requester[:])
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.engine.Execute(g)
	if err != nil || res.Receipt.Status != chain.ReceiptOK {
		t.Fatalf("grant failed: %v %s", err, res.Receipt.Output)
	}
	var batch storage.Batch
	res.AppendWrites(&batch)
	s.store.WriteBatch(&batch)
}

func TestReceiptAccessGranted(t *testing.T) {
	s, owner, tx := accessFixture(t)
	auditor, err := NewClient(nil)
	if err != nil {
		t.Fatal(err)
	}
	auditorKey, err := crypto.GenerateEnvelopeKey()
	if err != nil {
		t.Fatal(err)
	}
	grantTo(t, s, owner, auditor.Address())

	grant, err := s.engine.HandleAccessRequest(AccessRequest{
		OrigTx:       tx,
		Requester:    auditor.Address(),
		RequesterPub: auditorKey.Public(),
		IncludeRawTx: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	receipt, err := OpenGrantedReceipt(auditorKey, grant.SealedReceipt)
	if err != nil {
		t.Fatal(err)
	}
	if receipt.TxHash != tx.Hash() || len(receipt.Logs) != 1 || receipt.Logs[0] != "stored" {
		t.Errorf("granted receipt corrupted: %+v", receipt)
	}
	raw, err := OpenGrantedRawTx(auditorKey, grant.SealedRawTx)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Method != "set" || string(raw.Args[0]) != "loan-amount=250000" {
		t.Errorf("granted raw tx corrupted: %+v", raw)
	}
}

func TestReceiptAccessDeniedWithoutGrant(t *testing.T) {
	s, _, tx := accessFixture(t)
	stranger, _ := NewClient(nil)
	strangerKey, _ := crypto.GenerateEnvelopeKey()
	_, err := s.engine.HandleAccessRequest(AccessRequest{
		OrigTx:       tx,
		Requester:    stranger.Address(),
		RequesterPub: strangerKey.Public(),
	})
	if !errors.Is(err, ErrAccessDenied) {
		t.Errorf("err = %v, want ErrAccessDenied", err)
	}
}

func TestReceiptAccessGrantIsPerRequester(t *testing.T) {
	s, owner, tx := accessFixture(t)
	granted, _ := NewClient(nil)
	grantTo(t, s, owner, granted.Address())

	// A different requester presenting the granted party's request fields
	// but its own address is still denied.
	other, _ := NewClient(nil)
	otherKey, _ := crypto.GenerateEnvelopeKey()
	if _, err := s.engine.HandleAccessRequest(AccessRequest{
		OrigTx:       tx,
		Requester:    other.Address(),
		RequesterPub: otherKey.Public(),
	}); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("err = %v, want ErrAccessDenied", err)
	}
}

func TestGrantedDataUnreadableByOthers(t *testing.T) {
	s, owner, tx := accessFixture(t)
	auditor, _ := NewClient(nil)
	auditorKey, _ := crypto.GenerateEnvelopeKey()
	grantTo(t, s, owner, auditor.Address())
	grant, err := s.engine.HandleAccessRequest(AccessRequest{
		OrigTx:       tx,
		Requester:    auditor.Address(),
		RequesterPub: auditorKey.Public(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eavesdropper, _ := crypto.GenerateEnvelopeKey()
	if _, err := OpenGrantedReceipt(eavesdropper, grant.SealedReceipt); err == nil {
		t.Error("grant sealed to the auditor opened with another key")
	}
}

func TestAccessRequestRejectsPublicTx(t *testing.T) {
	s, _, _ := accessFixture(t)
	pub, _ := NewClient(nil)
	ptx, _ := pub.NewPublicTx(grantAddr, "set", []byte("x"))
	key, _ := crypto.GenerateEnvelopeKey()
	if _, err := s.engine.HandleAccessRequest(AccessRequest{
		OrigTx:       ptx,
		Requester:    pub.Address(),
		RequesterPub: key.Public(),
	}); !errors.Is(err, ErrNotConfidential) {
		t.Errorf("err = %v, want ErrNotConfidential", err)
	}
}

func TestAccessRequestOnPublicEngineFails(t *testing.T) {
	s, owner, tx := accessFixture(t)
	key, _ := crypto.GenerateEnvelopeKey()
	if _, err := s.public.HandleAccessRequest(AccessRequest{
		OrigTx:       tx,
		Requester:    owner.Address(),
		RequesterPub: key.Public(),
	}); err == nil {
		t.Error("public engine must not serve access requests")
	}
}

func addrBytes(a chain.Address) []byte { return a[:] }

func TestAccessRuleExecutionDiscardWrites(t *testing.T) {
	// Consulting the rule must not mutate state: execute the request twice
	// and verify the contract's stored value is unchanged.
	s, owner, tx := accessFixture(t)
	auditor, _ := NewClient(nil)
	auditorKey, _ := crypto.GenerateEnvelopeKey()
	grantTo(t, s, owner, auditor.Address())
	for i := 0; i < 2; i++ {
		if _, err := s.engine.HandleAccessRequest(AccessRequest{
			OrigTx:       tx,
			Requester:    auditor.Address(),
			RequesterPub: auditorKey.Public(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	get, _, _ := owner.NewConfidentialTx(grantAddr, "set", []byte("second-write"))
	_ = get // the value check: read through a fresh engine execution
	read, _, _ := owner.NewConfidentialTx(grantAddr, "authorize", addrBytes(auditor.Address()), make([]byte, 32))
	res, err := s.engine.Execute(read)
	if err != nil || res.Receipt.Status != chain.ReceiptOK {
		t.Fatalf("rule still executable: %v", err)
	}
}
