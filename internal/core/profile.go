package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profile categories used by the engine; Table 1 of the paper reports
// exactly these.
const (
	OpContractCall = "Contract Call"
	OpGetStorage   = "GetStorage"
	OpSetStorage   = "SetStorage"
	OpTxVerify     = "Transaction Verify"
	OpTxDecrypt    = "Transaction Decryption"
	OpReceiptSeal  = "Receipt Encryption"
	OpStateDecrypt = "State Decryption"
	OpStateEncrypt = "State Encryption"
	OpCodeLoad     = "Code Load"
)

// Profile aggregates operation counts and durations; it regenerates the
// paper's Table 1 for any workload.
type Profile struct {
	mu      sync.Mutex
	entries map[string]*ProfileEntry
}

// ProfileEntry is one operation category's totals.
type ProfileEntry struct {
	Count    uint64
	Duration time.Duration
}

// NewProfile creates an empty profile.
func NewProfile() *Profile {
	return &Profile{entries: make(map[string]*ProfileEntry)}
}

// Record adds one operation observation. A nil profile is a no-op, so
// instrumentation can stay unconditional.
func (p *Profile) Record(op string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	e := p.entries[op]
	if e == nil {
		e = &ProfileEntry{}
		p.entries[op] = e
	}
	e.Count++
	e.Duration += d
	p.mu.Unlock()
}

// timed runs fn and records its duration under op.
func (p *Profile) timed(op string, fn func() error) error {
	if p == nil {
		return fn()
	}
	start := time.Now()
	err := fn()
	p.Record(op, time.Since(start))
	return err
}

// Snapshot returns a copy of all entries.
func (p *Profile) Snapshot() map[string]ProfileEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]ProfileEntry, len(p.entries))
	for k, v := range p.entries {
		out[k] = *v
	}
	return out
}

// Reset clears all entries.
func (p *Profile) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.entries = make(map[string]*ProfileEntry)
	p.mu.Unlock()
}

// Table renders the profile in the layout of the paper's Table 1: method,
// total duration, count, and share of total time.
func (p *Profile) Table() string {
	snap := p.Snapshot()
	type row struct {
		name string
		e    ProfileEntry
	}
	rows := make([]row, 0, len(snap))
	var total time.Duration
	for name, e := range snap {
		rows = append(rows, row{name, e})
		total += e.Duration
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].e.Duration > rows[j].e.Duration })
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %14s %8s %7s\n", "Method", "Duration (ms)", "Counts", "Ratio")
	for _, r := range rows {
		ratio := 0.0
		if total > 0 {
			ratio = float64(r.e.Duration) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-24s %14.2f %8d %6.1f%%\n",
			r.name, float64(r.e.Duration)/float64(time.Millisecond), r.e.Count, ratio)
	}
	return b.String()
}
