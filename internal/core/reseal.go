package core

import (
	"encoding/hex"
	"fmt"

	"confide/internal/chain"
	"confide/internal/keyepoch"
	"confide/internal/storage"
	"confide/internal/tee"
)

// Lazy re-sealing. Rotation does not rewrite the sealed state synchronously
// — that would stall the chain for the whole database. Instead every write
// seals under the current epoch (sealWrites/storeContract already do), and
// this sweep migrates the cold remainder in rate-limited slices, so old
// epochs drain to zero and their keys can be zeroized. The epoch tag on
// each record makes "is this stale?" a header inspection, no decryption.

// ResealStatus reports one sweep's outcome.
type ResealStatus struct {
	// Scanned counts sealed (confidential) records inspected.
	Scanned int
	// Resealed counts records migrated to the current epoch this sweep.
	Resealed int
	// Stale counts old-epoch records left behind because the budget ran
	// out; a later sweep picks them up.
	Stale int
	// Done is true when a full scan completed and no stale record remains:
	// the retired epochs are drained and safe to zeroize.
	Done bool
}

// ResealSweep scans the sealed store and re-seals up to budget old-epoch
// records under the current epoch's k_states (budget <= 0 means unlimited).
// The caller must hold the chain quiescent or serialized against block
// commits (the node runs sweeps under its apply lock).
func (e *Engine) ResealSweep(budget int) (ResealStatus, error) {
	var st ResealStatus
	if e.ring == nil || !e.StaleEpochsRetained() {
		st.Done = true
		return st, nil
	}
	current := e.ring.Current()

	type update struct{ key, value []byte }
	var updates []update
	var forget [][]byte
	var sweepErr error
	remaining := budget

	// reseal migrates one stored record if it is stale and budget remains.
	reseal := func(stored []byte, aad []byte) ([]byte, bool, error) {
		epoch, _, err := keyepoch.ParseRecord(stored)
		if err != nil {
			return nil, false, err
		}
		st.Scanned++
		if epoch >= current {
			return nil, false, nil
		}
		if budget > 0 && remaining <= 0 {
			st.Stale++
			return nil, false, nil
		}
		plain, err := e.sdm.openSealed(stored, aad)
		if err != nil {
			return nil, false, err
		}
		sealed, err := e.sdm.sealRecord(plain, aad)
		if err != nil {
			return nil, false, err
		}
		if budget > 0 {
			remaining--
		}
		st.Resealed++
		return sealed, true, nil
	}

	// Pass 1: contract-code records. Also builds the confidentiality map
	// pass 2 needs to skip public contracts' plaintext state.
	confidential := make(map[string]bool)
	err := e.sdm.store.Iterate([]byte(nsCode), func(key, value []byte) bool {
		addrHex := string(key[len(nsCode):])
		rec, derr := decodeRecord(value)
		if derr != nil {
			sweepErr = fmt.Errorf("core: reseal: contract %s: %w", addrHex, derr)
			return false
		}
		confidential[addrHex] = rec.Confidential
		if !rec.Confidential {
			return true
		}
		var addr chain.Address
		copy(addr[:], mustHex(addrHex))
		sealed, changed, rerr := reseal(rec.Code, codeAAD(addr, rec.Owner, rec.SecVer))
		if rerr != nil {
			sweepErr = fmt.Errorf("core: reseal code %s: %w", addrHex, rerr)
			return false
		}
		if changed {
			out := *rec
			out.Code = sealed
			updates = append(updates, update{key: append([]byte(nil), key...), value: encodeRecord(&out)})
			// The SDM caches code records as raw stored bytes; forget them
			// so reads pick up the re-sealed ciphertext, not a stale copy.
			forget = append(forget, append([]byte(nil), key...))
		}
		return true
	})
	if err == nil && sweepErr == nil {
		// Pass 2: state records (st/<40-hex-addr>/<raw key>). State cache
		// entries hold plaintext, which re-sealing does not change.
		err = e.sdm.store.Iterate([]byte(nsState), func(key, value []byte) bool {
			if len(key) < len(nsState)+41 {
				return true
			}
			addrHex := string(key[len(nsState) : len(nsState)+40])
			if !confidential[addrHex] {
				return true
			}
			var addr chain.Address
			copy(addr[:], mustHex(addrHex))
			sealed, changed, rerr := reseal(value, stateAAD(addr))
			if rerr != nil {
				sweepErr = fmt.Errorf("core: reseal state %s: %w", hex.EncodeToString(key), rerr)
				return false
			}
			if changed {
				updates = append(updates, update{key: append([]byte(nil), key...), value: sealed})
			}
			return true
		})
	}
	if err == nil {
		err = sweepErr
	}
	if err != nil {
		return st, err
	}

	if len(updates) > 0 {
		var batch storage.Batch
		bytes := 0
		for _, u := range updates {
			batch.Put(u.key, u.value)
			bytes += len(u.key) + len(u.value)
		}
		if e.enclave != nil {
			// The migrated slice leaves the enclave in one ocall.
			if oerr := e.enclave.Ocall(bytes, tee.UserCheck, func() error { return nil }); oerr != nil {
				return st, oerr
			}
		}
		if werr := e.sdm.store.WriteBatch(&batch); werr != nil {
			return st, werr
		}
		e.sdm.forget(forget...)
		keyepoch.RecordResealed(st.Resealed)
	}
	st.Done = st.Stale == 0
	return st, nil
}
