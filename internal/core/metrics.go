package core

import "confide/internal/metrics"

// Engine-level instruments. The seal histogram deliberately joins the
// confide_pipeline_stage_seconds family the node's stage tracer owns: sealing
// happens client-side (before the transaction exists on any node), so it is
// observed as a standalone stage series rather than through a tracer span.
var (
	mSealSeconds = metrics.Default().Histogram("confide_pipeline_stage_seconds",
		"per-stage pipeline latency", nil, metrics.L{K: "stage", V: "seal"})

	mPreverified = metrics.Default().Counter("confide_core_preverified_total",
		"transactions that passed batch pre-verification")
	mPreverifyRejects = metrics.Default().Counter("confide_core_preverify_rejects_total",
		"transactions dropped by pre-verification (bad envelope, signature or encoding)")
	mPreverifyAttested = metrics.Default().Counter("confide_core_preverify_attested_total",
		"transactions accepted on the proposer enclave's attestation tag instead of local signature verification")
	mExecPublic = metrics.Default().Counter("confide_core_executed_total",
		"transactions executed, by type", metrics.L{K: "type", V: "public"})
	mExecConfidential = metrics.Default().Counter("confide_core_executed_total",
		"transactions executed, by type", metrics.L{K: "type", V: "confidential"})
)
