package core

import (
	"bytes"
	"errors"
	"testing"

	"confide/internal/chain"
	"confide/internal/crypto"
	"confide/internal/keyepoch"
)

// TestRotationOldAndNewEnvelopesInsideWindow: after one rotation, envelopes
// sealed to the previous epoch's pk_tx still execute (window = 1) alongside
// envelopes sealed to the new key.
func TestRotationOldAndNewEnvelopesInsideWindow(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)

	oldEpoch, oldPk := s.engine.EnvelopeKeyInfo()
	if oldEpoch != 1 {
		t.Fatalf("fresh engine epoch = %d, want 1", oldEpoch)
	}
	oldClient, err := NewClient(append([]byte(nil), oldPk...))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.engine.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	newEpoch, newPk := s.engine.EnvelopeKeyInfo()
	if newEpoch != 2 {
		t.Fatalf("epoch after rotation = %d, want 2", newEpoch)
	}
	if bytes.Equal(oldPk, newPk) {
		t.Fatal("rotation left pk_tx unchanged")
	}

	// Old-epoch client: sealed to epoch 1, still accepted.
	tx, _, err := oldClient.NewConfidentialTx(counterAddr, "set", []byte("old-epoch"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatalf("in-window envelope rejected: %v", err)
	}
	if res.Receipt.Status != chain.ReceiptOK {
		t.Fatalf("old-epoch tx failed: %s", res.Receipt.Output)
	}
	commit(t, s, res)

	// New-epoch client reads the value the old-epoch client wrote.
	newClient, _ := NewClient(nil)
	newClient.SetEnvelopeKey(newEpoch, newPk)
	get, _, _ := newClient.NewConfidentialTx(counterAddr, "get")
	getRes, err := s.engine.Execute(get)
	if err != nil {
		t.Fatal(err)
	}
	if string(getRes.Receipt.Output) != "old-epoch" {
		t.Errorf("cross-epoch read = %q", getRes.Receipt.Output)
	}
}

// TestStaleEpochRejectedDeterministically: an envelope more than Window
// epochs behind the current one fails with ErrStaleEpoch — before any
// decryption, from public header bytes.
func TestStaleEpochRejectedDeterministically(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	staleClient, _ := NewClient(s.engine.EnvelopePublicKey()) // epoch 1

	// Two rotations with window 1: epoch 1 falls out of the window.
	for i := 0; i < 2; i++ {
		if _, err := s.engine.AdvanceEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	tx, _, _ := staleClient.NewConfidentialTx(counterAddr, "set", []byte("too-late"))
	if _, err := s.engine.Execute(tx); !errors.Is(err, keyepoch.ErrStaleEpoch) {
		t.Fatalf("stale envelope: got %v, want ErrStaleEpoch", err)
	}
	// Pre-verification drops it the same way.
	if valid := s.engine.PreVerifyBatch([]*chain.Tx{tx}); len(valid) != 0 {
		t.Fatal("pre-verification admitted a stale envelope")
	}
}

// TestWiderWindowKeepsOlderEpochsAlive: window 3 accepts three predecessors.
func TestWiderWindowKeepsOlderEpochsAlive(t *testing.T) {
	opts := AllOptimizations()
	opts.EpochWindow = 3
	s := newStack(t, opts)
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	c1, _ := NewClient(s.engine.EnvelopePublicKey())

	for i := 0; i < 3; i++ {
		if _, err := s.engine.AdvanceEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	tx, _, _ := c1.NewConfidentialTx(counterAddr, "set", []byte("w3"))
	res, err := s.engine.Execute(tx)
	if err != nil || res.Receipt.Status != chain.ReceiptOK {
		t.Fatalf("epoch-1 envelope at window 3 rejected: %v", err)
	}
	// One more rotation pushes epoch 1 out.
	if _, err := s.engine.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	tx2, _, _ := c1.NewConfidentialTx(counterAddr, "get")
	if _, err := s.engine.Execute(tx2); !errors.Is(err, keyepoch.ErrStaleEpoch) {
		t.Fatalf("beyond-window envelope: got %v", err)
	}
}

// TestResealSweepDrainsOldEpochs: records written under epoch 1 are
// re-sealed under epoch 2 by the sweep, values survive byte-for-byte, and
// once drained the retired epoch zeroizes.
func TestResealSweepDrainsOldEpochs(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())

	tx, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte("durable"))
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, s, res)

	// Everything currently on disk is epoch-1 sealed (code records carry
	// their tag inside the encoded ContractRecord; the sweep's Done signal
	// covers those — here we watch the state namespace directly).
	countEpoch := func(want uint64) int {
		n := 0
		s.store.Iterate([]byte("st/"), func(k, v []byte) bool {
			if e, _, err := keyepoch.ParseRecord(v); err == nil && e == want {
				n++
			}
			return true
		})
		return n
	}
	if countEpoch(1) == 0 {
		t.Fatal("setup: no epoch-1 state records found")
	}

	if _, err := s.engine.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	if !s.engine.StaleEpochsRetained() {
		t.Fatal("rotation should leave epoch 1 retained until drained")
	}

	// Tiny budget first: the sweep reports leftover work.
	st, err := s.engine.ResealSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Resealed != 1 || st.Done {
		t.Fatalf("budget-1 sweep: %+v", st)
	}
	// Unbounded-enough budget finishes the drain.
	st, err = s.engine.ResealSweep(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Stale != 0 {
		t.Fatalf("full sweep did not drain: %+v", st)
	}
	if countEpoch(1) != 0 {
		t.Fatal("epoch-1 records survived the sweep")
	}
	if countEpoch(2) == 0 {
		t.Fatal("sweep produced no epoch-2 records")
	}

	// Epoch 1 is drained but still inside the acceptance window (window 1,
	// current 2): its in-flight envelopes must keep opening, so zeroize is a
	// no-op here.
	if n := s.engine.ZeroizeDrainedEpochs(); n != 0 {
		t.Fatalf("in-window epoch zeroized (%d)", n)
	}
	// One more rotation pushes epoch 1 out of the window; after the drain
	// its keys can go.
	if _, err := s.engine.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	if st, err := s.engine.ResealSweep(1 << 20); err != nil || !st.Done {
		t.Fatalf("second drain: %+v, %v", st, err)
	}
	if n := s.engine.ZeroizeDrainedEpochs(); n != 1 {
		t.Fatalf("zeroized %d epochs, want 1", n)
	}
	// ...and the data is still readable under the new epoch.
	newEpoch, newPk := s.engine.EnvelopeKeyInfo()
	c2, _ := NewClient(nil)
	c2.SetEnvelopeKey(newEpoch, newPk)
	get, _, _ := c2.NewConfidentialTx(counterAddr, "get")
	getRes, err := s.engine.Execute(get)
	if err != nil {
		t.Fatal(err)
	}
	if string(getRes.Receipt.Output) != "durable" {
		t.Errorf("post-zeroize read = %q", getRes.Receipt.Output)
	}

	// Repeat sweeps are cheap no-ops.
	st, err = s.engine.ResealSweep(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Resealed != 0 {
		t.Fatalf("idle sweep did work: %+v", st)
	}
}

// TestLazyResealOnWrite: a write after rotation seals under the new epoch
// without waiting for the sweep.
func TestLazyResealOnWrite(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())

	if _, err := s.engine.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	// Old-epoch envelope (in window), but the WRITE must land under epoch 2.
	tx, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte("fresh"))
	res, err := s.engine.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, s, res)

	found := false
	s.store.Iterate([]byte("st/"), func(k, v []byte) bool {
		e, _, err := keyepoch.ParseRecord(v)
		if err != nil {
			t.Errorf("untagged state record %q", k)
			return true
		}
		if e != 2 {
			t.Errorf("state record %q sealed under epoch %d, want 2", k, e)
		}
		found = true
		return true
	})
	if !found {
		t.Fatal("no state records written")
	}
}

// TestCheckpointMACKeyVariesByEpoch: the checkpoint MAC key is epoch-scoped
// and forward-derivable (a lagging verifier can check a newer manifest).
func TestCheckpointMACKeyVariesByEpoch(t *testing.T) {
	s := newStack(t, AllOptimizations())
	k1 := s.engine.CheckpointMACKeyFor(1)
	k3 := s.engine.CheckpointMACKeyFor(3) // forward derivation, ring still at 1
	if k1 == nil || k3 == nil {
		t.Fatal("derivable epochs returned nil keys")
	}
	if bytes.Equal(k1, k3) {
		t.Fatal("MAC key must differ across epochs")
	}
	if s.engine.CurrentEpoch() != 1 {
		t.Fatal("forward MAC derivation advanced the engine")
	}
	// Engine that actually reaches epoch 3 derives the same key.
	if err := s.engine.AdvanceEpochTo(3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k3, s.engine.CheckpointMACKeyFor(3)) {
		t.Fatal("forward-derived MAC key differs from installed one")
	}
	if s.engine.CheckpointMACKeyFor(0) != nil {
		t.Fatal("epoch 0 must have no MAC key")
	}
}

// TestPublicEngineHasNoEpochs: the epoch surface degrades cleanly on the
// public engine.
func TestPublicEngineHasNoEpochs(t *testing.T) {
	s := newStack(t, AllOptimizations())
	if got := s.public.CurrentEpoch(); got != 0 {
		t.Fatalf("public engine epoch = %d", got)
	}
	if _, err := s.public.AdvanceEpoch(); err == nil {
		t.Fatal("public engine advanced an epoch")
	}
	if err := s.public.AdvanceEpochTo(1); err != nil {
		t.Fatalf("no-op adopt on public engine: %v", err)
	}
	st, err := s.public.ResealSweep(100)
	if err != nil || !st.Done {
		t.Fatalf("public engine sweep: %+v, %v", st, err)
	}
}

// TestAccessAfterRotationUsesRetainedEpoch: receipt-access requests for
// transactions sealed under a prior (retained) epoch still open — access is
// not a consensus path and skips the window check — while a zeroized epoch's
// envelopes are gone for good (forward secrecy).
func TestAccessAfterRotationUsesRetainedEpoch(t *testing.T) {
	s, owner, tx := accessFixture(t) // commits an epoch-1 confidential tx
	auditor, _ := NewClient(nil)
	auditorKey, err := crypto.GenerateEnvelopeKey()
	if err != nil {
		t.Fatal(err)
	}
	grantTo(t, s, owner, auditor.Address())

	if _, err := s.engine.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	req := AccessRequest{
		OrigTx:       tx, // epoch-1 envelope, epoch now 2
		Requester:    auditor.Address(),
		RequesterPub: auditorKey.Public(),
	}
	grant, err := s.engine.HandleAccessRequest(req)
	if err != nil {
		t.Fatalf("retained-epoch access rejected: %v", err)
	}
	rpt, err := OpenGrantedReceipt(auditorKey, grant.SealedReceipt)
	if err != nil {
		t.Fatal(err)
	}
	if rpt.Status != chain.ReceiptOK {
		t.Errorf("granted receipt status = %d", rpt.Status)
	}

	// Advance past the window, drain, zeroize: epoch 1 becomes unopenable.
	if _, err := s.engine.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.engine.ResealSweep(1 << 20); err != nil {
		t.Fatal(err)
	}
	if s.engine.ZeroizeDrainedEpochs() == 0 {
		t.Fatal("no epochs zeroized after drain")
	}
	if _, err := s.engine.HandleAccessRequest(req); err == nil {
		t.Fatal("zeroized epoch's envelope opened — forward secrecy broken")
	}
}

func TestEngineEnclaveChargesResealOcall(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte("x"))
	res, _ := s.engine.Execute(tx)
	commit(t, s, res)
	if _, err := s.engine.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	before := s.engine.Enclave().Stats().Ocalls
	if _, err := s.engine.ResealSweep(1 << 20); err != nil {
		t.Fatal(err)
	}
	if s.engine.Enclave().Stats().Ocalls <= before {
		t.Error("re-seal sweep should charge enclave boundary crossings")
	}
}
