package core

import (
	"testing"

	"confide/internal/chain"
)

// attestStack builds a confidential engine plus a batch of pre-verified
// transactions (3 confidential + 2 public, all through the CS enclave, the
// way the node routes them when a confidential engine is present).
func attestStack(t *testing.T) (*testStack, []*chain.Tx) {
	t.Helper()
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	var txs []*chain.Tx
	for i := 0; i < 3; i++ {
		tx, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte{byte(i)})
		txs = append(txs, tx)
	}
	for i := 0; i < 2; i++ {
		tx, err := client.NewPublicTx(counterAddr, "set", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	if got := len(s.engine.PreVerifyBatch(txs)); got != len(txs) {
		t.Fatalf("pre-verified %d of %d", got, len(txs))
	}
	return s, txs
}

func txRoot(txs []*chain.Tx) chain.Hash {
	leaves := make([]chain.Hash, len(txs))
	for i, tx := range txs {
		leaves[i] = tx.Hash()
	}
	return chain.MerkleRoot(leaves)
}

func TestAttestPreVerifiedRoundTrip(t *testing.T) {
	s, txs := attestStack(t)
	tag := s.engine.AttestPreVerified(7, 2, txs)
	if tag == nil {
		t.Fatal("fully pre-verified batch must be attestable")
	}
	if !s.engine.VerifyPreVerifyTag(7, 2, txRoot(txs), tag) {
		t.Fatal("tag must verify against the same (height, proposer, root)")
	}
	// The tag binds height, proposer and root individually.
	if s.engine.VerifyPreVerifyTag(8, 2, txRoot(txs), tag) {
		t.Error("tag must not verify at a different height")
	}
	if s.engine.VerifyPreVerifyTag(7, 3, txRoot(txs), tag) {
		t.Error("tag must not verify for a different proposer")
	}
	if s.engine.VerifyPreVerifyTag(7, 2, txRoot(txs[:4]), tag) {
		t.Error("tag must not verify against a different tx root")
	}
}

// TestAttestRefusesUnverifiedTx is the forged-proposer regression: a host
// asking its enclave to attest a batch containing a transaction the enclave
// never verified must get nothing, for both transaction classes.
func TestAttestRefusesUnverifiedTx(t *testing.T) {
	s, txs := attestStack(t)
	client, _ := NewClient(s.engine.EnvelopePublicKey())

	smuggledConf, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte("forged"))
	if tag := s.engine.AttestPreVerified(7, 2, append(txs[:len(txs):len(txs)], smuggledConf)); tag != nil {
		t.Error("must refuse to attest an unverified confidential tx")
	}
	smuggledPub, _ := client.NewPublicTx(counterAddr, "set", []byte("forged"))
	if tag := s.engine.AttestPreVerified(7, 2, append(txs[:len(txs):len(txs)], smuggledPub)); tag != nil {
		t.Error("must refuse to attest an unverified public tx")
	}
	// The clean batch still attests afterwards (refusal has no side effect).
	if tag := s.engine.AttestPreVerified(7, 2, txs); tag == nil {
		t.Error("clean batch must remain attestable")
	}
	// Once entries are dropped (e.g. after commit), attestation is refused
	// rather than silently claiming stale verification.
	hashes := make([]chain.Hash, len(txs))
	for i, tx := range txs {
		hashes[i] = tx.Hash()
	}
	s.engine.DropPreVerified(hashes)
	if tag := s.engine.AttestPreVerified(7, 2, txs); tag != nil {
		t.Error("must refuse to attest after cache entries are dropped")
	}
}

// TestAttestRejectsAttestationSeededEntries pins the no-transitive-trust
// rule: entries seeded from another proposer's tag (TrustPreVerified) must
// not ground a fresh attestation.
func TestAttestRejectsAttestationSeededEntries(t *testing.T) {
	s := newStack(t, AllOptimizations())
	deployCounter(t, s.engine, counterAddr, VMCVM, true)
	client, _ := NewClient(s.engine.EnvelopePublicKey())
	tx, _, _ := client.NewConfidentialTx(counterAddr, "set", []byte("x"))
	txs := []*chain.Tx{tx}

	s.engine.TrustPreVerified(txs)
	if s.engine.PreVerifiedCount() != 1 {
		t.Fatal("attestation-seeded entry expected in cache")
	}
	if tag := s.engine.AttestPreVerified(7, 2, txs); tag != nil {
		t.Error("attestation-seeded entries must not ground a new tag")
	}
	// Local verification upgrades the entry and restores attestability.
	if got := len(s.engine.PreVerifyBatch(txs)); got != 1 {
		t.Fatalf("pre-verified %d of 1", got)
	}
	if tag := s.engine.AttestPreVerified(7, 2, txs); tag == nil {
		t.Error("locally verified batch must be attestable")
	}
}

func TestAttestPublicEngineUntagged(t *testing.T) {
	s, txs := attestStack(t)
	if tag := s.public.AttestPreVerified(7, 2, txs); tag != nil {
		t.Error("public engine (no ring) must not produce tags")
	}
	if s.public.VerifyPreVerifyTag(7, 2, txRoot(txs), s.engine.AttestPreVerified(7, 2, txs)) {
		t.Error("public engine (no ring) must not accept tags")
	}
}
