package core

import "confide/internal/crypto"

// sealForTest lets tests craft envelopes outside the Client path (e.g. with
// corrupted contents).
func sealForTest(pkTx, ktx, payload []byte) ([]byte, error) {
	return crypto.SealEnvelope(pkTx, ktx, payload)
}
