module confide

go 1.22
