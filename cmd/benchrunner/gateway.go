package main

// -exp gateway: offered-load sweep over the HTTP edge. Closed-loop clients
// drive confidential traffic through real TCP gateways at three load levels:
//
//   closed-loop  each client waits for its receipt before the next submit —
//                the sustainable baseline (no shedding, shallow pool)
//   open-loop    clients submit as fast as the edge acks, modest fleet
//   saturate     a large fleet hammering the edge well past the pipeline's
//                drain rate — admission control must shed explicitly while
//                committed throughput holds
//
// Committed throughput and submit→commit latency are measured from the
// node's commit notifications, not from client-side guesses; shed counts are
// the explicit 429/503 rejections the clients observed.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"confide/internal/chain"
	"confide/internal/consensus"
	"confide/internal/core"
	"confide/internal/gateway"
	"confide/internal/node"
	"confide/internal/workload"
)

// gwRow is one offered-load level of the sweep (serialized into
// BENCH_gateway.json by -json).
type gwRow struct {
	Level        string  `json:"level"`
	Clients      int     `json:"clients"`
	Seconds      float64 `json:"seconds"`
	OfferedTPS   float64 `json:"offered_tps"`
	AcceptedTPS  float64 `json:"accepted_tps"`
	CommittedTPS float64 `json:"committed_tps"`
	ShedRateLim  uint64  `json:"shed_rate_limited"`
	ShedOverload uint64  `json:"shed_overloaded"`
	Rejected     uint64  `json:"rejected"`
	CommitP50Ms  float64 `json:"commit_p50_ms"`
	CommitP95Ms  float64 `json:"commit_p95_ms"`
	CommitP99Ms  float64 `json:"commit_p99_ms"`
}

type gwLevel struct {
	name        string
	clients     int
	waitReceipt bool
	dur         time.Duration
}

func runGateway(quick bool) (any, error) {
	fmt.Println("=== Gateway: offered-load sweep over the HTTP edge (4 nodes, 4 gateways) ===")
	cluster, err := node.NewCluster(node.ClusterOptions{
		Nodes: 4,
		Node: node.Config{
			// A deliberately small block budget (a production chain's gas
			// limit, scaled to this container) bounds the pipeline's drain
			// rate below what the client fleet can offer — the sweep needs
			// offered load to genuinely exceed sustainable throughput.
			// Together with the paced driver tick below it makes the
			// ceiling an explicit cadence budget rather than a CPU race:
			// on a small container the client fleet and the pipeline share
			// cores, and a CPU-bound ceiling would make the held-throughput
			// ratio a scheduler lottery instead of a property of admission.
			BlockMaxTxs: 16,
			EngineOpts:  core.AllOptimizations(),
			// Pipelined production (PR 10): with depth 8 the edge's drain
			// rate is eight blocks per tick instead of one, so the cadence
			// ceiling the admission sweep pushes against is ~3200 tps rather
			// than 400. The view timeout is generous for the same reason the
			// pipeline sweep's is: a saturated single-core box can starve
			// heartbeats long enough to look like a dead leader.
			PipelineDepth: 8,
			ExecWorkers:   4,
			Consensus: consensus.Options{
				ViewTimeout:        2 * time.Second,
				RetransmitInterval: 20 * time.Millisecond,
				RetransmitMax:      200 * time.Millisecond,
				HeartbeatInterval:  50 * time.Millisecond,
			},
			SyncInterval: 40 * time.Millisecond,
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	addr := chain.AddressFromBytes([]byte("gw-bench"))
	owner := chain.AddressFromBytes([]byte("gw-owner"))
	code, err := workload.Compile(workload.ABSTransferFlatSrc, core.VMCVM)
	if err != nil {
		return nil, err
	}
	if err := cluster.DeployEverywhere(addr, owner, core.VMCVM, code, true, 1); err != nil {
		return nil, err
	}
	stopDriver := cluster.StartDriver(40 * time.Millisecond)
	defer stopDriver()

	var gws []*gateway.Gateway
	for _, nd := range cluster.Nodes {
		// The shed threshold sits a few block budgets above the pipeline's
		// standing depth (eight 16-tx blocks ride in consensus at full
		// throttle): admission's job is to keep the backlog at a depth the
		// pipeline drains at full speed, and shed everything beyond it.
		gw, err := gateway.Serve(gateway.Config{Node: nd, MaxPoolDepth: 256})
		if err != nil {
			return nil, err
		}
		defer gw.Kill()
		gws = append(gws, gw)
	}

	obs := newCommitObserver()
	off := cluster.Nodes[0].OnCommit(obs.onCommit)
	defer off()
	epoch, pk := cluster.EnvelopeKeyInfo()

	base := 3 * time.Second
	if quick {
		base = time.Second
	}
	levels := []gwLevel{
		{"closed-loop", 32, true, base},
		{"open-loop", 16, false, base},
		{"saturate", 160, false, base},
	}

	fmt.Printf("%-12s %8s %10s %10s %10s %8s %8s %9s %9s %9s\n",
		"level", "clients", "offered", "accepted", "committed", "shed429", "shed503", "p50ms", "p95ms", "p99ms")
	var rows []gwRow
	for _, lv := range levels {
		row, err := runGatewayLevel(gws, obs, epoch, pk, addr, lv)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		fmt.Printf("%-12s %8d %10.1f %10.1f %10.1f %8d %8d %9.1f %9.1f %9.1f\n",
			row.Level, row.Clients, row.OfferedTPS, row.AcceptedTPS, row.CommittedTPS,
			row.ShedRateLim, row.ShedOverload, row.CommitP50Ms, row.CommitP95Ms, row.CommitP99Ms)
		drainGatewayPools(cluster, 15*time.Second)
	}

	// The headline the sweep exists to demonstrate: with offered load a
	// multiple of the sustainable rate, the edge sheds explicitly and the
	// pipeline's committed throughput does not collapse.
	baseRow, peak := rows[0], rows[len(rows)-1]
	if baseRow.CommittedTPS > 0 {
		fmt.Printf("saturate offered %.1fx the unloaded committed rate; committed held at %.0f%% (shed %d)\n",
			peak.OfferedTPS/baseRow.CommittedTPS,
			100*peak.CommittedTPS/baseRow.CommittedTPS,
			peak.ShedRateLim+peak.ShedOverload)
	}
	return rows, nil
}

func runGatewayLevel(gws []*gateway.Gateway, obs *commitObserver, epoch uint64, pk []byte, addr chain.Address, lv gwLevel) (gwRow, error) {
	transport := &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 64}
	defer transport.CloseIdleConnections()
	hc := &http.Client{Transport: transport, Timeout: 20 * time.Second}

	// Open-loop levels draw from a pre-sealed envelope stock so the
	// measurement window captures the edge and pipeline under load, not the
	// client fleet's own sealing CPU.
	var stock chan preTx
	if !lv.waitReceipt {
		var err error
		stock, err = pregenTxs(pk, epoch, addr, 2000*(1+int(lv.dur.Seconds())))
		if err != nil {
			return gwRow{}, err
		}
	}

	var ctr gwCounters
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, lv.clients)
	for i := 0; i < lv.clients; i++ {
		cc, err := core.NewClient(pk)
		if err != nil {
			return gwRow{}, err
		}
		cc.SetEnvelopeKey(epoch, pk)
		url := gws[i%len(gws)].URL()
		rng := rand.New(rand.NewSource(int64(i) + 1))
		next := func() (chain.Hash, []byte, error) {
			if stock != nil {
				select {
				case t := <-stock:
					return t.h, t.raw, nil
				default: // stock exhausted: seal inline
				}
			}
			return sealOne(cc, addr, rng)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := gwClientLoop(url, hc, next, lv.waitReceipt, stop, obs, &ctr, fmt.Sprintf("bench-%d", id)); err != nil {
				errCh <- err
			}
		}(i)
	}

	// Warm up connections and the pipeline before the measurement window.
	warm := lv.dur / 4
	if warm < 300*time.Millisecond {
		warm = 300 * time.Millisecond
	}
	time.Sleep(warm)
	ctr.reset()
	obs.begin()
	start := time.Now()
	time.Sleep(lv.dur)
	elapsed := time.Since(start).Seconds()
	committed, lat := obs.end()
	attempts := atomic.LoadUint64(&ctr.attempts)
	accepted := atomic.LoadUint64(&ctr.accepted)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		return gwRow{}, err
	default:
	}

	p50, p95, p99 := latencyPercentiles(lat)
	return gwRow{
		Level:        lv.name,
		Clients:      lv.clients,
		Seconds:      elapsed,
		OfferedTPS:   float64(attempts) / elapsed,
		AcceptedTPS:  float64(accepted) / elapsed,
		CommittedTPS: float64(committed) / elapsed,
		ShedRateLim:  atomic.LoadUint64(&ctr.shedRate),
		ShedOverload: atomic.LoadUint64(&ctr.shedOver),
		Rejected:     atomic.LoadUint64(&ctr.rejected),
		CommitP50Ms:  p50,
		CommitP95Ms:  p95,
		CommitP99Ms:  p99,
	}, nil
}

// preTx is one pre-sealed wire transaction ready to submit.
type preTx struct {
	h   chain.Hash
	raw []byte
}

// sealOne builds one confidential workload transaction and its wire body.
func sealOne(cc *core.Client, addr chain.Address, rng *rand.Rand) (chain.Hash, []byte, error) {
	method, args := workload.ABSFlatInput(rng)
	tx, _, err := cc.NewConfidentialTx(addr, method, args...)
	if err != nil {
		return chain.Hash{}, nil, err
	}
	raw, err := json.Marshal(gateway.SubmitRequest{Tx: tx.Encode()})
	if err != nil {
		return chain.Hash{}, nil, err
	}
	return tx.Hash(), raw, nil
}

// pregenTxs seals count envelopes in parallel ahead of a measurement window.
func pregenTxs(pk []byte, epoch uint64, addr chain.Address, count int) (chan preTx, error) {
	out := make(chan preTx, count)
	workers := 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		cc, err := core.NewClient(pk)
		if err != nil {
			return nil, err
		}
		cc.SetEnvelopeKey(epoch, pk)
		n := count / workers
		if w == 0 {
			n += count % workers
		}
		rng := rand.New(rand.NewSource(int64(w) + 1001))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				h, raw, err := sealOne(cc, addr, rng)
				if err != nil {
					errCh <- err
					return
				}
				out <- preTx{h, raw}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return out, nil
}

// gwClientLoop is one closed-loop client: take the next confidential
// envelope, submit it over TCP, optionally long-poll the receipt, repeat
// until stopped. A shed submission was never admitted, so the client honors
// the rejection's machine-readable backoff and then retries the identical
// wire bytes — the protocol's idempotent recovery.
func gwClientLoop(url string, hc *http.Client, next func() (chain.Hash, []byte, error), waitReceipt bool, stop <-chan struct{}, obs *commitObserver, ctr *gwCounters, name string) error {
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		h, raw, err := next()
		if err != nil {
			return err
		}
		obs.note(h)
	retry:
		for {
			atomic.AddUint64(&ctr.attempts, 1)
			req, err := http.NewRequest(http.MethodPost, url+"/v1/submit", bytes.NewReader(raw))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Confide-Client", name)
			resp, err := hc.Do(req)
			if err != nil {
				obs.forget(h)
				return err
			}
			switch resp.StatusCode {
			case http.StatusOK:
				var sr gateway.SubmitResult
				err := json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					obs.forget(h)
					return err
				}
				if sr.Status != gateway.StatusAccepted {
					obs.forget(h)
					atomic.AddUint64(&ctr.rejected, 1)
					break retry
				}
				atomic.AddUint64(&ctr.accepted, 1)
				if waitReceipt {
					rr, err := hc.Get(fmt.Sprintf("%s/v1/receipt/%x?wait=10000", url, h[:]))
					if err != nil {
						return err
					}
					rr.Body.Close()
				}
				break retry
			case http.StatusTooManyRequests:
				atomic.AddUint64(&ctr.shedRate, 1)
				if !sleepRetryAfter(resp, stop) {
					obs.forget(h)
					return nil
				}
			case http.StatusServiceUnavailable:
				atomic.AddUint64(&ctr.shedOver, 1)
				if !sleepRetryAfter(resp, stop) {
					obs.forget(h)
					return nil
				}
			default:
				obs.forget(h)
				atomic.AddUint64(&ctr.rejected, 1)
				break retry
			}
			select {
			case <-stop:
				obs.forget(h)
				return nil
			default:
			}
		}
	}
}

// sleepRetryAfter honors the machine-readable backoff of a shed response
// (the protocol behavior the rejection exists for), bounded to keep the
// sweep moving. Returns false if the level ended during the sleep.
func sleepRetryAfter(resp *http.Response, stop <-chan struct{}) bool {
	var eb gateway.ErrorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	wait := time.Duration(eb.RetryAfterMs) * time.Millisecond
	if wait <= 0 {
		wait = 100 * time.Millisecond
	}
	if wait > 250*time.Millisecond {
		wait = 250 * time.Millisecond
	}
	select {
	case <-stop:
		return false
	case <-time.After(wait):
		return true
	}
}

type gwCounters struct {
	attempts, accepted, rejected, shedRate, shedOver uint64
}

func (c *gwCounters) reset() {
	atomic.StoreUint64(&c.attempts, 0)
	atomic.StoreUint64(&c.accepted, 0)
	atomic.StoreUint64(&c.rejected, 0)
	atomic.StoreUint64(&c.shedRate, 0)
	atomic.StoreUint64(&c.shedOver, 0)
}

// commitObserver hangs off one node's commit notifications: it counts every
// transaction committed inside the measurement window and, for transactions
// whose submission time it was told about, records submit→commit latency.
type commitObserver struct {
	mu       sync.Mutex
	times    map[chain.Hash]time.Time
	counting bool
	count    uint64
	lat      []time.Duration
}

func newCommitObserver() *commitObserver {
	return &commitObserver{times: make(map[chain.Hash]time.Time)}
}

func (o *commitObserver) note(h chain.Hash) {
	now := time.Now()
	o.mu.Lock()
	o.times[h] = now
	o.mu.Unlock()
}

func (o *commitObserver) forget(h chain.Hash) {
	o.mu.Lock()
	delete(o.times, h)
	o.mu.Unlock()
}

func (o *commitObserver) onCommit(_ uint64, hashes []chain.Hash) {
	now := time.Now()
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, h := range hashes {
		if o.counting {
			o.count++
		}
		if t, ok := o.times[h]; ok {
			delete(o.times, h)
			if o.counting {
				o.lat = append(o.lat, now.Sub(t))
			}
		}
	}
}

func (o *commitObserver) begin() {
	o.mu.Lock()
	o.counting, o.count, o.lat = true, 0, nil
	o.mu.Unlock()
}

func (o *commitObserver) end() (uint64, []time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.counting = false
	return o.count, o.lat
}

func latencyPercentiles(lat []time.Duration) (p50, p95, p99 float64) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.95), at(0.99)
}

// drainGatewayPools waits for the previous level's backlog to commit so the
// next level starts against an idle pipeline.
func drainGatewayPools(cluster *node.Cluster, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		depth := 0
		for _, n := range cluster.Nodes {
			depth += n.VerifiedPoolLen() + n.UnverifiedPoolLen()
		}
		if depth == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
