package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"confide/internal/metrics"
)

// Machine-readable experiment output: `-json` writes one BENCH_<exp>.json
// per experiment, carrying the experiment's own rows (TPS etc.) plus the
// latency percentiles the registry histograms accumulated during the run —
// end-to-end pipeline latency, per-stage breakdown, and the checkpoint /
// snapshot fast-sync timings when those paths ran.

// latencySummary reduces one histogram family to report form.
type latencySummary struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// benchDoc is the top-level BENCH_<exp>.json document.
type benchDoc struct {
	Experiment     string  `json:"experiment"`
	GeneratedAt    string  `json:"generated_at"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Rows is the experiment's native result set (workload/engine/TPS rows
	// for the figures, operation profiles for the tables).
	Rows any `json:"rows"`
	// PipelineLatency summarizes confide_pipeline_total_seconds: the
	// seal→preverify→order→execute→commit end-to-end time per transaction.
	PipelineLatency *latencySummary `json:"pipeline_latency,omitempty"`
	// StageLatency breaks the pipeline down per stage.
	StageLatency map[string]latencySummary `json:"stage_latency,omitempty"`
	// CheckpointExport / SnapshotSync summarize the fast-sync subsystem:
	// time to export a sealed checkpoint and manifest-request-to-install
	// time of snapshot joins (present only when checkpoints ran).
	CheckpointExport *latencySummary `json:"checkpoint_export,omitempty"`
	SnapshotSync     *latencySummary `json:"snapshot_sync,omitempty"`
}

// familyLatency merges every series of a histogram family (bucket-wise; all
// series of a family share bounds) and summarizes it. Nil when the family
// never observed anything.
func familyLatency(snap metrics.Snapshot, family string) *latencySummary {
	var merged metrics.HistogramSnapshot
	for series, h := range snap.Histograms {
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if name != family || h.Count == 0 {
			continue
		}
		if merged.Buckets == nil {
			merged.Bounds = h.Bounds
			merged.Buckets = append([]uint64(nil), h.Buckets...)
			merged.Count, merged.Sum = h.Count, h.Sum
			continue
		}
		for i := range h.Buckets {
			merged.Buckets[i] += h.Buckets[i]
		}
		merged.Count += h.Count
		merged.Sum += h.Sum
	}
	if merged.Count == 0 {
		return nil
	}
	return &latencySummary{
		Count: merged.Count,
		P50Ms: merged.Quantile(0.50) * 1e3,
		P95Ms: merged.Quantile(0.95) * 1e3,
		P99Ms: merged.Quantile(0.99) * 1e3,
	}
}

// stageLatencies summarizes each stage series of the pipeline tracer.
func stageLatencies(snap metrics.Snapshot) map[string]latencySummary {
	out := make(map[string]latencySummary)
	for series, h := range snap.Histograms {
		if !strings.HasPrefix(series, "confide_pipeline_stage_seconds{") || h.Count == 0 {
			continue
		}
		stage := series[strings.IndexByte(series, '"')+1:]
		stage = stage[:strings.IndexByte(stage, '"')]
		out[stage] = latencySummary{
			Count: h.Count,
			P50Ms: h.Quantile(0.50) * 1e3,
			P95Ms: h.Quantile(0.95) * 1e3,
			P99Ms: h.Quantile(0.99) * 1e3,
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// writeBenchJSON emits BENCH_<exp>.json into the working directory.
func writeBenchJSON(exp string, rows any, elapsed time.Duration) error {
	snap := metrics.Default().Snapshot()
	doc := benchDoc{
		Experiment:       exp,
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		ElapsedSeconds:   elapsed.Seconds(),
		Rows:             rows,
		PipelineLatency:  familyLatency(snap, "confide_pipeline_total_seconds"),
		StageLatency:     stageLatencies(snap),
		CheckpointExport: familyLatency(snap, "confide_node_checkpoint_export_seconds"),
		SnapshotSync:     familyLatency(snap, "confide_node_snapshot_sync_seconds"),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("BENCH_%s.json", exp)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
