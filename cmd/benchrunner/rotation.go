package main

import (
	"fmt"
	"math/rand"
	"time"

	"confide/internal/chain"
	"confide/internal/core"
	"confide/internal/metrics"
	"confide/internal/node"
	"confide/internal/workload"
)

// The rotation experiment measures what a consensus-ordered key rotation
// costs a running network: ABS-transfer traffic is driven through a 4-node
// cluster before, across, and after a key-epoch rotation. The rotation phase
// keeps pre-rotation clients submitting (their envelopes ride the acceptance
// window) alongside post-rotation clients on the new pk_tx; the acceptance
// criterion is zero failed transactions. The deterministic re-seal sweep that
// migrates the sealed store onto the new epoch is then timed separately,
// since production amortizes it in rate-limited background slices.

type rotationRow struct {
	// Phase labels the traffic window.
	Phase string `json:"phase"`
	// Epoch is the cluster's key epoch when the phase ended.
	Epoch uint64 `json:"epoch"`
	// Txs is the committed transaction count for the phase.
	Txs int `json:"txs"`
	// TPS is phase throughput (commits/second, synchronous rounds).
	TPS float64 `json:"tps"`
	// Failed counts transactions with a non-OK receipt (must be 0).
	Failed int `json:"failed"`
}

type rotationResult struct {
	Rows []rotationRow `json:"rows"`
	// ResealedRecords is how many sealed records the post-rotation sweep
	// migrated onto the new epoch on one node.
	ResealedRecords int `json:"resealed_records"`
	// ResealMs is that sweep's wall-clock time (unbounded budget).
	ResealMs float64 `json:"reseal_ms"`
	// RingAdvances is the registry delta of ring rotations across the run
	// (nodes × rotations when every replica advanced).
	RingAdvances uint64 `json:"ring_advances"`
}

func runRotation(txs int) (any, error) {
	if txs <= 0 {
		txs = 24
	}
	fmt.Println("=== Key rotation: throughput across a consensus-ordered epoch rotation (4 nodes) ===")
	advancesBefore := metrics.Default().Snapshot().CounterSum("confide_keyepoch_rotations_total")

	cluster, err := node.NewCluster(node.ClusterOptions{
		Nodes: 4,
		Node: node.Config{
			BlockMaxTxs:  8,
			EngineOpts:   core.AllOptimizations(),
			SyncInterval: 10 * time.Millisecond,
			ResealRate:   -1, // sweep measured explicitly below
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	addr := chain.AddressFromBytes([]byte("rotation-contract"))
	owner := chain.AddressFromBytes([]byte("rotation-owner"))
	code, err := workload.Compile(workload.ABSTransferFlatSrc, core.VMCVM)
	if err != nil {
		return nil, err
	}
	if err := cluster.DeployEverywhere(addr, owner, core.VMCVM, code, true, 1); err != nil {
		return nil, err
	}
	newEpochClient := func() (*core.Client, error) {
		epoch, pk := cluster.EnvelopeKeyInfo()
		client, err := core.NewClient(pk)
		if err != nil {
			return nil, err
		}
		client.SetEnvelopeKey(epoch, pk)
		return client, nil
	}
	oldClient, err := newEpochClient() // epoch 1
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(11))
	var submitted []*chain.Tx
	// drive commits one transaction per synchronous round through client.
	drive := func(client *core.Client, n int) error {
		for i := 0; i < n; i++ {
			method, args := workload.ABSFlatInput(rng)
			tx, _, err := client.NewConfidentialTx(addr, method, args...)
			if err != nil {
				return err
			}
			if err := cluster.Submit(tx); err != nil {
				return err
			}
			if _, err := cluster.ProcessRound(10 * time.Second); err != nil {
				return err
			}
			submitted = append(submitted, tx)
		}
		return nil
	}
	// failures counts non-OK receipts among everything submitted so far,
	// then resets the window.
	failures := func() int {
		failed := 0
		for _, tx := range submitted {
			rpt, ok := cluster.Nodes[0].Receipt(tx.Hash())
			if !ok || rpt.Status != chain.ReceiptOK {
				failed++
			}
		}
		submitted = submitted[:0]
		return failed
	}
	result := &rotationResult{}
	phase := func(label string, fn func() (int, error)) error {
		start := time.Now()
		n, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		elapsed := time.Since(start)
		result.Rows = append(result.Rows, rotationRow{
			Phase:  label,
			Epoch:  cluster.CurrentEpoch(),
			Txs:    n,
			TPS:    float64(n) / elapsed.Seconds(),
			Failed: failures(),
		})
		return nil
	}

	// Phase 1: steady state on the provisioned epoch.
	if err := phase("steady (epoch 1)", func() (int, error) {
		return txs, drive(oldClient, txs)
	}); err != nil {
		return nil, err
	}

	// Phase 2: rotation in flight. The governance transaction orders the
	// rotation two blocks out; traffic keeps flowing from the pre-rotation
	// client the whole way through, joined by a new-epoch client once the
	// rotation activates.
	if err := phase("rotation window (epoch 1→2)", func() (int, error) {
		if _, _, err := cluster.RotateEpoch(2); err != nil {
			return 0, err
		}
		var newClient *core.Client
		for i := 0; i < txs; i++ {
			if newClient == nil && cluster.CurrentEpoch() >= 2 {
				if newClient, err = newEpochClient(); err != nil {
					return i, err
				}
			}
			client := oldClient
			if newClient != nil && i%2 == 1 {
				client = newClient
			}
			if err := drive(client, 1); err != nil {
				return i, err
			}
		}
		if got := cluster.CurrentEpoch(); got != 2 {
			return txs, fmt.Errorf("rotation never activated (epoch %d)", got)
		}
		return txs, nil
	}); err != nil {
		return nil, err
	}

	// The re-seal sweep, timed on one node with an unbounded budget; the
	// other replicas drain untimed so the cluster stays symmetric.
	sweepStart := time.Now()
	status, err := cluster.Nodes[0].ResealNow(0)
	if err != nil {
		return nil, fmt.Errorf("reseal sweep: %w", err)
	}
	result.ResealMs = float64(time.Since(sweepStart).Microseconds()) / 1e3
	result.ResealedRecords = status.Resealed
	for _, n := range cluster.Nodes[1:] {
		if _, err := n.ResealNow(0); err != nil {
			return nil, err
		}
	}

	// Phase 3: steady state on the rotated epoch, drained store.
	postClient, err := newEpochClient()
	if err != nil {
		return nil, err
	}
	if err := phase("steady (epoch 2, drained)", func() (int, error) {
		return txs, drive(postClient, txs)
	}); err != nil {
		return nil, err
	}

	result.RingAdvances = metrics.Default().Snapshot().CounterSum("confide_keyepoch_rotations_total") - advancesBefore
	if result.RingAdvances < uint64(len(cluster.Nodes)) {
		return nil, fmt.Errorf("rotation: only %d ring advances recorded across %d nodes", result.RingAdvances, len(cluster.Nodes))
	}
	for _, r := range result.Rows {
		if r.Failed != 0 {
			return nil, fmt.Errorf("rotation: %d failed transaction(s) in phase %q — window acceptance broken", r.Failed, r.Phase)
		}
	}

	fmt.Printf("%-30s %-7s %-6s %10s %8s\n", "Phase", "Epoch", "Txs", "TPS", "Failed")
	for _, r := range result.Rows {
		fmt.Printf("%-30s %-7d %-6d %10.1f %8d\n", r.Phase, r.Epoch, r.Txs, r.TPS, r.Failed)
	}
	fmt.Printf("re-seal sweep: %d records in %.1f ms (one node, unbounded budget); %d ring advances\n",
		result.ResealedRecords, result.ResealMs, result.RingAdvances)
	return result, nil
}
