package main

// -exp pipeline: depth × OCC-lane × conflict-rate sweep over the pipelined
// block scheduler. Every cell runs a fresh 4-node cluster on the gateway
// sweep's cadence budget (16-tx blocks, 40 ms driver tick), so depth 1 is
// the serialized 400 tps ceiling the edge benchmark measured — and each
// extra pipeline slot raises the per-tick ordering budget by one block.
// An in-process feeder keeps the leader's verified pool topped from a
// pre-sealed transaction stock, so the measurement window captures the
// pipeline's drain rate, not client sealing CPU.
//
// The sweep carries a payload-mode axis. Confidential cells run the full
// envelope path and hit this container's crypto ceiling: each of the four
// replicas pays an ECDH envelope open plus an ECDSA signature check
// (~270 µs of single-core CPU per transaction per replica), which saturates
// the box near 1.1k tps no matter how deep the pipeline runs — a measured
// finding the sweep reports rather than hides. Public cells strip the
// envelope (signature checks and contract execution remain) and isolate
// the scheduler's own ordering ceiling, which is what the depth axis is
// designed to break.
//
// Per cell the sweep reports committed throughput (from the node's commit
// notifications), the OCC speculation conflict rate at that hot-key
// probability, lane occupancy, and submit→commit latency percentiles.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"confide/internal/chain"
	"confide/internal/consensus"
	"confide/internal/core"
	"confide/internal/metrics"
	"confide/internal/node"
	"confide/internal/workload"
)

// plRow is one (mode, depth, workers, hotProb) cell of the sweep
// (serialized into BENCH_pipeline.json by -json).
type plRow struct {
	Mode         string  `json:"mode"` // "confidential" | "public"
	Depth        int     `json:"depth"`
	Workers      int     `json:"workers"`
	HotProb      float64 `json:"hot_prob"`
	Seconds      float64 `json:"seconds"`
	Blocks       uint64  `json:"blocks"`
	CommittedTPS float64 `json:"committed_tps"`
	Speculated   uint64  `json:"occ_speculated"`
	Conflicts    uint64  `json:"occ_conflicts"`
	ConflictRate float64 `json:"occ_conflict_rate"`
	LaneBusyPct  float64 `json:"lane_busy_pct"`
	Speedup      float64 `json:"speedup_vs_serialized"`
	CommitP50Ms  float64 `json:"commit_p50_ms"`
	CommitP95Ms  float64 `json:"commit_p95_ms"`
}

// plDebug turns on in-window state sampling (development aid).
const plDebug = false

// plCell names one sweep configuration.
type plCell struct {
	mode    string
	depth   int
	workers int
	hot     float64
}

func pipelineCells(quick bool) []plCell {
	if quick {
		return []plCell{
			{"confidential", 1, 1, 0.25},
			{"confidential", 8, 4, 0.25},
			{"public", 1, 1, 0.25},
			{"public", 8, 1, 0.25},
			{"public", 8, 4, 0.25},
		}
	}
	var cells []plCell
	// Confidential: the envelope's asymmetric crypto dominates long before
	// OCC conflicts matter, so one conflict level suffices.
	for _, d := range []int{1, 2, 4, 8} {
		for _, w := range []int{1, 4} {
			cells = append(cells, plCell{"confidential", d, w, 0.25})
		}
	}
	// Public: the scheduler is the binding constraint — sweep the conflict
	// axis too so the lanes' validation-pass discards become visible.
	for _, hot := range []float64{0.25, 0.75} {
		for _, d := range []int{1, 2, 4, 8} {
			for _, w := range []int{1, 4} {
				cells = append(cells, plCell{"public", d, w, hot})
			}
		}
	}
	return cells
}

func runPipeline(quick bool) (any, error) {
	window := 2 * time.Second
	if quick {
		window = time.Second
	}
	fmt.Println("=== Pipeline: depth × OCC-lane × conflict-rate sweep (4 nodes, 16-tx blocks, 40 ms tick) ===")
	fmt.Printf("%-13s %-6s %-8s %-5s %10s %8s %10s %9s %8s %9s %9s\n",
		"mode", "depth", "workers", "hot", "committed", "blocks", "conflict%", "lane%", "speedup", "p50ms", "p95ms")

	var rows []plRow
	base := map[string]float64{} // depth=1/workers=1 committed tps per (mode, hot)
	for _, c := range pipelineCells(quick) {
		row, err := runPipelineCell(c, window)
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("%s/%.2f", c.mode, c.hot)
		if c.depth == 1 && c.workers == 1 {
			base[key] = row.CommittedTPS
		}
		if b := base[key]; b > 0 {
			row.Speedup = row.CommittedTPS / b
		}
		rows = append(rows, row)
		fmt.Printf("%-13s %-6d %-8d %-5.2f %10.1f %8d %10.1f %9.1f %7.2fx %9.1f %9.1f\n",
			row.Mode, row.Depth, row.Workers, row.HotProb, row.CommittedTPS, row.Blocks,
			100*row.ConflictRate, row.LaneBusyPct, row.Speedup, row.CommitP50Ms, row.CommitP95Ms)
	}

	// The headline the sweep exists for: pipelining breaks the serialized
	// one-proposal-per-tick ceiling by the window depth.
	var best plRow
	for _, r := range rows {
		if r.CommittedTPS > best.CommittedTPS {
			best = r
		}
	}
	fmt.Printf("best cell %s depth=%d workers=%d hot=%.2f: %.0f tps committed, %.1fx the 393 tps serialized closed-loop baseline\n",
		best.Mode, best.Depth, best.Workers, best.HotProb, best.CommittedTPS, best.CommittedTPS/393)
	return rows, nil
}

func runPipelineCell(c plCell, window time.Duration) (plRow, error) {
	cluster, err := node.NewCluster(node.ClusterOptions{
		Nodes: 4,
		Node: node.Config{
			// The same deliberately small cadence budget as the gateway
			// sweep: 16-tx blocks cut on a 40 ms tick put the serialized
			// ceiling at 400 tps, so the depth axis — not a CPU race —
			// decides the cell's throughput.
			BlockMaxTxs:   16,
			PipelineDepth: c.depth,
			ExecWorkers:   c.workers,
			EngineOpts:    core.AllOptimizations(),
			Consensus: consensus.Options{
				// Generous: the measurement window saturates the single
				// core, and heartbeat goroutines starved past the timeout
				// would trigger view changes mid-cell.
				ViewTimeout:        2 * time.Second,
				RetransmitInterval: 20 * time.Millisecond,
				RetransmitMax:      200 * time.Millisecond,
				HeartbeatInterval:  50 * time.Millisecond,
			},
			SyncInterval: 40 * time.Millisecond,
		},
	})
	if err != nil {
		return plRow{}, err
	}
	defer cluster.Close()

	addr := chain.AddressFromBytes([]byte("pl-bench"))
	owner := chain.AddressFromBytes([]byte("pl-owner"))
	code, err := workload.Compile(workload.ABSTransferFlatSrc, core.VMCVM)
	if err != nil {
		return plRow{}, err
	}
	confidential := c.mode == "confidential"
	if err := cluster.DeployEverywhere(addr, owner, core.VMCVM, code, confidential, 1); err != nil {
		return plRow{}, err
	}

	// Commits apply on every replica; node 0 observes them whether or not
	// it currently leads.
	obs := newCommitObserver()
	off := cluster.Nodes[0].OnCommit(obs.onCommit)
	defer off()
	epoch, pk := cluster.EnvelopeKeyInfo()

	warm := window / 3
	if warm < 500*time.Millisecond {
		warm = 500 * time.Millisecond
	}
	// Stock enough sealed transactions that the feeder never runs dry at
	// the cell's cadence ceiling (depth × 400 tps), with margin for warmup.
	// Pre-sealing runs before the driver starts: it saturates the container's
	// single core, and a saturated core starves consensus heartbeats into
	// spurious view changes.
	need := int(float64(c.depth)*450*(warm + window + 500*time.Millisecond).Seconds()) + 1200
	stock, err := pregenPipelineTxs(pk, epoch, addr, confidential, c.hot, need)
	if err != nil {
		return plRow{}, err
	}

	stopDriver := cluster.StartDriver(40 * time.Millisecond)
	defer stopDriver()

	// Feeder: keep the leader's pools deeper than one full window of
	// proposals and pre-verify aggressively — the driver's own per-tick
	// verification budget (2 blocks) was sized for the serialized mode.
	// The leader is re-resolved every pass: if a view change moves
	// leadership mid-cell, feeding the old leader would quietly throttle
	// the whole sweep to its gossip-fed 2-blocks-per-tick trickle.
	floor := c.depth * 80
	if floor < 256 {
		floor = 256
	}
	stopFeed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopFeed:
				return
			default:
			}
			leader := cluster.Leader()
			for leader.VerifiedPoolLen()+leader.UnverifiedPoolLen() < floor {
				batch := takeStock(stock, 64)
				if len(batch) == 0 {
					break
				}
				for _, tx := range batch {
					obs.note(tx.Hash())
				}
				leader.SubmitTxBatch(batch)
			}
			leader.PreVerifyPending()
			time.Sleep(time.Millisecond)
		}
	}()

	if plDebug {
		go func() {
			for {
				select {
				case <-stopFeed:
					return
				case <-time.After(2 * time.Millisecond):
				}
				ld := cluster.Leader()
				fmt.Printf("dbg: verified=%d consensusBacklog=%d height=%d\n",
					ld.VerifiedPoolLen(), ld.ConsensusBacklog(), ld.Height())
			}
		}()
	}
	time.Sleep(warm)
	before := metrics.Default().Snapshot()
	heightBefore := cluster.Nodes[0].Height()
	obs.begin()
	start := time.Now()
	time.Sleep(window)
	elapsed := time.Since(start).Seconds()
	committed, lat := obs.end()
	heightAfter := cluster.Nodes[0].Height()
	after := metrics.Default().Snapshot()
	close(stopFeed)
	wg.Wait()

	spec := counterFamily(after, "confide_node_occ_speculative_total") - counterFamily(before, "confide_node_occ_speculative_total")
	conf := counterFamily(after, "confide_node_occ_conflicts_total") - counterFamily(before, "confide_node_occ_conflicts_total")
	busyMicros := counterFamily(after, "confide_pipeline_lane_busy_microseconds_total") - counterFamily(before, "confide_pipeline_lane_busy_microseconds_total")
	row := plRow{
		Mode:         c.mode,
		Depth:        c.depth,
		Workers:      c.workers,
		HotProb:      c.hot,
		Seconds:      elapsed,
		Blocks:       heightAfter - heightBefore,
		CommittedTPS: float64(committed) / elapsed,
		Speculated:   spec,
		Conflicts:    conf,
	}
	if spec > 0 {
		row.ConflictRate = float64(conf) / float64(spec)
	}
	if c.workers > 1 {
		// Lane occupancy across the whole cluster: busy lane-time over the
		// window's total lane capacity (4 nodes × workers lanes).
		row.LaneBusyPct = 100 * float64(busyMicros) / (elapsed * 1e6 * float64(c.workers) * 4)
	}
	row.CommitP50Ms, row.CommitP95Ms, _ = latencyPercentiles(lat)
	return row, nil
}

// takeStock drains up to n pre-sealed transactions without blocking.
func takeStock(stock chan *chain.Tx, n int) []*chain.Tx {
	var out []*chain.Tx
	for len(out) < n {
		select {
		case tx := <-stock:
			out = append(out, tx)
		default:
			return out
		}
	}
	return out
}

// pregenPipelineTxs seals count ABS transfers at the given hot-key
// probability ahead of the measurement window.
func pregenPipelineTxs(pk []byte, epoch uint64, addr chain.Address, confidential bool, hotProb float64, count int) (chan *chain.Tx, error) {
	out := make(chan *chain.Tx, count)
	workers := 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		cc, err := core.NewClient(pk)
		if err != nil {
			return nil, err
		}
		cc.SetEnvelopeKey(epoch, pk)
		n := count / workers
		if w == 0 {
			n += count % workers
		}
		rng := rand.New(rand.NewSource(int64(w) + 2001))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				asset := workload.MakeAssetFlatHot(rng, 128, hotProb)
				var tx *chain.Tx
				var err error
				if confidential {
					tx, _, err = cc.NewConfidentialTx(addr, "transfer", asset)
				} else {
					tx, err = cc.NewPublicTx(addr, "transfer", asset)
				}
				if err != nil {
					errCh <- err
					return
				}
				out <- tx
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return out, nil
}

// counterFamily sums every series of one counter family in a snapshot.
func counterFamily(s metrics.Snapshot, family string) uint64 {
	var total uint64
	for series, v := range s.Counters {
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if name == family {
			total += v
		}
	}
	return total
}
