// Command benchrunner regenerates every table and figure of the paper's
// evaluation section and prints them as text rows.
//
// Usage:
//
//	benchrunner -exp all          # everything (default)
//	benchrunner -exp fig10        # Figure 10: VM × confidentiality
//	benchrunner -exp fig11        # Figure 11: scalability
//	benchrunner -exp table1       # Table 1: SCF-AR operation profile
//	benchrunner -exp fig12        # Figure 12: ABS optimization ablation
//	benchrunner -exp prod         # §6.4 production metrics
//	benchrunner -exp fig10 -txs 96  # more transactions per cell
//	benchrunner -exp overhead     # metrics-layer overhead guard (<2%)
//	benchrunner -exp fastsync     # wipe-rejoin: snapshot vs genesis replay
//	benchrunner -exp rotation     # key-epoch rotation under traffic + re-seal sweep
//	benchrunner -exp gateway      # HTTP edge: offered-load sweep with shedding
//	benchrunner -exp confassets   # Pedersen/range-proof primitives + committed-token TPS
//	benchrunner -exp vmcompile    # CONFIDE-VM AOT compiler vs interpreter vs EVM (VM level)
//	benchrunner -exp pipeline     # pipelined scheduler: depth × OCC-lane × conflict sweep
//	benchrunner -exp fig10 -json  # also write BENCH_fig10.json
//	benchrunner -chaos -seed 7    # liveness-under-faults drill
//	benchrunner -chaos -wipe 1    # …plus a wipe-and-rejoin (snapshot fast-sync)
//	benchrunner -chaos -rotations 1  # …plus a consensus-ordered key rotation
//	benchrunner -chaos -gwkills 2 # workload via HTTP gateways, two killed mid-run
//	benchrunner -chaos -crashes 3 -diskfaults  # power-cut crashes at named crash
//	                              # points with transient disk faults layered on
//	benchrunner -exp fig10 -metrics  # append the registry summary table
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"confide/internal/bench"
	"confide/internal/gateway"
	"confide/internal/metrics"
	"confide/internal/node"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig10, fig11, table1, fig12, prod, overhead")
	txs := flag.Int("txs", 0, "transactions per measurement cell (0 = experiment default)")
	quick := flag.Bool("quick", false, "shrink grids for a fast pass")
	showMetrics := flag.Bool("metrics", false, "print the metrics registry summary after the run")
	jsonOut := flag.Bool("json", false, "write BENCH_<exp>.json per experiment (rows + latency percentiles + sync times)")
	chaos := flag.Bool("chaos", false, "run the chaos drill instead of the paper experiments")
	seed := flag.Int64("seed", 1, "chaos: fault-schedule seed")
	nodes := flag.Int("nodes", 4, "chaos: cluster size (4-7)")
	drop := flag.Float64("drop", 0.10, "chaos: global message drop rate")
	wipe := flag.Int("wipe", 0, "chaos: wipe-and-rejoin fault count (forces snapshot fast-sync)")
	rotations := flag.Int("rotations", 0, "chaos: consensus-ordered key rotations injected mid-run")
	gwkills := flag.Int("gwkills", 0, "chaos: route the workload through HTTP gateways and kill this many mid-run")
	crashes := flag.Int("crashes", 0, "chaos: crash-and-recover disk faults (kill at a random crash point, revive from the frozen disk image)")
	diskfaults := flag.Bool("diskfaults", false, "chaos: layer transient disk faults (ENOSPC, EIO, bit-flips, lying fsyncs) onto each crash window")
	pipeDepth := flag.Int("pipeline-depth", 0, "chaos: leader proposal window (0/1 = serialized legacy mode)")
	execWorkers := flag.Int("exec-workers", 0, "chaos: OCC speculation lanes per node (0 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()

	// The sweeps run 4 replicas plus load generation on one core; the
	// default 100% GC target spends a visible slice of the measurement
	// window re-collecting a small, fast-churning heap. Trade heap
	// headroom for mutator time — harness-only, no library code changes.
	debug.SetGCPercent(400)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	if *chaos {
		err := runChaos(*seed, *nodes, *txs, *drop, *wipe, *rotations, *gwkills, *crashes, *diskfaults, *pipeDepth, *execWorkers)
		if *showMetrics {
			fmt.Printf("\n=== metrics registry summary ===\n%s", metrics.Default().Summary())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, fn func() (any, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		rows, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if *jsonOut {
			if err := writeBenchJSON(name, rows, elapsed); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing json: %v\n", name, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", name, elapsed.Round(time.Millisecond))
	}

	run("fig10", func() (any, error) { return runFig10(*txs) })
	run("fig11", func() (any, error) { return runFig11(*txs, *quick) })
	run("table1", runTable1)
	run("fig12", func() (any, error) { return runFig12(*txs) })
	run("prod", runProd)
	if *exp == "overhead" { // opt-in: doubles a fig10 cell, not part of "all"
		run("overhead", func() (any, error) { return runOverhead(*txs, *quick) })
	}
	if *exp == "fastsync" { // opt-in: wipe-rejoin timing + pruning disk budget
		run("fastsync", func() (any, error) { return runFastSync(*txs) })
	}
	if *exp == "rotation" { // opt-in: key-epoch rotation under traffic
		run("rotation", func() (any, error) { return runRotation(*txs) })
	}
	if *exp == "gateway" { // opt-in: closed-loop clients over real TCP gateways
		run("gateway", func() (any, error) { return runGateway(*quick) })
	}
	if *exp == "confassets" { // opt-in: confidential-assets primitives + token TPS
		run("confassets", func() (any, error) { return runConfAssets(*txs, *quick) })
	}
	if *exp == "vmcompile" { // opt-in: AOT-compiled vs interpreted vs EVM at the VM level
		run("vmcompile", func() (any, error) { return runVMCompile(*txs) })
	}
	if *exp == "pipeline" { // opt-in: pipelined-scheduler depth × lanes × conflict sweep
		run("pipeline", func() (any, error) { return runPipeline(*quick) })
	}

	if *showMetrics {
		fmt.Printf("=== metrics registry summary ===\n%s", metrics.Default().Summary())
	}
}

func runOverhead(txs int, quick bool) (any, error) {
	fmt.Println("=== Metrics-layer overhead: instrumented vs no-op recorder ===")
	rounds := 3
	if quick {
		rounds = 1
	}
	res, err := bench.MetricsOverhead(txs, rounds)
	if err != nil {
		return nil, err
	}
	fmt.Println(res)
	if res.DeltaPct >= 2.0 {
		fmt.Println("WARNING: overhead exceeds the 2% budget")
	}
	return res, nil
}

func runFig10(txs int) (any, error) {
	cfg := bench.DefaultFig10()
	if txs > 0 {
		cfg.TxsPerCell = txs
	}
	fmt.Println("=== Figure 10: throughput on 4 Synthetic workloads (4 nodes) ===")
	rows, err := bench.Figure10(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("%-26s %-11s %-7s %10s\n", "Workload", "Engine", "Mode", "TPS")
	for _, r := range rows {
		mode := "public"
		if r.TEE {
			mode = "TEE"
		}
		fmt.Printf("%-26s %-11s %-7s %10.1f\n", r.Workload, r.Engine, mode, r.TPS)
	}
	return rows, nil
}

func runFig11(txs int, quick bool) (any, error) {
	cfg := bench.DefaultFig11()
	if txs > 0 {
		cfg.TxsPerCell = txs
	}
	if quick {
		cfg.NodeCounts = []int{4, 8}
	}
	fmt.Println("=== Figure 11: scalability, ABS workload ===")
	rows, err := bench.Figure11(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("%-7s %-9s %-6s %10s\n", "Nodes", "Parallel", "Zones", "TPS")
	for _, r := range rows {
		fmt.Printf("%-7d %-9d %-6d %10.1f\n", r.Nodes, r.Parallel, r.Zones, r.TPS)
	}
	return rows, nil
}

func runTable1() (any, error) {
	fmt.Println("=== Table 1: operations of one SCF-AR asset transfer ===")
	res, err := bench.Table1()
	if err != nil {
		return nil, err
	}
	fmt.Print(res.Rendered)
	return res, nil
}

func runFig12(txs int) (any, error) {
	cfg := bench.DefaultFig12()
	if txs > 0 {
		cfg.Txs = txs
	}
	fmt.Println("=== Figure 12: optimization ablation on the ABS contract ===")
	rows, err := bench.Figure12(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("%-36s %10s %9s\n", "Configuration", "TPS", "Speedup")
	for _, r := range rows {
		fmt.Printf("%-36s %10.1f %8.2fx\n", r.Config, r.TPS, r.Speedup)
	}
	return rows, nil
}

func runChaos(seed int64, nodes, txs int, drop float64, wipes, rotations, gwkills, crashes int, diskfaults bool, pipeDepth, execWorkers int) error {
	scenario := "leader crash + partition"
	if wipes > 0 {
		scenario += fmt.Sprintf(" + %d wipe-rejoin(s)", wipes)
	}
	if rotations > 0 {
		scenario += fmt.Sprintf(" + %d key rotation(s)", rotations)
	}
	if gwkills > 0 {
		scenario += fmt.Sprintf(" + %d gateway kill(s), workload via HTTP edge", gwkills)
	}
	if crashes > 0 {
		scenario += fmt.Sprintf(" + %d power-cut crash(es) at named crash points", crashes)
		if diskfaults {
			scenario += " with transient disk faults"
		}
	}
	if pipeDepth > 1 {
		scenario += fmt.Sprintf(" + pipelined ordering (depth %d, %d OCC lanes)", pipeDepth, execWorkers)
	}
	opts := node.ChaosOptions{
		Nodes:         nodes,
		Txs:           txs, // 0 = default
		Seed:          seed,
		DropRate:      drop,
		WipeRejoins:   wipes,
		Rotations:     rotations,
		GatewayKills:  gwkills,
		Crashes:       crashes,
		DiskFaults:    diskfaults,
		PipelineDepth: pipeDepth,
		ExecWorkers:   execWorkers,
	}
	if gwkills > 0 {
		opts.Gateways = gateway.NewChaosDriver()
	}
	fmt.Printf("=== Chaos drill: %d nodes, seed %d, %.0f%% drop, %s ===\n",
		nodes, seed, drop*100, scenario)
	report, err := node.RunChaos(opts)
	if err != nil {
		return err
	}
	for _, e := range report.Events {
		fmt.Println("  " + e)
	}
	fmt.Printf("converged in %v: %d txs committed on all %d nodes, height %d, %d view changes\n",
		report.Elapsed.Round(time.Millisecond), report.Txs, report.Nodes, report.Height, report.ViewChanges)
	fmt.Printf("state root: %x (identical on every node)\n", report.StateRoot[:8])
	s := report.Net
	fmt.Printf("network: %d sent, %d delivered, drops: %d rate / %d partition / %d crash / %d overflow, %d dup, %d reordered\n",
		s.Sent, s.Delivered, s.RateDrops, s.PartitionDrops, s.CrashDrops, s.OverflowDrops, s.Duplicates, s.Reordered)
	if wipes > 0 {
		fmt.Printf("snapshot rejoin: %d install(s), %d bad chunk(s) rejected, %d bad install(s)\n",
			report.Metrics["confide_snapshot_installs_total"],
			report.Metrics["confide_node_snapshot_bad_chunks_total"],
			report.Metrics["confide_node_snapshot_install_failures_total"])
	}
	if rotations > 0 {
		fmt.Printf("key rotation: %d ring advance(s) across the cluster, %d stale-envelope rejection(s)\n",
			report.Metrics["confide_keyepoch_rotations_total"],
			report.Metrics["confide_keyepoch_stale_envelope_rejections_total"])
	}
	if gwkills > 0 {
		fmt.Printf("gateway edge: %d request(s) served, %d tx(s) accepted across kills and failovers\n",
			report.Metrics["confide_gateway_requests_total"],
			report.Metrics["confide_gateway_accepted_txs_total"])
	}
	if crashes > 0 {
		d := report.Disk
		fmt.Printf("crash drill: %d crash recover(ies), %d quarantine(s), %d node fail-stop(s); sealed state re-verified on all %d nodes\n",
			report.Metrics["confide_node_crash_recoveries_total"],
			report.Metrics["confide_node_store_quarantines_total"],
			report.Metrics["confide_node_store_fatal_total"], report.Nodes)
		fmt.Printf("disk faults: %d torn tail(s), %d ENOSPC, %d read error(s), %d bit-flip(s), %d fsync lie(s), %d sticky store failure(s), %d read retr(ies)\n",
			d.TornTails, d.WriteErrs, d.ReadErrs, d.BitFlips, d.SyncLies,
			report.Metrics["confide_storage_sticky_failures_total"],
			report.Metrics["confide_storage_read_retries_total"])
	}
	return nil
}

func runConfAssets(txs int, quick bool) (any, error) {
	cfg := bench.DefaultConfAssets()
	if txs > 0 {
		cfg.TokenTxs = txs
	}
	if quick {
		cfg.Proofs, cfg.Batches, cfg.TokenTxs = 16, []int{4, 16}, 8
	}
	fmt.Println("=== Confidential assets: commitment & range-proof primitives, committed-token TPS ===")
	rows, err := bench.ConfAssets(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("%-20s %6s %7s %12s %12s %9s %7s\n", "Op", "Batch", "Iters", "ms/op", "ops/s", "Speedup", "Bytes")
	for _, r := range rows {
		speedup, batch, bytes := "", "", ""
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		if r.Batch > 0 {
			batch = fmt.Sprintf("%d", r.Batch)
		}
		if r.Bytes > 0 {
			bytes = fmt.Sprintf("%d", r.Bytes)
		}
		fmt.Printf("%-20s %6s %7d %12.4f %12.1f %9s %7s\n", r.Op, batch, r.Iters, r.PerOpMs, r.OpsPerSec, speedup, bytes)
	}
	return rows, nil
}

func runVMCompile(txs int) (any, error) {
	cfg := bench.DefaultVMCompile()
	if txs > 0 {
		cfg.Txs = txs
	}
	fmt.Println("=== VM compile: AOT closure-threaded vs interpreted CONFIDE-VM vs EVM (VM level) ===")
	rows, err := bench.VMCompile(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("%-26s %12s %14s %14s %9s\n", "Workload", "EVM tx/s", "CVM-interp", "CVM-compiled", "Speedup")
	for _, r := range rows {
		fmt.Printf("%-26s %12.1f %14.1f %14.1f %8.2fx\n", r.Workload, r.EVMTPS, r.InterpTPS, r.CompiledTPS, r.Speedup)
	}
	return rows, nil
}

func runProd() (any, error) {
	fmt.Println("=== §6.4 production metrics (4 nodes, cloud-SSD model) ===")
	m, err := bench.ProductionMetrics()
	if err != nil {
		return nil, err
	}
	fmt.Printf("avg block execution: %8v   (paper: ~30 ms)\n", m.AvgBlockExecution.Round(100*time.Microsecond))
	fmt.Printf("avg empty block:     %8v   (paper: ~5 ms)\n", m.AvgEmptyBlock.Round(100*time.Microsecond))
	fmt.Printf("avg block write:     %8v   (paper: ~6 ms)\n", m.AvgBlockWrite.Round(100*time.Microsecond))
	return m, nil
}
