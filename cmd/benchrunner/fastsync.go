package main

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"confide/internal/chain"
	"confide/internal/core"
	"confide/internal/metrics"
	"confide/internal/node"
	"confide/internal/workload"
)

// The fastsync experiment quantifies what the checkpoint subsystem buys: it
// builds the same chain twice on durable LSM stores — once with sealed
// checkpoints + pruning, once with full history and no checkpoints — then
// wipes a follower's disk and times how long the node takes to rejoin at the
// cluster tip. The first cell rejoins by streaming the latest snapshot; the
// second replays every block from genesis. It also reports the on-disk store
// footprint of each mode, showing the pruning bound.

type fastSyncRow struct {
	// Mode labels the rejoin path under measurement.
	Mode string `json:"mode"`
	// Blocks is the chain height the rejoining node must reach.
	Blocks uint64 `json:"blocks"`
	// JoinMs is wall-clock wipe-to-tip rejoin time.
	JoinMs float64 `json:"join_ms"`
	// StoreBytes is the per-node on-disk footprint (WAL + sstables) right
	// before the wipe.
	StoreBytes int64 `json:"store_bytes"`
	// SnapshotInstalls counts snapshot installs during the rejoin: 1+ for
	// the fast-sync cell, 0 for genesis replay.
	SnapshotInstalls uint64 `json:"snapshot_installs"`
}

func runFastSync(blocks int) (any, error) {
	if blocks <= 0 {
		blocks = 12
	}
	fmt.Println("=== Fast-sync: wipe-and-rejoin, snapshot+pruning vs genesis replay ===")
	cells := []struct {
		mode                string
		interval, retention uint64
	}{
		{"snapshot fast-sync (pruned history)", 4, 4},
		{"genesis block replay (full history)", 0, 0},
	}
	rows := make([]fastSyncRow, 0, len(cells))
	for _, c := range cells {
		row, err := fastSyncCell(c.mode, uint64(blocks), c.interval, c.retention)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.mode, err)
		}
		rows = append(rows, row)
	}
	fmt.Printf("%-38s %-8s %12s %13s %10s\n", "Mode", "Blocks", "Join (ms)", "Store (KiB)", "Installs")
	for _, r := range rows {
		fmt.Printf("%-38s %-8d %12.1f %13.1f %10d\n",
			r.Mode, r.Blocks, r.JoinMs, float64(r.StoreBytes)/1024, r.SnapshotInstalls)
	}
	return rows, nil
}

// fastSyncCell runs one chain-build + wipe-rejoin measurement.
func fastSyncCell(mode string, blocks, interval, retention uint64) (fastSyncRow, error) {
	row := fastSyncRow{Mode: mode, Blocks: blocks}
	dir, err := os.MkdirTemp("", "confide-fastsync-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)

	cluster, err := node.NewCluster(node.ClusterOptions{
		Nodes: 4,
		Node: node.Config{
			BlockMaxTxs:        8,
			EngineOpts:         core.AllOptimizations(),
			SyncInterval:       10 * time.Millisecond,
			CheckpointInterval: interval,
			Retention:          retention,
		},
		StoreDir: dir,
	})
	if err != nil {
		return row, err
	}
	defer cluster.Close()

	addr := chain.AddressFromBytes([]byte("fastsync-contract"))
	owner := chain.AddressFromBytes([]byte("fastsync-owner"))
	code, err := workload.Compile(workload.ABSTransferFlatSrc, core.VMCVM)
	if err != nil {
		return row, err
	}
	if err := cluster.DeployEverywhere(addr, owner, core.VMCVM, code, true, 1); err != nil {
		return row, err
	}
	client, err := core.NewClient(cluster.EnvelopePublicKey())
	if err != nil {
		return row, err
	}

	// One transaction per round so the chain reaches a known height.
	rng := rand.New(rand.NewSource(7))
	for i := uint64(0); i < blocks; i++ {
		method, args := workload.ABSFlatInput(rng)
		tx, _, err := client.NewConfidentialTx(addr, method, args...)
		if err != nil {
			return row, err
		}
		if err := cluster.Submit(tx); err != nil {
			return row, err
		}
		if _, err := cluster.ProcessRound(10 * time.Second); err != nil {
			return row, err
		}
	}

	leader := cluster.Leader()
	victim := -1
	for i, n := range cluster.Nodes {
		if n != leader {
			victim = i
			break
		}
	}
	row.StoreBytes, err = dirSize(filepath.Join(dir, fmt.Sprintf("node-%d", victim)))
	if err != nil {
		return row, err
	}

	tip := leader.Height()
	installsBefore := metrics.Default().Snapshot().CounterSum("confide_snapshot_installs_total")
	start := time.Now()
	if err := cluster.RestartNode(victim, true); err != nil {
		return row, err
	}
	if err := cluster.Nodes[victim].WaitHeight(tip, 60*time.Second); err != nil {
		return row, err
	}
	row.JoinMs = float64(time.Since(start).Microseconds()) / 1e3
	row.SnapshotInstalls = metrics.Default().Snapshot().CounterSum("confide_snapshot_installs_total") - installsBefore
	return row, nil
}

// dirSize sums file sizes under root (the node's WAL + sstables).
func dirSize(root string) (int64, error) {
	var total int64
	err := filepath.WalkDir(root, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			info, err := d.Info()
			if err != nil {
				return err
			}
			total += info.Size()
		}
		return nil
	})
	return total, err
}
