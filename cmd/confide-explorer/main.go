// Command confide-explorer is an offline blockchain explorer: it opens a
// node's durable store directly (no node process needed) and walks the
// chain — blocks, transactions, receipt visibility. It sees exactly what a
// node operator sees: confidential payloads, state and receipts appear only
// as ciphertext, which is the point.
//
// Usage:
//
//	confide-explorer -store path/to/node-0            # chain summary
//	confide-explorer -store path/to/node-0 -block 3   # one block in detail
//	confide-explorer -store path/to/node-0 -keys      # storage key census
package main

import (
	"encoding/binary"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"confide/internal/chain"
	"confide/internal/storage"
)

func main() {
	storeDir := flag.String("store", "", "node store directory (LSM)")
	blockNum := flag.Int64("block", -1, "show one block in detail")
	keys := flag.Bool("keys", false, "print a census of storage namespaces")
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "usage: confide-explorer -store <dir> [-block N] [-keys]")
		os.Exit(2)
	}
	store, err := storage.OpenLSM(*storeDir, storage.LSMOptions{})
	if err != nil {
		fatal(err)
	}
	defer store.Close()

	switch {
	case *keys:
		census(store)
	case *blockNum >= 0:
		showBlock(store, uint64(*blockNum))
	default:
		summary(store)
	}
}

func blockKey(height uint64) []byte {
	key := make([]byte, 12)
	copy(key, "blk/")
	binary.BigEndian.PutUint64(key[4:], height)
	return key
}

func loadBlock(store storage.KVStore, height uint64) (*chain.Block, bool) {
	raw, found, err := store.Get(blockKey(height))
	if err != nil || !found {
		return nil, false
	}
	block, err := chain.DecodeBlock(raw)
	if err != nil {
		return nil, false
	}
	return block, true
}

func summary(store storage.KVStore) {
	fmt.Printf("%-8s %-10s %-5s %-6s %s\n", "height", "hash", "txs", "conf", "tx-root")
	height := uint64(0)
	totalTxs, totalConf := 0, 0
	for {
		block, ok := loadBlock(store, height)
		if !ok {
			break
		}
		conf := 0
		for _, tx := range block.Txs {
			if tx.Type == chain.TxTypeConfidential {
				conf++
			}
		}
		totalTxs += len(block.Txs)
		totalConf += conf
		h := block.Hash()
		fmt.Printf("%-8d %-10s %-5d %-6d %s…\n",
			height, short(h[:]), len(block.Txs), conf, short(block.Header.TxRoot[:]))
		height++
	}
	fmt.Printf("\n%d blocks, %d transactions (%d confidential)\n", height, totalTxs, totalConf)
}

func showBlock(store storage.KVStore, height uint64) {
	block, ok := loadBlock(store, height)
	if !ok {
		fatal(fmt.Errorf("no block at height %d", height))
	}
	h := block.Hash()
	fmt.Printf("block %d\n  hash      %x\n  prev      %x\n  tx-root   %x\n  proposer  node %d\n  txs       %d\n\n",
		height, h[:], block.Header.PrevHash[:], block.Header.TxRoot[:], block.Header.Proposer, len(block.Txs))
	for i, tx := range block.Txs {
		hash := tx.Hash()
		fmt.Printf("  tx %d: %x\n", i, hash[:])
		if tx.Type == chain.TxTypeConfidential {
			fmt.Printf("    type:    confidential (T-Protocol envelope, %d bytes — opaque)\n", len(tx.Payload))
		} else {
			if raw, err := chain.DecodeRawTx(tx.Payload); err == nil {
				fmt.Printf("    type:    public\n    from:    %s\n    to:      %s\n    method:  %s (%d args)\n",
					raw.From, raw.Contract, raw.Method, len(raw.Args))
			}
		}
		rk := []byte("rc/" + hex.EncodeToString(hash[:]))
		if sealed, found, _ := store.Get(rk); found {
			if rpt, err := chain.DecodeReceipt(sealed); err == nil {
				fmt.Printf("    receipt: public, status %d, %d log(s)\n", rpt.Status, len(rpt.Logs))
			} else {
				fmt.Printf("    receipt: sealed under k_tx (%d bytes — owner-only)\n", len(sealed))
			}
		}
	}
}

func census(store storage.KVStore) {
	counts := map[string]int{}
	bytes := map[string]int{}
	store.Iterate(nil, func(k, v []byte) bool {
		ns := "other"
		if i := strings.IndexByte(string(k), '/'); i > 0 {
			ns = string(k[:i])
		}
		counts[ns]++
		bytes[ns] += len(v)
		return true
	})
	names := map[string]string{
		"blk": "blocks", "st": "contract state", "cd": "contract code", "rc": "receipts",
	}
	fmt.Printf("%-16s %8s %12s\n", "namespace", "keys", "bytes")
	for ns, n := range counts {
		label := ns
		if friendly, ok := names[ns]; ok {
			label = fmt.Sprintf("%s (%s)", ns, friendly)
		}
		fmt.Printf("%-16s %8d %12d\n", label, n, bytes[ns])
	}
}

func short(b []byte) string { return hex.EncodeToString(b[:4]) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confide-explorer:", err)
	os.Exit(1)
}
