// Command confide-node boots an in-process CONFIDE consortium network,
// drives a workload through it, and reports throughput, enclave statistics
// and the engine operation profile — a one-command demonstration of the
// full platform.
//
// Usage:
//
//	confide-node                         # 4 nodes, 64 ABS transfers
//	confide-node -nodes 8 -txs 200
//	confide-node -workload scf -parallel 4
//	confide-node -workload json -vm evm  # run the baseline VM
//	confide-node -rotate 1 -epoch-window 2 -reseal-rate 512
//	confide-node -gateway :8440 -linger 10m   # serve the HTTP client edge
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"time"

	"confide/internal/chain"
	"confide/internal/core"
	"confide/internal/gateway"
	"confide/internal/metrics"
	"confide/internal/node"
	"confide/internal/tee"
	"confide/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 4, "replica count")
	txCount := flag.Int("txs", 64, "transactions to run")
	parallel := flag.Int("parallel", 1, "execution parallelism (ways)")
	wl := flag.String("workload", "abs", "workload: abs, scf, concat, enotes, hash, json")
	vmName := flag.String("vm", "cvm", "contract VM: cvm or evm")
	storeDir := flag.String("store", "", "durable store directory (LSM; browse it with confide-explorer)")
	ckptInterval := flag.Uint64("checkpoint-interval", 0, "export a sealed state checkpoint every N blocks (0 = off); enables snapshot fast-sync for lagging peers")
	retention := flag.Uint64("retention", 0, "with checkpoints on, prune block payloads older than N blocks (0 = keep full history)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. :9090) for the duration of the run")
	linger := flag.Duration("linger", 0, "keep the process (and the -metrics endpoint) alive this long after the run")
	epochWindow := flag.Uint64("epoch-window", 0, "key-epoch acceptance window: envelopes up to N epochs behind current are accepted (0 = default)")
	resealRate := flag.Int("reseal-rate", 0, "background re-seal sweep budget in records/second after a rotation (0 = default, negative = disabled)")
	rotate := flag.Int("rotate", 0, "consensus-ordered key rotations to order mid-run (splits the workload into rotate+1 phases)")
	gatewayAddr := flag.String("gateway", "", "serve the client gateway (attested HTTP edge) on this base address, e.g. :8440 — node i listens on port+i (port 0 picks ephemeral ports); combine with -linger to keep serving remote clients after the built-in workload")
	gatewayRate := flag.Float64("gateway-rate", 0, "gateway per-client admission rate in tx/s, token-bucket with 2x burst (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful gateway shutdown bound: in-flight requests get this long to finish after new submissions start being refused")
	pipelineDepth := flag.Int("pipeline-depth", 1, "consensus proposals a leader keeps in flight ahead of execution (1 = serialized; >1 enables predicted-parent pipelining with execute-behind-order)")
	execWorkers := flag.Int("exec-workers", 0, "parallel OCC lanes for the speculative execution pass (0 = -parallel's value); any mix across replicas commits identical state")
	noCompile := flag.Bool("no-compile", false, "disable the deploy-time CVM compiler; every transaction runs on the interpreter (replicas with and without this flag stay byte-identical)")
	flag.Parse()

	if *metricsAddr != "" {
		stop, url, err := serveMetrics(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Printf("metrics: %s/metrics (pprof at %s/debug/pprof/)\n", url, url)
	}

	vm := core.VMCVM
	if *vmName == "evm" {
		vm = core.VMEVM
	}

	source, gen, err := pickWorkload(*wl)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("booting %d-node network (K-Protocol: decentralized MAP)...\n", *nodes)
	engineOpts := core.AllOptimizations()
	engineOpts.EpochWindow = *epochWindow
	if *noCompile {
		engineOpts.Compile = false
	}
	cluster, err := node.NewCluster(node.ClusterOptions{
		Nodes: *nodes,
		Node: node.Config{
			BlockMaxTxs:        32,
			Parallelism:        *parallel,
			EngineOpts:         engineOpts,
			CheckpointInterval: *ckptInterval,
			Retention:          *retention,
			ResealRate:         *resealRate,
			PipelineDepth:      *pipelineDepth,
			ExecWorkers:        *execWorkers,
		},
		Enclave:          tee.Config{InjectDelays: true},
		StoreReadLatency: 200 * time.Microsecond,
		StoreDir:         *storeDir,
	})
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()

	if *gatewayAddr != "" {
		gateways, err := serveGateways(cluster, *gatewayAddr, *gatewayRate, *drainTimeout)
		if err != nil {
			fatal(err)
		}
		defer func() {
			for _, gw := range gateways {
				gw.Close() // graceful: refuse new work, drain in-flight
			}
		}()
		// Remote clients need continuous block production once the built-in
		// workload's synchronous drain loop is done; the background driver
		// provides it (started here so submissions that race the workload
		// commit too — driver and DrainAll proposals arbitrate through
		// consensus, and a stale cut re-pools).
		stopDriver := cluster.StartDriver(3 * time.Millisecond)
		defer stopDriver()
	}

	addr := chain.AddressFromBytes([]byte("demo-contract"))
	owner := chain.AddressFromBytes([]byte("demo-owner"))
	code, err := workload.Compile(source, vm)
	if err != nil {
		fatal(err)
	}
	if err := cluster.DeployEverywhere(addr, owner, vm, code, true, 1); err != nil {
		fatal(err)
	}
	clientEpoch, clientPK := cluster.EnvelopeKeyInfo()
	client, err := core.NewClient(clientPK)
	if err != nil {
		fatal(err)
	}
	client.SetEnvelopeKey(clientEpoch, clientPK)

	// SCF needs its service suite wired up.
	if *wl == "scf" {
		if addr, err = deploySCF(cluster, client); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("submitting %d confidential %s transactions...\n", *txCount, *wl)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	hashes := make([]chain.Hash, 0, *txCount)
	phases := *rotate + 1
	if phases > *txCount {
		fatal(fmt.Errorf("need at least one transaction per rotation phase (%d txs, %d phases)", *txCount, phases))
	}
	start := time.Now()
	for p := 0; p < phases; p++ {
		// Refresh the client onto the cluster's current epoch. Right after a
		// rotation is ordered this is still the old epoch — those envelopes
		// ride the acceptance window across the activation height.
		epoch, pk := cluster.EnvelopeKeyInfo()
		client.SetEnvelopeKey(epoch, pk)

		n := *txCount / phases
		if p == phases-1 {
			n = *txCount - n*(phases-1)
		}
		for i := 0; i < n; i++ {
			method, args := gen(rng)
			tx, _, err := client.NewConfidentialTx(addr, method, args...)
			if err != nil {
				fatal(err)
			}
			if err := cluster.Leader().SubmitTx(tx); err != nil {
				fatal(err)
			}
			hashes = append(hashes, tx.Hash())
		}
		if _, err := cluster.DrainAll(256, time.Minute); err != nil {
			fatal(err)
		}
		if p < phases-1 {
			_, rot, err := cluster.RotateEpoch(2)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("rotation: epoch %d ordered, activation at height %d\n", rot.NewEpoch, rot.ActivationHeight)
			// Commit the governance transaction; the next phase's traffic
			// carries the chain past the activation height.
			if _, err := cluster.DrainAll(16, time.Minute); err != nil {
				fatal(err)
			}
		}
	}
	elapsed := time.Since(start)

	// Count commits from receipts, not from DrainAll's return: with -gateway
	// the background driver proposes concurrently, so transactions commit
	// through its blocks and the synchronous loop's own tally undercounts.
	committed, ok, failed := 0, 0, 0
	for _, h := range hashes {
		rpt, found := cluster.Leader().Receipt(h)
		if found {
			committed++
		}
		if found && rpt.Status == chain.ReceiptOK {
			ok++
		} else {
			failed++
		}
	}
	fmt.Printf("\ncommitted %d txs in %v → %.1f tps (%d ok, %d failed)\n",
		committed, elapsed.Round(time.Millisecond), float64(committed)/elapsed.Seconds(), ok, failed)

	leader := cluster.Leader()
	st := leader.Stats()
	fmt.Printf("blocks: %d   exec time: %v   commit time: %v\n",
		st.BlocksClosed, st.ExecTime.Round(time.Millisecond), st.CommitTime.Round(time.Millisecond))
	if *ckptInterval > 0 {
		fmt.Printf("checkpoints: every %d blocks, retained payload floor at height %d\n",
			*ckptInterval, leader.PrunedTo())
	}
	enclave := leader.ConfidentialEngine().Enclave().Stats()
	fmt.Printf("enclave: %d ecalls, %d ocalls, %d page swaps, %.1fM cycles charged\n",
		enclave.Ecalls, enclave.Ocalls, enclave.PageSwaps, float64(enclave.ChargedCycles)/1e6)
	if *rotate > 0 {
		snap := metrics.Default().Snapshot()
		fmt.Printf("key epochs: current %d (window %d), %d ring advance(s), %d record(s) re-sealed, %d stale rejection(s)\n",
			cluster.CurrentEpoch(), leader.ConfidentialEngine().EpochWindow(),
			snap.CounterSum("confide_keyepoch_rotations_total"),
			snap.CounterSum("confide_keyepoch_resealed_records_total"),
			snap.CounterSum("confide_keyepoch_stale_envelope_rejections_total"))
	}
	fmt.Printf("\nengine operation profile (leader):\n%s", leader.ConfidentialEngine().Profile().Table())

	if *metricsAddr != "" {
		fmt.Printf("\nmetrics registry snapshot:\n%s", metrics.Default().Summary())
		if *linger > 0 {
			fmt.Printf("holding the metrics endpoint open for %v...\n", *linger)
			time.Sleep(*linger)
		}
	}
}

// serveGateways starts one client gateway per node. With a non-zero port in
// base, node i serves on port+i; port 0 lets every node pick an ephemeral
// port. Either way the bound URLs are printed.
func serveGateways(cluster *node.Cluster, base string, rate float64, drain time.Duration) ([]*gateway.Gateway, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("-gateway %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port < 0 {
		return nil, fmt.Errorf("-gateway %q: bad port", base)
	}
	var gws []*gateway.Gateway
	for i, nd := range cluster.Nodes {
		addr := net.JoinHostPort(host, "0")
		if port > 0 {
			addr = net.JoinHostPort(host, strconv.Itoa(port+i))
		}
		gw, err := gateway.Serve(gateway.Config{
			Node:         nd,
			Addr:         addr,
			RateLimit:    rate,
			DrainTimeout: drain,
		})
		if err != nil {
			for _, g := range gws {
				g.Kill()
			}
			return nil, err
		}
		fmt.Printf("gateway: node %d serving %s\n", i, gw.URL())
		gws = append(gws, gw)
	}
	return gws, nil
}

// serveMetrics mounts the registry's Prometheus handler and the pprof suite
// on a dedicated listener. It returns a shutdown func and the base URL.
func serveMetrics(addr string) (func(), string, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Default().Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("metrics listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return func() { _ = srv.Close() }, "http://" + ln.Addr().String(), nil
}

func pickWorkload(name string) (string, func(*rand.Rand) (string, [][]byte), error) {
	switch name {
	case "abs":
		return workload.ABSTransferFlatSrc, workload.ABSFlatInput, nil
	case "scf":
		return workload.SCFGatewaySrc, workload.SCFTransferInput, nil
	case "concat":
		return workload.StringConcatSrc, workload.StringConcatInput, nil
	case "enotes":
		return workload.ENotesSrc, workload.ENotesInput, nil
	case "hash":
		return workload.CryptoHashSrc, workload.CryptoHashInput, nil
	case "json":
		return workload.JSONParseSrc, workload.JSONParseInput, nil
	}
	return "", nil, fmt.Errorf("unknown workload %q", name)
}

// deploySCF wires the gateway→manager→service suite across the cluster and
// returns the gateway address transactions should target.
func deploySCF(cluster *node.Cluster, client *core.Client) (chain.Address, error) {
	gateway := chain.AddressFromBytes([]byte("scf-gateway"))
	manager := chain.AddressFromBytes([]byte("scf-manager"))
	service := chain.AddressFromBytes([]byte("scf-service"))
	owner := chain.AddressFromBytes([]byte("demo-owner"))
	for _, c := range []struct {
		addr chain.Address
		src  string
	}{
		{gateway, workload.SCFGatewaySrc},
		{manager, workload.SCFManagerSrc},
		{service, workload.SCFServiceSrc},
	} {
		code, err := workload.CompileCVM(c.src)
		if err != nil {
			return gateway, err
		}
		if err := cluster.DeployEverywhere(c.addr, owner, core.VMCVM, code, true, 1); err != nil {
			return gateway, err
		}
	}
	for _, wire := range []struct{ to, val chain.Address }{
		{gateway, manager}, {manager, service},
	} {
		tx, _, err := client.NewConfidentialTx(wire.to, "init", wire.val[:])
		if err != nil {
			return gateway, err
		}
		if err := cluster.Leader().SubmitTx(tx); err != nil {
			return gateway, err
		}
		if _, err := cluster.DrainAll(8, 30*time.Second); err != nil {
			return gateway, err
		}
	}
	return gateway, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confide-node:", err)
	os.Exit(1)
}
