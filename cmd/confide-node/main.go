// Command confide-node boots an in-process CONFIDE consortium network,
// drives a workload through it, and reports throughput, enclave statistics
// and the engine operation profile — a one-command demonstration of the
// full platform.
//
// Usage:
//
//	confide-node                         # 4 nodes, 64 ABS transfers
//	confide-node -nodes 8 -txs 200
//	confide-node -workload scf -parallel 4
//	confide-node -workload json -vm evm  # run the baseline VM
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"confide/internal/chain"
	"confide/internal/core"
	"confide/internal/metrics"
	"confide/internal/node"
	"confide/internal/tee"
	"confide/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 4, "replica count")
	txCount := flag.Int("txs", 64, "transactions to run")
	parallel := flag.Int("parallel", 1, "execution parallelism (ways)")
	wl := flag.String("workload", "abs", "workload: abs, scf, concat, enotes, hash, json")
	vmName := flag.String("vm", "cvm", "contract VM: cvm or evm")
	storeDir := flag.String("store", "", "durable store directory (LSM; browse it with confide-explorer)")
	ckptInterval := flag.Uint64("checkpoint-interval", 0, "export a sealed state checkpoint every N blocks (0 = off); enables snapshot fast-sync for lagging peers")
	retention := flag.Uint64("retention", 0, "with checkpoints on, prune block payloads older than N blocks (0 = keep full history)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. :9090) for the duration of the run")
	linger := flag.Duration("linger", 0, "keep the process (and the -metrics endpoint) alive this long after the run")
	flag.Parse()

	if *metricsAddr != "" {
		stop, url, err := serveMetrics(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Printf("metrics: %s/metrics (pprof at %s/debug/pprof/)\n", url, url)
	}

	vm := core.VMCVM
	if *vmName == "evm" {
		vm = core.VMEVM
	}

	source, gen, err := pickWorkload(*wl)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("booting %d-node network (K-Protocol: decentralized MAP)...\n", *nodes)
	cluster, err := node.NewCluster(node.ClusterOptions{
		Nodes: *nodes,
		Node: node.Config{
			BlockMaxTxs:        32,
			Parallelism:        *parallel,
			EngineOpts:         core.AllOptimizations(),
			CheckpointInterval: *ckptInterval,
			Retention:          *retention,
		},
		Enclave:          tee.Config{InjectDelays: true},
		StoreReadLatency: 200 * time.Microsecond,
		StoreDir:         *storeDir,
	})
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()

	addr := chain.AddressFromBytes([]byte("demo-contract"))
	owner := chain.AddressFromBytes([]byte("demo-owner"))
	code, err := workload.Compile(source, vm)
	if err != nil {
		fatal(err)
	}
	if err := cluster.DeployEverywhere(addr, owner, vm, code, true, 1); err != nil {
		fatal(err)
	}
	client, err := core.NewClient(cluster.EnvelopePublicKey())
	if err != nil {
		fatal(err)
	}

	// SCF needs its service suite wired up.
	if *wl == "scf" {
		if addr, err = deploySCF(cluster, client); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("submitting %d confidential %s transactions...\n", *txCount, *wl)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	hashes := make([]chain.Hash, 0, *txCount)
	for i := 0; i < *txCount; i++ {
		method, args := gen(rng)
		tx, _, err := client.NewConfidentialTx(addr, method, args...)
		if err != nil {
			fatal(err)
		}
		if err := cluster.Leader().SubmitTx(tx); err != nil {
			fatal(err)
		}
		hashes = append(hashes, tx.Hash())
	}

	start := time.Now()
	committed, err := cluster.DrainAll(256, time.Minute)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	ok, failed := 0, 0
	for _, h := range hashes {
		if rpt, found := cluster.Leader().Receipt(h); found && rpt.Status == chain.ReceiptOK {
			ok++
		} else {
			failed++
		}
	}
	fmt.Printf("\ncommitted %d txs in %v → %.1f tps (%d ok, %d failed)\n",
		committed, elapsed.Round(time.Millisecond), float64(committed)/elapsed.Seconds(), ok, failed)

	leader := cluster.Leader()
	st := leader.Stats()
	fmt.Printf("blocks: %d   exec time: %v   commit time: %v\n",
		st.BlocksClosed, st.ExecTime.Round(time.Millisecond), st.CommitTime.Round(time.Millisecond))
	if *ckptInterval > 0 {
		fmt.Printf("checkpoints: every %d blocks, retained payload floor at height %d\n",
			*ckptInterval, leader.PrunedTo())
	}
	enclave := leader.ConfidentialEngine().Enclave().Stats()
	fmt.Printf("enclave: %d ecalls, %d ocalls, %d page swaps, %.1fM cycles charged\n",
		enclave.Ecalls, enclave.Ocalls, enclave.PageSwaps, float64(enclave.ChargedCycles)/1e6)
	fmt.Printf("\nengine operation profile (leader):\n%s", leader.ConfidentialEngine().Profile().Table())

	if *metricsAddr != "" {
		fmt.Printf("\nmetrics registry snapshot:\n%s", metrics.Default().Summary())
		if *linger > 0 {
			fmt.Printf("holding the metrics endpoint open for %v...\n", *linger)
			time.Sleep(*linger)
		}
	}
}

// serveMetrics mounts the registry's Prometheus handler and the pprof suite
// on a dedicated listener. It returns a shutdown func and the base URL.
func serveMetrics(addr string) (func(), string, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Default().Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("metrics listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return func() { _ = srv.Close() }, "http://" + ln.Addr().String(), nil
}

func pickWorkload(name string) (string, func(*rand.Rand) (string, [][]byte), error) {
	switch name {
	case "abs":
		return workload.ABSTransferFlatSrc, workload.ABSFlatInput, nil
	case "scf":
		return workload.SCFGatewaySrc, workload.SCFTransferInput, nil
	case "concat":
		return workload.StringConcatSrc, workload.StringConcatInput, nil
	case "enotes":
		return workload.ENotesSrc, workload.ENotesInput, nil
	case "hash":
		return workload.CryptoHashSrc, workload.CryptoHashInput, nil
	case "json":
		return workload.JSONParseSrc, workload.JSONParseInput, nil
	}
	return "", nil, fmt.Errorf("unknown workload %q", name)
}

// deploySCF wires the gateway→manager→service suite across the cluster and
// returns the gateway address transactions should target.
func deploySCF(cluster *node.Cluster, client *core.Client) (chain.Address, error) {
	gateway := chain.AddressFromBytes([]byte("scf-gateway"))
	manager := chain.AddressFromBytes([]byte("scf-manager"))
	service := chain.AddressFromBytes([]byte("scf-service"))
	owner := chain.AddressFromBytes([]byte("demo-owner"))
	for _, c := range []struct {
		addr chain.Address
		src  string
	}{
		{gateway, workload.SCFGatewaySrc},
		{manager, workload.SCFManagerSrc},
		{service, workload.SCFServiceSrc},
	} {
		code, err := workload.CompileCVM(c.src)
		if err != nil {
			return gateway, err
		}
		if err := cluster.DeployEverywhere(c.addr, owner, core.VMCVM, code, true, 1); err != nil {
			return gateway, err
		}
	}
	for _, wire := range []struct{ to, val chain.Address }{
		{gateway, manager}, {manager, service},
	} {
		tx, _, err := client.NewConfidentialTx(wire.to, "init", wire.val[:])
		if err != nil {
			return gateway, err
		}
		if err := cluster.Leader().SubmitTx(tx); err != nil {
			return gateway, err
		}
		if _, err := cluster.DrainAll(8, 30*time.Second); err != nil {
			return gateway, err
		}
	}
	return gateway, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confide-node:", err)
	os.Exit(1)
}
