// Command ccle-gen generates Go types and converters from a CCLe
// confidentiality schema (the Figure 5 development flow).
//
// Usage:
//
//	ccle-gen -pkg demo schema.ccle            # → schema_gen.go
//	ccle-gen -pkg demo -o types.go schema.ccle
//	ccle-gen -paths schema.ccle               # list confidential fields
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"confide/internal/ccle"
)

func main() {
	pkg := flag.String("pkg", "main", "package name for generated code")
	out := flag.String("o", "", "output file (default: input with _gen.go suffix)")
	paths := flag.Bool("paths", false, "print the schema's confidential field paths and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccle-gen [-pkg name] [-o out.go] [-paths] schema.ccle")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	schema, err := ccle.ParseSchema(string(src))
	if err != nil {
		fatal(err)
	}
	if *paths {
		for _, p := range schema.ConfidentialPaths() {
			fmt.Println(p)
		}
		return
	}
	code := ccle.GenerateGo(schema, *pkg)
	dest := *out
	if dest == "" {
		base := strings.TrimSuffix(flag.Arg(0), ".ccle")
		dest = base + "_gen.go"
	}
	if err := os.WriteFile(dest, []byte(code), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d tables)\n", dest, len(schema.Tables))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccle-gen:", err)
	os.Exit(1)
}
