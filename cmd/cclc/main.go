// Command cclc compiles CCL contract source to virtual-machine code.
//
// Usage:
//
//	cclc -vm cvm contract.ccl             # CONFIDE-VM module → contract.cvm
//	cclc -vm evm contract.ccl             # EVM bytecode → contract.evm
//	cclc -vm cvm -o out.bin contract.ccl
//	cclc -vm cvm -S contract.ccl          # print disassembly instead
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"confide/internal/ccl"
	"confide/internal/cvm"
)

func main() {
	vm := flag.String("vm", "cvm", "target VM: cvm or evm")
	out := flag.String("o", "", "output file (default: input with .cvm/.evm suffix)")
	disasm := flag.Bool("S", false, "print CONFIDE-VM disassembly instead of writing output")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cclc [-vm cvm|evm] [-o out] [-S] contract.ccl")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}

	var code []byte
	switch *vm {
	case "cvm":
		mod, err := ccl.CompileCVM(string(src))
		if err != nil {
			fatal(err)
		}
		if *disasm {
			prog, err := cvm.BuildProgram(mod, cvm.BuildOptions{})
			if err != nil {
				fatal(err)
			}
			for fn := 0; fn < prog.NumFuncs(); fn++ {
				fmt.Printf("func %d:\n%s\n", fn, cvm.Disassemble(prog.Code(fn)))
			}
			return
		}
		code = mod.Encode()
	case "evm":
		if *disasm {
			fatal(fmt.Errorf("-S supports the cvm target only"))
		}
		code, err = ccl.CompileEVM(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown vm %q", *vm))
	}

	dest := *out
	if dest == "" {
		dest = strings.TrimSuffix(path, ".ccl") + "." + *vm
	}
	if err := os.WriteFile(dest, code, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", dest, len(code))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cclc:", err)
	os.Exit(1)
}
