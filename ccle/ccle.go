// Package ccle is the public runtime for the Confidential smart Contract
// Language extension (CCLe): schema parsing, the dynamic value model, and
// the per-field-encrypting codec. Code emitted by cmd/ccle-gen imports this
// package, so downstream modules can embed generated types without touching
// the repository's internal packages.
//
// See internal/ccle for the implementation and confide (the root package)
// for the full platform API.
package ccle

import (
	iccle "confide/internal/ccle"
)

// Core types.
type (
	// Schema is a parsed CCLe schema (Listing 1 syntax).
	Schema = iccle.Schema
	// Table is one composite type in a schema.
	Table = iccle.Table
	// Field is one table member.
	Field = iccle.Field
	// Value is a dynamic CCLe value tree.
	Value = iccle.Value
	// ValueKind tags dynamic values.
	ValueKind = iccle.ValueKind
	// Cipher encrypts and decrypts confidential field payloads.
	Cipher = iccle.Cipher
	// AEADCipher is the production AES-256-GCM Cipher.
	AEADCipher = iccle.AEADCipher
)

// Value kinds.
const (
	ValNone     = iccle.ValNone
	ValInt      = iccle.ValInt
	ValStr      = iccle.ValStr
	ValTable    = iccle.ValTable
	ValVec      = iccle.ValVec
	ValMap      = iccle.ValMap
	ValRedacted = iccle.ValRedacted
)

// Constructors.
var (
	// Int64 makes an integer value.
	Int64 = iccle.Int64
	// Str makes a string value.
	Str = iccle.Str
	// StrBytes makes a string value from bytes.
	StrBytes = iccle.StrBytes
	// TableVal makes a composite value.
	TableVal = iccle.TableVal
	// VecVal makes a vector value.
	VecVal = iccle.VecVal
	// MapVal makes a map value.
	MapVal = iccle.MapVal
	// Redacted is the placeholder for unreadable confidential content.
	Redacted = iccle.Redacted
	// Equal deep-compares two value trees.
	Equal = iccle.Equal
)

// ParseSchema parses and validates CCLe schema text.
func ParseSchema(src string) (*Schema, error) { return iccle.ParseSchema(src) }

// Encode serializes a value tree for the schema's root table, sealing
// confidential fields with the cipher.
func Encode(s *Schema, v *Value, cipher Cipher) ([]byte, error) {
	return iccle.Encode(s, v, cipher)
}

// Decode parses wire bytes. Without a cipher, confidential fields decode as
// Redacted placeholders — the auditor's view.
func Decode(s *Schema, data []byte, cipher Cipher) (*Value, error) {
	return iccle.Decode(s, data, cipher)
}

// GenerateGo emits Go types and converters for a schema (used by
// cmd/ccle-gen).
func GenerateGo(s *Schema, pkg string) string { return iccle.GenerateGo(s, pkg) }
