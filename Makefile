GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet chaos crash bench fuzz overhead all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Concurrency hot spots under the race detector: consensus liveness, fault
# injection, the node layer, and the lock-free metrics registry feeding all
# of them.
race:
	$(GO) test -race ./internal/consensus/... ./internal/node/... ./internal/p2p/... ./internal/metrics/... ./internal/bench/... ./internal/storage/... ./internal/gateway/... ./internal/confassets/... ./internal/cvm/... ./internal/pipeline/...

vet:
	$(GO) vet ./...

# Seeded chaos drill: message loss, a leader crash/restart and a
# partition/heal, ending in verified convergence certified against the
# metrics registry. The second run adds a wipe-and-rejoin fault, which must
# recover through snapshot fast-sync; the third orders a key-epoch rotation
# mid-faults, certified from the keyepoch registry deltas; the fourth
# routes the whole workload through the HTTP gateways and kills two of
# them mid-run, certified from the gateway registry deltas; the fifth runs
# the same fault schedule with pipelined block production (depth 8, four
# OCC lanes), so leader kills land while several proposals are in flight.
chaos:
	$(GO) run ./cmd/benchrunner -chaos -seed 1
	$(GO) run ./cmd/benchrunner -chaos -seed 1 -wipe 1
	$(GO) run ./cmd/benchrunner -chaos -seed 1 -rotations 1
	$(GO) run ./cmd/benchrunner -chaos -seed 1 -gwkills 2
	$(GO) run ./cmd/benchrunner -chaos -seed 1 -pipeline-depth 8 -exec-workers 4

# Seeded crash drill: power-cut nodes at named storage crash points under
# live traffic, with transient disk faults (ENOSPC, EIO, bit-flips, lying
# fsyncs) layered onto each crash window. Certifies no committed transaction
# lost, identical chain prefixes, every crash recovered (quarantine-and-
# fast-sync when the image is corrupt beyond the WAL), and every sealed
# record re-verified through the engine's AEAD after recovery.
crash:
	$(GO) run ./cmd/benchrunner -chaos -seed 1 -crashes 3 -diskfaults
	$(GO) run ./cmd/benchrunner -chaos -seed 2 -crashes 2

bench:
	$(GO) run ./cmd/benchrunner -exp all -quick

# Native fuzzing over the attack-surface decoders: RLP/wire formats, the
# CCLE codec and schema parser, envelope opening, and the gateway's HTTP
# request decode path. One target per invocation is a go tool limitation.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzRLPDecode -fuzztime=$(FUZZTIME) ./internal/chain/
	$(GO) test -run='^$$' -fuzz=FuzzWireDecoders -fuzztime=$(FUZZTIME) ./internal/chain/
	$(GO) test -run='^$$' -fuzz=FuzzCodecDecode -fuzztime=$(FUZZTIME) ./internal/ccle/
	$(GO) test -run='^$$' -fuzz=FuzzParseSchema -fuzztime=$(FUZZTIME) ./internal/ccle/
	$(GO) test -run='^$$' -fuzz=FuzzOpenEnvelope -fuzztime=$(FUZZTIME) ./internal/crypto/
	$(GO) test -run='^$$' -fuzz=FuzzOpenAEAD -fuzztime=$(FUZZTIME) ./internal/crypto/
	$(GO) test -run='^$$' -fuzz=FuzzEpochHeader -fuzztime=$(FUZZTIME) ./internal/keyepoch/
	$(GO) test -run='^$$' -fuzz=FuzzGatewayRequest -fuzztime=$(FUZZTIME) ./internal/gateway/
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/storage/
	$(GO) test -run='^$$' -fuzz=FuzzRangeProofVerify -fuzztime=$(FUZZTIME) ./internal/confassets/
	$(GO) test -run='^$$' -fuzz=FuzzDisclosureReceipt -fuzztime=$(FUZZTIME) ./internal/confassets/
	$(GO) test -run='^$$' -fuzz=FuzzCompiledVsInterp -fuzztime=$(FUZZTIME) ./internal/cvm/compile/
	$(GO) test -run='^$$' -fuzz=FuzzScheduler -fuzztime=$(FUZZTIME) ./internal/pipeline/

# Instrumented-vs-disabled throughput delta (budget: <2%).
overhead:
	$(GO) run ./cmd/benchrunner -exp overhead
