GO ?= go

.PHONY: build test race vet chaos bench all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fault-tolerance packages under the race detector (consensus liveness,
# fault injection and the node layer are the concurrency hot spots).
race:
	$(GO) test -race ./internal/consensus/... ./internal/node/... ./internal/p2p/...

vet:
	$(GO) vet ./...

# Seeded chaos drill: message loss, a leader crash/restart and a
# partition/heal, ending in verified convergence.
chaos:
	$(GO) run ./cmd/benchrunner -chaos -seed 1

bench:
	$(GO) run ./cmd/benchrunner -exp all -quick
